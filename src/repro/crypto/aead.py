"""AEAD cipher tier: AES-256-GCM and ChaCha20-Poly1305.

Both suites come from the ``cryptography`` package's OpenSSL bindings,
probed at import time exactly like :mod:`repro.crypto.accel` probes the
legacy CBC backend.  Unlike the legacy suites, the AEAD tier has **no
pure-Python fallback**: re-implementing GCM or Poly1305 from scratch adds
nothing to the reproduction, and a slow lookalike of an *authenticating*
cipher invites silently weaker deployments.  When the backend is missing
(or disabled via ``REPRO_NO_CRYPTO_ACCEL``) the factories raise
:class:`~repro.errors.CryptoUnavailableError` — a typed, loud refusal,
never a downgrade.

Ciphertext layout (``ciphertext_size(n) = 12 + n + 16``)::

    nonce (12 bytes) ‖ ciphertext (n bytes) ‖ auth tag (16 bytes)

The trailing tag doubles as the chunk's descriptor hash on AEAD
partitions (see :mod:`repro.chunkstore.log`): the log codec passes the
plaintext version header as *associated data*, so one ``decrypt`` call
authenticates content, identity, and size in a single pass, and the
separate per-chunk hash pass is skipped.  Tag verification failure is
surfaced as ``ValueError`` so every existing call site converts it to
:class:`~repro.errors.TamperDetectedError` unchanged.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.bench.profiler import record_metric
from repro.crypto.cipher import Cipher, random_iv
from repro.errors import CryptoUnavailableError

_IMPORT_ERROR: Optional[str] = None

try:
    if os.environ.get("REPRO_NO_CRYPTO_ACCEL"):
        raise ImportError("disabled by REPRO_NO_CRYPTO_ACCEL")
    from cryptography.exceptions import InvalidTag as _InvalidTag
    from cryptography.hazmat.primitives.ciphers.aead import (
        AESGCM as _AesGcm,
        ChaCha20Poly1305 as _ChaCha,
    )
except ImportError as exc:  # pragma: no cover - environment-dependent
    _AesGcm = None
    _ChaCha = None
    _InvalidTag = None
    _IMPORT_ERROR = str(exc)


def available() -> bool:
    """True when the OpenSSL AEAD backend can serve both suites."""
    return _AesGcm is not None


def unavailable_reason() -> Optional[str]:
    return _IMPORT_ERROR


#: key size shared by both suites (AES-256 key; ChaCha20 key)
KEY_SIZE = 32


class AeadCipher(Cipher):
    """Adapter from a ``cryptography`` AEAD primitive to :class:`Cipher`.

    ``encrypt``/``decrypt`` take an optional ``aad=`` keyword: associated
    data that is authenticated by the tag but not encrypted.  The log
    codec binds the plaintext version header through it.
    """

    authenticates = True

    NONCE_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, name: str, backend) -> None:
        super().__init__()
        self.name = name
        self._backend = backend

    def encrypt(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        nonce = random_iv(self.NONCE_SIZE)
        counters = self.counters
        counters.encrypt_calls += 1
        counters.bulk_calls += 1
        counters.bytes_encrypted += len(plaintext)
        record_metric("bytes encrypted", len(plaintext))
        sealed = self._backend.encrypt(nonce, bytes(plaintext), bytes(aad))
        return nonce + sealed

    def decrypt(self, ciphertext: bytes, aad: bytes = b"") -> bytes:
        if len(ciphertext) < self.NONCE_SIZE + self.TAG_SIZE:
            raise ValueError("AEAD ciphertext shorter than nonce + tag")
        nonce = bytes(ciphertext[: self.NONCE_SIZE])
        sealed = bytes(ciphertext[self.NONCE_SIZE :])
        counters = self.counters
        counters.decrypt_calls += 1
        counters.bulk_calls += 1
        try:
            plain = self._backend.decrypt(nonce, sealed, bytes(aad))
        except _InvalidTag as exc:
            raise ValueError(f"{self.name}: authentication tag mismatch") from exc
        counters.bytes_decrypted += len(plain)
        record_metric("bytes decrypted", len(plain))
        return plain

    def ciphertext_size(self, plaintext_size: int) -> int:
        return self.NONCE_SIZE + plaintext_size + self.TAG_SIZE

    @classmethod
    def tag_of(cls, ciphertext) -> bytes:
        """The trailing auth tag of an :meth:`encrypt` result — the value
        AEAD partitions store as the descriptor hash."""
        return bytes(ciphertext[-cls.TAG_SIZE :])


def _make(name: str, primitive: Optional[Callable], key: bytes) -> AeadCipher:
    if primitive is None:
        raise CryptoUnavailableError(
            f"cipher {name!r} needs the 'cryptography' AEAD backend, which is "
            f"unavailable ({_IMPORT_ERROR}); the AEAD tier has no pure-Python "
            f"fallback — choose a legacy suite or restore the backend"
        )
    if len(key) != KEY_SIZE:
        raise ValueError(f"{name} requires a {KEY_SIZE}-byte key, got {len(key)}")
    return AeadCipher(name, primitive(bytes(key)))


def make_aes_256_gcm(key: bytes) -> AeadCipher:
    return _make("aes-256-gcm", _AesGcm, key)


def make_chacha20_poly1305(key: bytes) -> AeadCipher:
    return _make("chacha20-poly1305", _ChaCha, key)
