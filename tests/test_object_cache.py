"""Object cache unit tests (§3, §7)."""

from repro.objectstore.cache import ObjectCache
from repro.objectstore.pickling import ObjectRef


def ref(rank, partition=1):
    return ObjectRef(partition, rank)


class TestObjectCache:
    def test_present_vs_absent(self):
        cache = ObjectCache()
        present, _ = cache.get(ref(0))
        assert not present
        cache.put(ref(0), None)  # None is a legitimate cached value
        present, value = cache.get(ref(0))
        assert present and value is None

    def test_lru_eviction(self):
        cache = ObjectCache(max_entries=2)
        cache.put(ref(0), "a")
        cache.put(ref(1), "b")
        cache.get(ref(0))  # touch 0: 1 becomes the LRU victim
        cache.put(ref(2), "c")
        assert cache.get(ref(1)) == (False, None)
        assert cache.get(ref(0)) == (True, "a")

    def test_evict(self):
        cache = ObjectCache()
        cache.put(ref(0), "x")
        cache.evict(ref(0))
        assert cache.get(ref(0)) == (False, None)
        cache.evict(ref(0))  # idempotent

    def test_evict_partition(self):
        cache = ObjectCache()
        cache.put(ref(0, partition=1), "a")
        cache.put(ref(0, partition=2), "b")
        cache.evict_partition(1)
        assert cache.get(ref(0, partition=1)) == (False, None)
        assert cache.get(ref(0, partition=2)) == (True, "b")

    def test_hit_miss_counters(self):
        cache = ObjectCache()
        cache.get(ref(0))
        cache.put(ref(0), "v")
        cache.get(ref(0))
        assert cache.misses == 1 and cache.hits == 1

    def test_len_and_clear(self):
        cache = ObjectCache()
        for i in range(5):
            cache.put(ref(i), i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0

    def test_overwrite_updates(self):
        cache = ObjectCache()
        cache.put(ref(0), "old")
        cache.put(ref(0), "new")
        assert cache.get(ref(0)) == (True, "new")
        assert len(cache) == 1
