"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (``pip install -e .``) fail with ``invalid command 'bdist_wheel'``.
This shim lets ``python setup.py develop`` (or ``pip install -e . --no-use-pep517``
where supported) install the package with plain setuptools.
"""

from setuptools import setup

setup()
