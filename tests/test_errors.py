"""The exception hierarchy: applications catch TDBError (everything) or
TamperDetectedError (the security signal) — the taxonomy must hold."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_tdb_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj in (errors.TDBError,):
                    continue
                assert issubclass(obj, errors.TDBError), name

    def test_tamper_signals(self):
        assert issubclass(errors.TamperDetectedError, errors.TDBError)
        assert issubclass(errors.BackupIntegrityError, errors.TamperDetectedError)

    def test_chunk_store_taxonomy(self):
        assert issubclass(errors.ChunkNotAllocatedError, errors.ChunkStoreError)
        assert issubclass(errors.ChunkNotWrittenError, errors.ChunkStoreError)
        assert issubclass(errors.PartitionNotFoundError, errors.ChunkStoreError)

    def test_object_store_taxonomy(self):
        assert issubclass(errors.ObjectNotFoundError, errors.ObjectStoreError)
        assert issubclass(errors.DeadlockError, errors.TransactionError)
        assert issubclass(errors.PicklingError, errors.ObjectStoreError)

    def test_backup_taxonomy(self):
        assert issubclass(errors.BackupOrderingError, errors.BackupError)
        assert issubclass(errors.BackupIntegrityError, errors.BackupError)

    def test_catching_tdberror_catches_an_end_to_end_failure(self):
        from repro.chunkstore import ChunkStore
        from tests.conftest import make_config, make_platform

        platform = make_platform()
        store = ChunkStore.format(platform, make_config())
        store.close()
        head = platform.untrusted.tamper_read(10, 1)
        platform.untrusted.tamper_write(10, bytes([head[0] ^ 0xFF]))
        with pytest.raises(errors.TDBError):
            ChunkStore.open(platform)
