"""tdb-inspect: offline inspection of a TDB store.

Two views, mirroring the trust model:

* the **attacker view** (no secret needed): what an untrusted program can
  learn from the raw device — the plaintext superblock, segment geometry,
  and nothing else.  Useful to demonstrate (and regression-test) how
  little the untrusted store leaks;
* the **trusted view** (given the platform): validated store statistics —
  partitions, chunk counts, log utilization, residual-log length.

Two more views read the process-wide ``repro.obs`` layer:

* the **metrics view**: latency histograms (p50/p95/p99 for reads,
  commits, map walks, …), unified counters, and event-kind tallies;
* the **trace view**: the most recent tracing spans, indented by
  nesting depth (tracing must have been enabled).

Usage (library)::

    from repro.tools.inspect import attacker_view, trusted_view
    print(render(attacker_view(untrusted_store)))
    print(render(trusted_view(chunk_store)))
    print(render(metrics_view()))

Usage (CLI)::

    python -m repro.tools.inspect /path/to/store.img   # attacker view
    python -m repro.tools.inspect --metrics            # p50/p95/p99 table
    python -m repro.tools.inspect --trace              # recent spans

``--metrics``/``--trace`` run a short traced workload against a scratch
in-memory store first (a fresh CLI process has no history to show), so
the output demonstrates exactly what a live process would expose.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro import obs
from repro.chunkstore.store import ChunkStore
from repro.errors import ChunkStoreError, TamperDetectedError
from repro.platform.untrusted import UntrustedStore


def attacker_view(untrusted: UntrustedStore) -> Dict[str, Any]:
    """Everything an untrusted program can see (requires no secrets)."""
    result: Dict[str, Any] = {"device_size": untrusted.size}
    head = untrusted.tamper_read(0, 4)
    if head != b"TDB1":
        result["format"] = "not a TDB store (or superblock destroyed)"
        return result
    result["format"] = "TDB v1"

    class _Probe:
        def __init__(self, store):
            self.untrusted = store

    try:
        config = ChunkStore._read_superblock(_Probe(untrusted))
        result["segment_size"] = config.segment_size
        result["fanout"] = config.fanout
        result["validation_mode"] = config.validation_mode
        result["system_cipher"] = config.system_cipher
        result["system_hash"] = config.system_hash
        result["leader_location"] = getattr(config, "stored_leader_location", None)
    except (ChunkStoreError, TamperDetectedError) as exc:
        result["superblock"] = f"unreadable: {exc}"
    # Entropy probe: everything beyond the superblock should look random
    # (ciphertext).  Sample a few regions and count zero bytes.
    samples = []
    for fraction in (0.1, 0.4, 0.7):
        offset = int(untrusted.size * fraction)
        blob = untrusted.tamper_read(offset, 4096)
        nonzero = sum(1 for b in blob if b)
        samples.append(round(nonzero / 4096, 3))
    result["nonzero_density_samples"] = samples
    return result


def _hit_ratio(hits: int, misses: int) -> float:
    total = hits + misses
    return round(hits / total, 3) if total else 0.0


def trusted_view(store: ChunkStore) -> Dict[str, Any]:
    """Validated statistics, as trusted code sees them."""
    segman = store.segman
    partitions: List[Dict[str, Any]] = []
    for pid in store.partition_ids():
        info = store.partition_info(pid)
        state = store._state(pid)
        partitions.append(
            {
                "pid": pid,
                "name": state.payload.name or None,
                "cipher": info["cipher"],
                "hash": info["hash"],
                "chunks": info["chunk_count"],
                "copies": info["copies"],
                "copy_of": info["copy_of"],
            }
        )
    return {
        "validation_mode": store.config.validation_mode,
        "partitions": partitions,
        "stored_bytes": store.stored_bytes(),
        "live_bytes": store.live_bytes(),
        "utilization": round(
            store.live_bytes() / store.stored_bytes(), 3
        )
        if store.stored_bytes()
        else 1.0,
        "segments": {
            "total": segman.segment_count,
            "free": segman.free_segment_count(),
            "residual": len(segman.residual_segments),
        },
        "cache": {
            "dirty_descriptors": store.cache.dirty_count(),
            "hits": store.cache.hits,
            "misses": store.cache.misses,
            "evictions": store.cache.evictions,
            "hit_ratio": _hit_ratio(store.cache.hits, store.cache.misses),
        },
        "payload_cache": {
            **store.payloads.stats(),
            "hit_ratio": _hit_ratio(store.payloads.hits, store.payloads.misses),
        },
        "commits": store.commit_count_stat,
        "io_health": {
            "io_errors": store.platform.untrusted.stats.io_errors,
            "retries": store.platform.untrusted.stats.retries,
            "gave_up": store.platform.untrusted.stats.gave_up,
            "quarantined_total": store.quarantined_total,
            "quarantine": store.quarantined_chunks() or None,
        },
    }


def object_store_view(object_store) -> Dict[str, Any]:
    """Object-store statistics: op counts and lock-manager tallies
    (``waits``, ``deadlocks_broken``)."""
    return object_store.stats()


def _format_hist(snapshot: Dict[str, float]) -> Dict[str, Any]:
    """Histogram snapshot with latencies converted to milliseconds."""
    return {
        "count": snapshot["count"],
        "mean_ms": round(snapshot["mean_s"] * 1e3, 4),
        "p50_ms": round(snapshot["p50_s"] * 1e3, 4),
        "p95_ms": round(snapshot["p95_s"] * 1e3, 4),
        "p99_ms": round(snapshot["p99_s"] * 1e3, 4),
        "max_ms": round(snapshot["max_s"] * 1e3, 4),
    }


def metrics_view() -> Dict[str, Any]:
    """The process-wide ``repro.obs`` registry: latency percentiles per
    histogram, unified counters, and event-kind tallies."""
    snap = obs.metrics.snapshot()
    return {
        "latency": {
            name: _format_hist(hist)
            for name, hist in snap["histograms"].items()
        },
        "counters": snap["counters"],
        "events": obs.events.counts(),
    }


def trace_view(limit: int = 50) -> Dict[str, Any]:
    """The last ``limit`` tracing spans, oldest first, indented by
    nesting depth.  Empty unless tracing was enabled."""
    records = obs.trace.records()[-limit:]
    return {
        "tracing_enabled": obs.trace.enabled(),
        "spans": [
            "  " * r.depth
            + f"{r.name} {r.duration * 1e3:.3f}ms"
            + (
                " [" + " ".join(
                    f"{k}={v}" for k, v in sorted(r.tags.items())
                ) + "]"
                if r.tags
                else ""
            )
            for r in records
        ],
        "dropped": obs.trace.dropped(),
    }


def render(view: Dict[str, Any], indent: int = 0) -> str:
    """Human-readable rendering of a view dict."""
    lines: List[str] = []
    pad = "  " * indent
    for key, value in view.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render(value, indent + 1))
        elif isinstance(value, list) and value and isinstance(value[0], dict):
            lines.append(f"{pad}{key}:")
            for item in value:
                rendered = ", ".join(f"{k}={v}" for k, v in item.items())
                lines.append(f"{pad}  - {rendered}")
        elif isinstance(value, list) and value and isinstance(value[0], str):
            lines.append(f"{pad}{key}:")
            for item in value:
                lines.append(f"{pad}  {item}")
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see the module docstring for the views)."""
    parser = argparse.ArgumentParser(
        description="offline inspection of a TDB store"
    )
    parser.add_argument(
        "image", nargs="?", help="store image file (attacker view)"
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="run a short traced workload and print the metrics view "
             "(p50/p95/p99 latency table, counters, event tallies)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="run a short traced workload and print the trace view",
    )
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if not args.image and not (args.metrics or args.trace):
        parser.print_usage()
        return 2

    if args.image:
        import os

        from repro.platform.untrusted import FileUntrustedStore

        store = FileUntrustedStore(args.image, os.path.getsize(args.image))
        print(render(attacker_view(store)))
        store.close()

    if args.metrics or args.trace:
        from repro.obs.smoke import run_workload

        run_workload()
        if args.metrics:
            print(render(metrics_view()))
        if args.trace:
            print(render(trace_view()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
