"""True on-disk persistence: a file-backed platform reopened through
brand-new Python objects (the closest this simulation gets to a real
process restart)."""

import os

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.kv import TrustedKV
from repro.platform import (
    CrashInjector,
    FileArchivalStore,
    FileUntrustedStore,
    SecretStore,
)
from repro.platform.tamper_resistant import (
    TamperResistantCounter,
    TamperResistantStore,
)
from repro.platform.trusted_platform import TrustedPlatform
from tests.conftest import make_config

_SIZE = 4 * 1024 * 1024


def file_platform(tmp_path, secret, counter_value=0, tr_bytes=b""):
    """Build a platform over files, with the trusted-store contents
    carried explicitly (real hardware would persist them internally)."""
    injector = CrashInjector()
    untrusted = FileUntrustedStore(str(tmp_path / "store.img"), _SIZE, injector)
    tr = TamperResistantStore()
    if tr_bytes:
        tr.write(tr_bytes)
        tr.write_count = 0
    counter = TamperResistantCounter(counter_value)
    return TrustedPlatform(
        secret_store=SecretStore(secret),
        tamper_resistant=tr,
        counter=counter,
        untrusted=untrusted,
        archival=FileArchivalStore(str(tmp_path / "archive")),
        injector=injector,
    )


class TestFileBackedPersistence:
    def test_full_stack_survives_cold_reopen(self, tmp_path):
        secret = os.urandom(16)
        platform = file_platform(tmp_path, secret)
        store = ChunkStore.format(platform, make_config())
        pid = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1"),
                ops.WriteChunk(pid, 0, b"on real disk"),
            ]
        )
        store.close()
        counter_value = platform.counter.read()
        platform.untrusted.close()
        del platform, store

        # a completely fresh set of objects over the same files
        platform2 = file_platform(tmp_path, secret, counter_value=counter_value)
        store2 = ChunkStore.open(platform2)
        assert store2.read_chunk(pid, 0) == b"on real disk"
        platform2.untrusted.close()

    def test_wrong_secret_cannot_open(self, tmp_path):
        from repro.errors import TamperDetectedError

        secret = os.urandom(16)
        platform = file_platform(tmp_path, secret)
        store = ChunkStore.format(platform, make_config())
        store.close()
        platform.untrusted.close()

        imposter = file_platform(tmp_path, os.urandom(16))
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(imposter)
        imposter.untrusted.close()

    def test_counter_rollback_across_processes_detected(self, tmp_path):
        """If the 'hardware' counter were reset (here: reopened at 0), the
        log legitimately being far ahead trips validation — the counter's
        monotonicity across restarts is load-bearing."""
        from repro.errors import TamperDetectedError

        secret = os.urandom(16)
        platform = file_platform(tmp_path, secret)
        config = make_config(delta_ut=1)
        store = ChunkStore.format(platform, config)
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="null", hash_name="sha1")]
        )
        for i in range(10):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        store.close()
        platform.untrusted.close()

        rolled_back = file_platform(tmp_path, secret, counter_value=0)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(rolled_back)
        rolled_back.untrusted.close()

    def test_kv_over_files_with_backup(self, tmp_path):
        secret = os.urandom(16)
        platform = file_platform(tmp_path, secret)
        kv = TrustedKV.create(platform)
        kv.put_many({f"doc:{i}": {"rev": i} for i in range(20)})
        from repro.backup import BackupStore

        BackupStore(kv.chunks).create_backup([kv.partition], "nightly")
        kv.close()
        counter_value = platform.counter.read()
        platform.untrusted.close()

        platform2 = file_platform(tmp_path, secret, counter_value=counter_value)
        kv2 = TrustedKV.open(platform2)
        assert kv2["doc:7"] == {"rev": 7}
        platform2.untrusted.close()
