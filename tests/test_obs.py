"""The ``repro.obs`` layer: tracing spans, latency histograms, and the
structured event log, plus the end-to-end smoke workload."""

import threading

import pytest

from repro import obs
from repro.obs.metrics import BUCKETS, LatencyHistogram
from repro.obs.trace import _NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate each test from the process-global obs state."""
    obs.reset()
    obs.disable_tracing()
    yield
    obs.reset()
    obs.disable_tracing()


class TestTracing:
    def test_disabled_span_is_the_shared_null_object(self):
        assert obs.span("anything") is _NULL_SPAN
        assert obs.span("other", pid=3) is _NULL_SPAN
        with obs.span("noop"):
            pass
        assert obs.trace.records() == []

    def test_enabled_span_records_name_duration_tags(self):
        obs.enable_tracing()
        with obs.span("commit", ops=4):
            pass
        (record,) = obs.trace.records()
        assert record.name == "commit"
        assert record.tags == {"ops": 4}
        assert record.duration >= 0.0
        assert record.depth == 0 and record.parent is None

    def test_nesting_tracks_depth_and_parent(self):
        obs.enable_tracing()
        with obs.span("commit"):
            with obs.span("map_walk"):
                pass
        inner, outer = obs.trace.records()  # children finish first
        assert (inner.name, inner.depth, inner.parent) == ("map_walk", 1, "commit")
        assert (outer.name, outer.depth, outer.parent) == ("commit", 0, None)

    def test_ring_is_bounded_and_counts_drops(self):
        from repro.obs.trace import SpanRecord

        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.record(
                SpanRecord(
                    seq=i, name=f"s{i}", start=0.0, duration=0.0,
                    depth=0, parent=None, thread=0,
                )
            )
        assert len(tracer.records()) == 4
        assert tracer.dropped == 2

    def test_nesting_is_per_thread(self):
        obs.enable_tracing()
        seen = []

        def worker():
            with obs.span("other_thread"):
                pass
            seen.extend(r for r in obs.trace.records()
                        if r.name == "other_thread")

        with obs.span("main_thread"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        (record,) = seen
        assert record.depth == 0  # the main thread's open span is invisible


class TestHistograms:
    def test_bucket_math(self):
        hist = LatencyHistogram("t")
        hist.record(0.0)  # bucket 0
        hist.record(1e-6)  # 1 µs -> bucket 1
        hist.record(100e-6)  # 100 µs -> bucket 7 (64..128)
        assert hist.buckets[0] == 1
        assert hist.buckets[1] == 1
        assert hist.buckets[7] == 1
        assert hist.count == 3

    def test_percentile_is_bucket_upper_bound_clamped_to_max(self):
        hist = LatencyHistogram("t")
        for _ in range(100):
            hist.record(100e-6)
        # all samples in [64, 128) µs; the bucket bound is 128 µs but the
        # observed max is 100 µs — the report clamps to the max so a
        # percentile can never exceed it
        assert hist.percentile(0.50) == pytest.approx(100e-6)
        assert hist.percentile(0.99) == pytest.approx(100e-6)

    def test_percentile_never_exceeds_observed_max(self):
        # regression: BENCH_store.json once reported chunkstore.commit
        # p50_ms 65.5 against max_ms 58.8 because percentiles were raw
        # bucket upper bounds
        hist = LatencyHistogram("t")
        for _ in range(50):
            hist.record(0.0588)  # just past the 2^15 µs bucket boundary
        snap = hist.snapshot()
        assert snap["p50_s"] <= snap["max_s"]
        assert snap["p95_s"] <= snap["max_s"]
        assert snap["p99_s"] <= snap["max_s"]
        assert snap["p50_s"] == pytest.approx(0.0588)

    def test_percentile_clamp_keeps_upper_bound_bias(self):
        # mixed buckets: the mid-bucket quantile still reports its
        # bucket's upper bound (the max lives in a higher bucket, so the
        # clamp does not fire), preserving reported >= true quantile
        hist = LatencyHistogram("t")
        for _ in range(99):
            hist.record(100e-6)  # bucket (64, 128] µs
        hist.record(0.01)  # max in a much higher bucket
        assert hist.percentile(0.50) == pytest.approx(128e-6)

    def test_percentiles_monotone(self):
        hist = LatencyHistogram("t")
        for us in (1, 2, 4, 50, 400, 10_000):
            for _ in range(10):
                hist.record(us * 1e-6)
        snap = hist.snapshot()
        assert snap["p50_s"] <= snap["p95_s"] <= snap["p99_s"]
        assert snap["p99_s"] >= snap["max_s"] / 2  # ≤2× resolution bias

    def test_extreme_sample_clamps_to_last_bucket(self):
        hist = LatencyHistogram("t")
        hist.record(2.0 ** 60)
        assert hist.buckets[BUCKETS - 1] == 1

    def test_negative_duration_clamps_to_zero(self):
        hist = LatencyHistogram("t")
        hist.record(-1.0)
        assert hist.buckets[0] == 1
        assert hist.max_seconds == 0.0

    def test_time_block_feeds_named_histogram(self):
        with obs.time_block("unit.block"):
            pass
        hist = obs.metrics.histogram_for("unit.block")
        assert hist is not None and hist.count == 1

    def test_counters_accumulate(self):
        obs.add("unit.counter")
        obs.add("unit.counter", 4)
        assert obs.metrics.counter_value("unit.counter") == 5


class TestEvents:
    def test_mark_and_since(self):
        obs.emit("alpha", n=1)
        mark = obs.events.mark()
        obs.emit("beta", n=2)
        tail = obs.events.since(mark)
        assert [e.kind for e in tail] == ["beta"]
        assert tail[0].fields == {"n": 2}

    def test_counts_survive_ring_eviction(self):
        from repro.obs.events import EventLog

        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("spin", i=i)
        assert len(log.events()) == 4
        assert log.count("spin") == 10

    def test_find_filters_by_kind(self):
        obs.emit("quarantine", chunk="1:0.3")
        obs.emit("repair", chunk="1:0.3")
        found = obs.events.find("quarantine")
        assert len(found) == 1 and found[0].fields["chunk"] == "1:0.3"


class TestSuspendReset:
    def test_suspend_noops_all_three_subsystems(self):
        obs.enable_tracing()
        with obs.suspend():
            obs.add("unit.suspended")
            obs.emit("suspended_event")
            assert obs.span("suspended_span") is _NULL_SPAN
            with obs.time_block("unit.suspended_hist"):
                pass
        assert obs.metrics.counter_value("unit.suspended") == 0
        assert obs.metrics.histogram_for("unit.suspended_hist") is None
        assert obs.events.count("suspended_event") == 0
        assert obs.trace.records() == []
        # and restores afterwards
        assert obs.trace.enabled()
        obs.add("unit.after")
        assert obs.metrics.counter_value("unit.after") == 1

    def test_reset_clears_but_keeps_tracing_state(self):
        obs.enable_tracing()
        obs.add("unit.x")
        obs.emit("unit_event")
        with obs.span("s"):
            pass
        obs.reset()
        assert obs.metrics.counter_value("unit.x") == 0
        assert obs.events.counts() == {}
        assert obs.trace.records() == []
        assert obs.trace.enabled()

    def test_snapshot_merges_events(self):
        obs.add("unit.c")
        obs.emit("unit_event")
        snap = obs.snapshot()
        assert snap["counters"]["unit.c"] == 1
        assert snap["events"]["unit_event"] == 1


class TestSmokeWorkload:
    def test_smoke_main_passes(self):
        from repro.obs import smoke

        assert smoke.main() == 0

    def test_inspect_metrics_view_has_read_and_commit_percentiles(self):
        from repro.obs.smoke import run_workload
        from repro.tools.inspect import metrics_view, trace_view

        run_workload()
        view = metrics_view()
        for name in ("chunkstore.read", "chunkstore.commit"):
            hist = view["latency"][name]
            assert hist["count"] > 0
            assert 0 < hist["p50_ms"] <= hist["p95_ms"] <= hist["p99_ms"]
        spans = trace_view()
        assert spans["tracing_enabled"]
        assert any("commit" in line for line in spans["spans"])
