"""§9.2.1 — cryptographic operation micro-benchmarks.

Paper: 3DES-CBC 2.5 MB/s, DES-CBC 7.2 MB/s, SHA-1 21.1 MB/s with a 5 µs
finalization cost.  Absolute numbers differ (pure Python vs C++ on a
450 MHz PC); the *shape* to check is: 3DES ≈ 3× slower than DES, hashing
much faster than encryption, finalization a small fixed cost, and the
"faster than DES" modern option (ctr-sha256) beating both.
"""

import time

import pytest

from benchmarks.conftest import PAPER, report
from repro.crypto.des import Des, TripleDes
from repro.crypto.hashing import Sha1Hash
from repro.crypto.modes import CbcCipher
from repro.crypto.registry import KEY_SIZES, make_cipher

_BUFFER = 64 * 1024  # keep pure-Python DES runs short


def _bandwidth(fn, size, repeat=3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return size / best / 1e6  # MB/s


@pytest.mark.parametrize(
    "name,paper_mb_s",
    [
        ("3des-cbc", PAPER["3des_mb_s"]),
        ("des-cbc", PAPER["des_mb_s"]),
        ("xtea-cbc", None),
        ("ctr-sha256", None),
    ],
)
def test_encryption_bandwidth(benchmark, name, paper_mb_s):
    cipher = make_cipher(name, bytes(range(KEY_SIZES[name])))
    data = b"\xa5" * _BUFFER
    benchmark(cipher.encrypt, data)
    mb_s = _bandwidth(lambda: cipher.encrypt(data), _BUFFER)
    report(
        "§9.2.1 encryption",
        [(name, f"{mb_s:.2f} MB/s", f"{paper_mb_s} MB/s" if paper_mb_s else "n/a")],
    )


def test_relative_cipher_speeds(benchmark):
    """3DES must be ≈3× DES (it is three DES passes); the modern stream
    cipher must beat DES (the paper's 'faster than DES' remark).

    Pinned to the pure-Python per-block implementations (``accel=False``,
    ``bulk=False``): the OpenSSL backend runs single DES as a degenerate
    3DES (both move at the same speed), and the bulk hooks optimize the
    single-pass loop harder than the triple-pass one — only the scalar
    paths preserve the paper's 3:1 algorithmic ratio.
    """
    data = b"\xa5" * _BUFFER
    des = CbcCipher(Des(bytes(8), accel=False), "des-cbc", bulk=False)
    tdes = CbcCipher(TripleDes(bytes(24), accel=False), "3des-cbc", bulk=False)
    ctr = make_cipher("ctr-sha256", bytes(16))
    benchmark(des.encrypt, data)
    des_mb = _bandwidth(lambda: des.encrypt(data), _BUFFER)
    tdes_mb = _bandwidth(lambda: tdes.encrypt(data), _BUFFER)
    ctr_mb = _bandwidth(lambda: ctr.encrypt(data), _BUFFER)
    assert 2.0 < des_mb / tdes_mb < 4.5
    assert ctr_mb > des_mb
    fast_des = make_cipher("des-cbc", bytes(8))
    fast_mb = _bandwidth(lambda: fast_des.encrypt(data), _BUFFER)
    report(
        "§9.2.1 relative speeds",
        [
            ("DES/3DES ratio", f"{des_mb / tdes_mb:.2f}", "≈2.9 (7.2/2.5)"),
            ("ctr-sha256 vs DES", f"{ctr_mb / des_mb:.1f}x", "faster than DES"),
            ("DES fast path", f"{fast_mb / des_mb:.1f}x python", "n/a"),
        ],
    )


def test_hashing_bandwidth(benchmark):
    data = b"\xa5" * (4 * 1024 * 1024)
    sha1 = Sha1Hash()
    benchmark(sha1.hash, data)
    mb_s = _bandwidth(lambda: sha1.hash(data), len(data))
    report(
        "§9.2.1 hashing",
        [("sha1", f"{mb_s:.1f} MB/s", f"{PAPER['sha1_mb_s']} MB/s")],
    )
    # hashing must be much faster than any block cipher we have
    des = make_cipher("des-cbc", bytes(8))
    des_mb = _bandwidth(lambda: des.encrypt(b"x" * _BUFFER), _BUFFER)
    assert mb_s > des_mb


def test_hash_finalization_cost(benchmark):
    """The fixed per-hash 'finalization' overhead (paper: 5 µs)."""
    sha1 = Sha1Hash()

    def finalize_only():
        sha1.new().digest()

    benchmark(finalize_only)
    start = time.perf_counter()
    for _ in range(10_000):
        finalize_only()
    per_call = (time.perf_counter() - start) / 10_000
    report(
        "§9.2.1 finalization",
        [("sha1 finalize", f"{per_call * 1e6:.2f} µs", f"{PAPER['sha1_finalize_us']} µs")],
    )
    assert per_call < 50e-6  # a small fixed cost, not a bandwidth term
