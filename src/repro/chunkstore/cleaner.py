"""Log cleaning (§4.9.5, §5.5).

The cleaner reclaims the storage of obsolete chunk versions by selecting a
low-utilization segment of the *checkpointed* log (never the residual
log), determining which versions in it are still current anywhere, and
re-committing those to the log tail.  The freed segment returns to the
free pool.

Currency is complicated by partition copies: a version written as ``P:x``
may be obsolete in ``P`` yet current in copies of ``P`` (or copies of
copies).  The cleaner checks the whole copy subtree rooted at the header
partition — which is sound because a chunk written under ``P`` can only
be referenced by ``P`` and partitions copied (transitively) from it, and
``P`` outlives its copies (deallocating ``P`` deallocates them all,
§5.1/§5.5).

Two safety properties from the paper:

* Because our re-commit *recomputes* hash values (the paper's simpler
  implemented variant), the cleaner **must validate** each current version
  before rewriting it — otherwise it would launder chunks an attacker
  modified into freshly-hashed, descriptor-valid versions.
* Rewritten versions keep their original header identity; a CLEANER
  record, written *before* them in the same commit set, tells recovery
  exactly which partitions each rewritten version is current in.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Tuple

from repro import obs
from repro.chunkstore.descriptor import ChunkDescriptor, ChunkStatus
from repro.chunkstore.ids import SYSTEM_PARTITION, ChunkId, leader_id
from repro.chunkstore.log import CleanerRecord, VersionKind
from repro.errors import IOFaultError, TamperDetectedError


logger = logging.getLogger("repro.chunkstore.cleaner")


class Cleaner:
    """Reclaims obsolete storage for a :class:`ChunkStore`."""

    def __init__(self, store) -> None:
        self.store = store
        #: segments cleaned over this cleaner's lifetime (stats)
        self.cleaned_segments = 0
        self.rewritten_versions = 0

    def clean_one(self) -> Optional[int]:
        """Clean the emptiest cleanable segment; returns its index, or
        ``None`` if no segment is worth cleaning."""
        store = self.store
        with store._lock:
            if store._snapshot_pins > 0:
                # Open snapshot views hold frozen roots into the current
                # extents; relocating or reusing those extents would tear
                # the snapshots (the MVCC vacuum tradeoff).  Decline and
                # let the caller retry after the views close.
                obs.add("chunkstore.clean_deferred_by_snapshots")
                obs.emit("clean_deferred", pins=store._snapshot_pins)
                return None
            candidates = store.segman.cleanable_segments()
            target = None
            for segment in candidates:
                if store.segman.live_bytes[segment] < store.segman.used_bytes[segment]:
                    target = segment
                    break
            if target is None:
                return None
            previous = store._in_maintenance
            store._in_maintenance = True
            try:
                with obs.span("cleaner_pass", segment=target), \
                        obs.time_block("chunkstore.cleaner_pass"):
                    self._clean_segment(target)
            finally:
                store._in_maintenance = previous
            self.cleaned_segments += 1
            obs.add("chunkstore.segments_cleaned")
            return target

    # ------------------------------------------------------------------

    def _current_partitions(self, cid: ChunkId, location: int) -> List[int]:
        """Partitions in which the version at ``location`` is current."""
        store = self.store
        if cid.partition != SYSTEM_PARTITION and not store.partition_exists(
            cid.partition
        ):
            return []  # dead partition ⇒ dead copies ⇒ obsolete version
        result = []
        for pid in store._collect_copy_family(cid.partition):
            if pid != SYSTEM_PARTITION and not store.partition_exists(pid):
                continue
            probe = ChunkId(pid, cid.height, cid.rank)
            descriptor = store._get_descriptor(probe)
            if descriptor.is_written() and descriptor.location == location:
                result.append(pid)
        return result

    def _clean_segment(self, segment: int) -> None:
        store = self.store
        store.logbuf.seal()  # reading raw segment bytes below
        codec = store.codec
        segman = store.segman
        start = segman.segment_start(segment)
        end = start + segman.used_bytes[segment]
        cursor = start

        # one round trip for the whole used span instead of two reads per
        # version; a faulted span read falls back to the per-version path
        span: Optional[bytes] = None
        if end > start:
            try:
                (span,) = store._io_read_many([(start, end - start)])
            except IOFaultError:
                span = None

        def read_at(offset: int, size: int) -> bytes:
            # a tampered header may declare a body past the buffered span;
            # the device read preserves the unbuffered failure behavior
            if span is not None and offset - start + size <= len(span):
                return span[offset - start : offset - start + size]
            return store._io_read(offset, size)

        #: (chunk id, plaintext body, partitions where current)
        survivors: List[Tuple[ChunkId, bytes, List[int]]] = []
        while cursor < end:
            header_ct = read_at(cursor, codec.header_cipher_size)
            header = codec.parse_header(header_ct)  # raises TamperDetected
            body_ct = read_at(
                cursor + codec.header_cipher_size, header.body_cipher_size
            )
            version_len = codec.header_cipher_size + header.body_cipher_size
            if header.kind == VersionKind.NAMED:
                cid = header.chunk_id
                if cid != leader_id(SYSTEM_PARTITION):
                    pids = self._current_partitions(cid, cursor)
                    if pids:
                        # validate before rewriting (no laundering); on an
                        # AEAD partition this is the one-pass path — the
                        # decrypt verifies the tag and the digest *is* the
                        # stored tag
                        state = store._state(pids[0])
                        body, digest = codec.validate_named(
                            header, body_ct, state.cipher, state.hash
                        )
                        expected = store._get_descriptor(
                            ChunkId(pids[0], cid.height, cid.rank)
                        )
                        if digest != expected.body_hash:
                            raise TamperDetectedError(
                                f"cleaner: chunk {cid} at {cursor} fails validation"
                            )
                        survivors.append((cid, body, pids))
            # unnamed chunks are always obsolete in the checkpointed log
            cursor += version_len

        if survivors:
            self._rewrite(survivors)
        segman.release_segment(segment)
        logger.debug(
            "cleaned segment %d: %d current version(s) rewritten",
            segment,
            len(survivors),
        )

    def _rewrite(self, survivors: List[Tuple[ChunkId, bytes, List[int]]]) -> None:
        """Re-commit the current versions to the log tail (one commit)."""
        store = self.store
        codec = store.codec
        if store.config.validation_mode == "counter":
            store.validator.begin_commit()
        record = CleanerRecord(
            [(cid.height, cid.rank, pids) for cid, body, pids in survivors]
        )
        version = codec.build_unnamed(VersionKind.CLEANER, record.encode())
        store._append_version(version)
        for cid, body, pids in survivors:
            state = store._state(pids[0])
            rewritten, digest = codec.build_named(cid, body, state.cipher, state.hash)
            location = store._append_version(rewritten)
            descriptor = ChunkDescriptor(
                ChunkStatus.WRITTEN, location, len(rewritten), digest
            )
            for pid in pids:
                store._apply_chunk_write(
                    ChunkId(pid, cid.height, cid.rank), descriptor.copy()
                )
            self.rewritten_versions += 1
        store._finalize_commit()
