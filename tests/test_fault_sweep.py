"""Fault-tolerance sweep: the succeed-or-typed-error-or-healable-
quarantine invariant under seeded I/O fault injection.

The quick sweep (tier 1) runs 150 trials per validation mode — 300 seeded
trials total across every fault point × error rate cell (rates up to
10%) — and requires zero silent corruptions and zero non-TDB exceptions.
The slow-marked sweep deepens the run for nightly CI.  Any failure prints
a ``make fault-sweep ...`` line that replays the exact seed.
"""

import pytest

from repro.testing.faultsweep import (
    FAILSTOP,
    FOREIGN_FAULT_ERROR,
    OK,
    POINTS,
    RATES,
    SILENT_FAULT_CORRUPTION,
    FaultSweep,
)

MODES = ["counter", "direct"]


@pytest.fixture(scope="module")
def sweeps():
    """One scenario build per mode, shared by every test in the module
    (trials restore from the snapshot, so sharing is safe)."""
    return {mode: FaultSweep(mode) for mode in MODES}


def _assert_no_failures(result):
    lines = [
        f"{r.outcome}: seed={r.seed} point={r.point} rate={r.rate} "
        f"{r.detail}\n  repro: {r.repro_line(result.mode)}"
        for r in result.failures
    ]
    assert not result.failures, (
        f"{len(lines)} invariant violation(s) in mode={result.mode}:\n"
        + "\n".join(lines)
    )


@pytest.mark.parametrize("mode", MODES)
def test_fault_sweep(sweeps, mode):
    """150 seeded fault trials per mode (300 total across the
    parametrization, the ISSUE's acceptance bar), covering every fault
    point and every rate up to 10%, with zero silent corruptions."""
    result = sweeps[mode].run(150)
    _assert_no_failures(result)
    outcomes = result.outcomes()
    assert outcomes.get(SILENT_FAULT_CORRUPTION, 0) == 0
    assert outcomes.get(FOREIGN_FAULT_ERROR, 0) == 0
    # coverage: every cell of the point × rate grid was exercised
    cells = {(r.point, r.rate) for r in result.reports}
    assert cells == {(p, r) for p in POINTS for r in RATES}
    # sanity: the sweep is neither vacuous (everything trivially ok) nor
    # degenerate (everything failing-stop)
    assert outcomes.get(OK, 0) < len(result.reports)
    assert outcomes.get(FAILSTOP, 0) < len(result.reports) // 2


def test_trials_are_deterministic(sweeps):
    sweep = sweeps["counter"]
    first = sweep.run_trial(17)
    again = sweep.run_trial(17)
    assert first == again


def test_pinned_point_and_rate(sweeps):
    report = sweeps["counter"].run_trial(3, point="read", rate=0.1)
    assert report.point == "read"
    assert report.rate == 0.1
    assert not report.failed


@pytest.mark.parametrize("mode", MODES)
def test_crash_under_faults_sweep(sweeps, mode):
    """Fail-stop crashes at every discovered injection site, composed
    with transient fault injection: recovery always lands on acceptable
    bytes (the check itself raises on a violation)."""
    sites = sweeps[mode].sweep_crash_sites(samples_per_point=2)
    assert len(sites) >= 10  # the workload crosses plenty of crash points


@pytest.mark.slow
@pytest.mark.parametrize("mode", MODES)
def test_fault_sweep_deep(sweeps, mode):
    """Nightly-depth: 500 trials per mode."""
    result = sweeps[mode].run(500)
    _assert_no_failures(result)
