"""Tamper-resistant store and tamper-resistant counter (§2.1, §4.8.2).

Both variants share the contract that matters for TDB's security argument:

* only trusted programs can write them (simulated by reference hiding);
* updates are atomic with respect to crashes.

The generic store holds a few bytes (the residual-log hash plus the log
tail location under direct hash validation).  The counter variant is the
strictly weaker device: it can only move forward, which is all
counter-based validation needs.

Both count their writes: the paper's performance analysis (Figure 12)
attributes a distinct latency ``l_t`` to tamper-resistant store flushes.
"""

from __future__ import annotations


class TamperResistantStore:
    """A small writable store; writes are atomic across crashes."""

    SIZE = 64  # generous: hash digest + tail location

    def __init__(self) -> None:
        self._data = b""
        self.write_count = 0

    def write(self, data: bytes) -> None:
        if len(data) > self.SIZE:
            raise ValueError(
                f"tamper-resistant store holds at most {self.SIZE} bytes, "
                f"got {len(data)}"
            )
        # Atomic: a simulated crash can only observe the old or new value,
        # never a torn write — callers crash *around* this call, not inside.
        self._data = bytes(data)
        self.write_count += 1

    def read(self) -> bytes:
        return self._data


class TamperResistantCounter:
    """A monotonic counter that no program can decrement (§4.8.2.2).

    This is the weaker requirement: even *untrusted* programs may be allowed
    to increment it, because they cannot produce a commit chunk signed for
    the higher count.
    """

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError("counter cannot be negative")
        self._value = initial
        self.write_count = 0

    def increment(self) -> int:
        self._value += 1
        self.write_count += 1
        return self._value

    def advance_to(self, value: int) -> None:
        """Advance to ``value``; refuses to move backwards."""
        if value < self._value:
            raise ValueError(
                f"counter cannot decrement ({self._value} -> {value})"
            )
        if value != self._value:
            self._value = value
            self.write_count += 1

    def read(self) -> int:
        return self._value
