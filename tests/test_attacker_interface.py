"""The untrusted store's accounting and attacker API contracts.

Three groups:

* flush accounting — ``flushed_bytes`` counts only records that actually
  became durable, even when a crash tears the flush partway through;
* batched reads — ``read_many`` is one round trip in :class:`IOStats`;
* attacker-interface properties — tampering is invisible to the trusted
  side's accounting and crash machinery (no stats, no journal effects),
  and ``simulate_crash`` after ``tamper_replay`` is a no-op.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CrashError
from repro.platform.crash import CrashInjector
from repro.platform.untrusted import MemoryUntrustedStore

SIZE = 64 * 1024


def make_store():
    return MemoryUntrustedStore(SIZE, CrashInjector())


# -- flush accounting ---------------------------------------------------------


def test_flushed_bytes_counts_full_flush():
    store = make_store()
    store.write(0, b"a" * 100)
    store.write(200, b"b" * 50)
    store.flush()
    assert store.stats.flushed_bytes == 150
    assert store.stats.flushes == 1


@pytest.mark.parametrize("survivors", [0, 1, 2])
def test_flushed_bytes_not_counted_past_torn_flush(survivors):
    """Regression: the tally used to be incremented *before* the
    ``untrusted.flush.partial`` crash point, so a torn flush counted the
    record that never became durable."""
    store = make_store()
    lengths = [100, 50, 75]
    for i, length in enumerate(lengths):
        store.write(i * 1000, bytes([i]) * length)
    store.injector.arm("untrusted.flush.partial", countdown=survivors)
    with pytest.raises(CrashError):
        store.flush()
    store.injector.disarm()
    # only the records the flush got past are durable — and tallied
    assert store.stats.flushed_bytes == sum(lengths[:survivors])
    # the un-flushed suffix is still journalled, so a crash reverts it
    store.simulate_crash()
    for i, length in enumerate(lengths):
        data = store.tamper_read(i * 1000, length)
        if i < survivors:
            assert data == bytes([i]) * length
        else:
            assert data == bytes(length)


def test_torn_flush_then_reflush_tallies_remainder():
    store = make_store()
    store.write(0, b"x" * 100)
    store.write(500, b"y" * 60)
    store.injector.arm("untrusted.flush.partial", countdown=1)
    with pytest.raises(CrashError):
        store.flush()
    store.injector.disarm()
    assert store.stats.flushed_bytes == 100
    store.flush()  # the journalled suffix flushes now
    assert store.stats.flushed_bytes == 160


# -- batched reads ------------------------------------------------------------


def test_read_many_is_one_round_trip():
    store = make_store()
    store.write(0, b"a" * 128)
    store.write(1024, b"b" * 256)
    store.flush()
    store.stats.reset()
    results = store.read_many([(0, 128), (1024, 256), (4096, 16)])
    assert results[0] == b"a" * 128
    assert results[1] == b"b" * 256
    assert results[2] == bytes(16)
    assert store.stats.reads == 1
    assert store.stats.batched_reads == 1
    assert store.stats.bytes_read == 128 + 256 + 16


def test_read_many_empty_batch_costs_nothing():
    store = make_store()
    assert store.read_many([]) == []
    assert store.stats.reads == 0
    assert store.stats.batched_reads == 0
    assert store.stats.bytes_read == 0


def test_read_many_matches_single_reads():
    store = make_store()
    store.write(100, bytes(range(200)) + bytes(56))
    store.flush()
    extents = [(100, 64), (164, 64), (5000, 32)]
    batched = store.read_many(extents)
    assert batched == [store.read(o, s) for o, s in extents]


# -- attacker-interface properties --------------------------------------------


extent_strategy = st.tuples(
    st.integers(0, SIZE - 1), st.integers(1, 2048)
).map(lambda t: (t[0], min(t[1], SIZE - t[0])))


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(extent_strategy, min_size=0, max_size=8),
    tampers=st.lists(
        st.tuples(extent_strategy, st.binary(min_size=1, max_size=64)),
        min_size=1,
        max_size=8,
    ),
)
def test_tamper_write_invisible_to_accounting(writes, tampers):
    """tamper_write touches neither IOStats nor the undo journal: trusted
    crash-recovery behaviour is the same with or without the attacker."""
    store = make_store()
    for offset, size in writes:
        store.write(offset, b"\xaa" * size)
    stats_before = store.stats.snapshot()
    journal_before = [
        (r.offset, r.old_bytes, r.new_len) for r in store._undo
    ]
    for (offset, size), payload in tampers:
        store.tamper_write(offset, payload[:size] or payload[:1])
    assert store.stats.delta(stats_before) == type(store.stats)()
    assert [
        (r.offset, r.old_bytes, r.new_len) for r in store._undo
    ] == journal_before


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(extent_strategy, min_size=0, max_size=8),
    flush_first=st.booleans(),
)
def test_tamper_replay_then_crash_is_noop(writes, flush_first):
    """tamper_replay installs the image verbatim and empties the journal,
    so a subsequent simulate_crash changes nothing — a replayed image has
    no 'un-flushed writes' to lose.  IOStats are untouched throughout."""
    store = make_store()
    for i, (offset, size) in enumerate(writes):
        store.write(offset, bytes([i + 1]) * size)
    if flush_first:
        store.flush()
    saved = store.tamper_image()
    for offset, size in writes:  # diverge from the saved image
        store.write(offset, b"\xff" * size)
    stats_before = store.stats.snapshot()
    store.tamper_replay(saved)
    assert store.stats.delta(stats_before) == type(store.stats)()
    assert store._undo == []
    image_after_replay = store.tamper_image()
    store.simulate_crash()
    assert store.tamper_image() == image_after_replay == saved


def test_tamper_read_no_accounting():
    store = make_store()
    store.write(0, b"z" * 64)
    store.flush()
    stats_before = store.stats.snapshot()
    assert store.tamper_read(0, 64) == b"z" * 64
    assert store.tamper_image()[:64] == b"z" * 64
    assert store.stats.delta(stats_before) == type(store.stats)()
