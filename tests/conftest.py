"""Shared fixtures for the TDB test suite."""

from __future__ import annotations

import pytest

from repro.chunkstore import ChunkStore, StoreConfig
from repro.platform import TrustedPlatform


def make_config(**overrides) -> StoreConfig:
    """A small, fast store configuration for tests.

    ``ctr-sha256`` keeps the pure-Python crypto cost negligible; dedicated
    crypto tests exercise DES/3DES explicitly.
    """
    defaults = dict(
        segment_size=16 * 1024,
        system_cipher="ctr-sha256",
        system_hash="sha1",
        validation_mode="counter",
        delta_ut=1,
        checkpoint_dirty_threshold=256,
    )
    defaults.update(overrides)
    return StoreConfig(**defaults)


def make_platform(size: int = 4 * 1024 * 1024, **kwargs) -> TrustedPlatform:
    return TrustedPlatform.create_in_memory(untrusted_size=size, **kwargs)


@pytest.fixture
def platform() -> TrustedPlatform:
    return make_platform()


@pytest.fixture
def store(platform) -> ChunkStore:
    return ChunkStore.format(platform, make_config())


@pytest.fixture(params=["counter", "direct"])
def any_mode_store(platform, request) -> ChunkStore:
    """A store in each validation mode (parametrized)."""
    return ChunkStore.format(
        platform, make_config(validation_mode=request.param)
    )
