#!/usr/bin/env python
"""§10 extensions in action: trusted paging and remote untrusted storage.

1. **Trusted paging** — a trusted program whose working state exceeds the
   trusted environment pages it out through the chunk store: evicted
   pages are encrypted and validated, so the untrusted swap area can
   neither read nor undetectably modify them.
2. **Remote untrusted storage** — the same database backed by an
   untrusted *server*, with round-trip accounting showing the batching
   optimisation the paper proposes.

Run:  python examples/trusted_paging.py
"""

from repro import ChunkStore, StoreConfig, TrustedPlatform
from repro.errors import TamperDetectedError
from repro.extensions import NetworkModel, RemoteUntrustedStore, TrustedPager
from repro.platform import MemoryUntrustedStore


def paging_demo() -> None:
    print("=== trusted paging (§10) ===")
    platform = TrustedPlatform.create_in_memory(untrusted_size=16 * 1024 * 1024)
    chunks = ChunkStore.format(platform, StoreConfig(system_cipher="ctr-sha256"))
    # a tiny trusted environment: only 8 frames of 1 KiB resident at once
    pager = TrustedPager(chunks, page_size=1024, frames=8)

    # the "trusted program" fills a 64-page working set
    for page in range(64):
        pager.write(page, 0, f"secret working state, page {page:03d}".encode())
    print(f"64 pages written; resident={pager.resident_pages}, "
          f"evictions={pager.evictions}")

    # everything reads back, faulting from encrypted storage
    for page in range(64):
        content = pager.read(page, 0, 40)
        assert content.startswith(b"secret working state")
    print(f"all pages read back; page faults so far: {pager.faults}")

    pager.sync()
    image = platform.untrusted.tamper_image()
    assert b"secret working state" not in image
    print("secrecy: paged-out state is ciphertext on the untrusted store")

    # the attacker corrupts the swap area: the fault handler detects it
    from repro.chunkstore.ids import data_id

    victim = next(p for p in range(64) if p not in pager._resident)
    descriptor = chunks._get_descriptor(data_id(pager.partition, victim))
    byte = platform.untrusted.tamper_read(descriptor.location + 30, 1)
    platform.untrusted.tamper_write(
        descriptor.location + 30, bytes([byte[0] ^ 1])
    )
    chunks.cache.clear()
    try:
        pager.read(victim)
        print("(!) the flip landed harmlessly")
    except TamperDetectedError:
        print(f"tampered swap page {victim} detected at page-fault time")


def remote_demo() -> None:
    print("\n=== untrusted storage on a server (§10) ===")
    remote = RemoteUntrustedStore(MemoryUntrustedStore(4 * 1024 * 1024))
    extents = [(i * 2048, 512) for i in range(50)]
    for offset, _ in extents:
        remote.write(offset, b"\x42" * 512)
    remote.flush()

    remote.reset_accounting()
    for offset, size in extents:
        remote.read(offset, size)
    naive = remote.round_trips

    remote.reset_accounting()
    remote.read_many(extents)
    batched = remote.round_trips

    wan = NetworkModel(round_trip_latency=0.05)  # 50 ms WAN
    print(f"50 reads, one at a time: {naive} round trips "
          f"(~{wan.time(naive, 25600)*1000:.0f} ms over a WAN)")
    print(f"50 reads, batched:       {batched} round trip "
          f"(~{wan.time(batched, 25600)*1000:.0f} ms)")
    print("batching reads is the paper's suggested server-mode optimisation")


if __name__ == "__main__":
    paging_demo()
    remote_demo()
