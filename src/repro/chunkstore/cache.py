"""Descriptor cache (§4.5, §4.6).

The chunk map keeps a cache of descriptors indexed by chunk id.  The cache
serves two distinct roles:

* *performance* — the bottom-up read path stops at the first cached
  descriptor, so a warm cache avoids re-validating the whole path from the
  leader (the data a cached descriptor came from was already decrypted and
  validated);
* *correctness* — commits update descriptors **only** in the cache, marking
  them dirty and pinned (§4.6).  The persistent map chunks become stale
  until the next checkpoint; the bottom-up search order guarantees the
  stale persistent descriptor is never consulted while a dirty one shadows
  it.  Dirty descriptors are therefore never evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

from repro.chunkstore.descriptor import ChunkDescriptor
from repro.chunkstore.ids import ChunkId


class DescriptorCache:
    """LRU cache of chunk descriptors with dirty pinning."""

    def __init__(self, max_clean: int = 4096) -> None:
        self._max_clean = max_clean
        self._clean: "OrderedDict[ChunkId, ChunkDescriptor]" = OrderedDict()
        self._dirty: Dict[ChunkId, ChunkDescriptor] = {}
        self.hits = 0
        self.misses = 0

    def get(self, chunk_id: ChunkId) -> Optional[ChunkDescriptor]:
        if chunk_id in self._dirty:
            self.hits += 1
            return self._dirty[chunk_id]
        descriptor = self._clean.get(chunk_id)
        if descriptor is not None:
            self._clean.move_to_end(chunk_id)
            self.hits += 1
            return descriptor
        self.misses += 1
        return None

    def put_clean(self, chunk_id: ChunkId, descriptor: ChunkDescriptor) -> None:
        """Insert a descriptor read (and validated) from a map chunk."""
        if chunk_id in self._dirty:
            return  # a dirty descriptor shadows any persistent state
        self._clean[chunk_id] = descriptor
        self._clean.move_to_end(chunk_id)
        while len(self._clean) > self._max_clean:
            self._clean.popitem(last=False)

    def put_dirty(self, chunk_id: ChunkId, descriptor: ChunkDescriptor) -> None:
        """Record a committed update; pinned until the next checkpoint."""
        self._clean.pop(chunk_id, None)
        self._dirty[chunk_id] = descriptor

    def drop(self, chunk_id: ChunkId) -> None:
        self._clean.pop(chunk_id, None)
        self._dirty.pop(chunk_id, None)

    def drop_partition(self, partition: int) -> None:
        """Forget everything about a deallocated partition."""
        for cid in [c for c in self._clean if c.partition == partition]:
            del self._clean[cid]
        for cid in [c for c in self._dirty if c.partition == partition]:
            del self._dirty[cid]

    def dirty_count(self) -> int:
        return len(self._dirty)

    def dirty_items(self) -> Iterator[Tuple[ChunkId, ChunkDescriptor]]:
        return iter(list(self._dirty.items()))

    def clean_all_dirty(self) -> None:
        """After a checkpoint persists the map, dirty entries become clean."""
        for chunk_id, descriptor in self._dirty.items():
            self._clean[chunk_id] = descriptor
        self._dirty.clear()
        while len(self._clean) > self._max_clean:
            self._clean.popitem(last=False)

    def clear(self) -> None:
        self._clean.clear()
        self._dirty.clear()
