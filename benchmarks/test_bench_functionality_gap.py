"""§1.2's functionality argument, quantified.

"the database system could not maintain ordered indexes for range
queries on encrypted data" — the layered design's indexes see only
deterministic ciphertext, so a range query degenerates to a full scan
with client-side decryption and filtering.  TDB's indexes sit below the
crypto and answer ranges from the sorted B-tree directly.

This bench runs the same range query on both systems and reports the
touched-object counts and latency gap.
"""

import time

from benchmarks.conftest import report
from repro.bench.adapters import TdbAdapter, XdbAdapter

_POPULATION = 600
_LOW, _HIGH = 100, 120  # ~2% selectivity


def _populate(adapter, spec):
    adapter.begin()
    coll = adapter.create_collection(spec)
    handles = []
    for i in range(_POPULATION):
        handles.append(
            adapter.insert(
                coll,
                {
                    "ident": i,
                    "price": (i * 7919) % 1000,
                    "owner": 0,
                    "status": "active",
                    "uses": 0,
                    "payload": b"p" * 100,
                },
            )
        )
    adapter.commit()
    return coll, handles


def test_range_query_vs_scan_fallback(benchmark):
    from repro.bench.workload import CollectionSpec, IndexSpec

    spec = CollectionSpec(
        "priced",
        [
            IndexSpec("priced_by_ident", "ident", sorted_index=False),
            IndexSpec("priced_by_price", "price", sorted_index=True),
        ],
    )

    # --- TDB: real range query over the sorted index ------------------------
    tdb = TdbAdapter()
    coll, _handles = _populate(tdb, spec)
    tdb.begin()
    start = time.perf_counter()
    tdb_hits = [
        tdb._tx.get(ref)
        for _key, ref in tdb.collections.range(
            tdb._tx, coll, "priced_by_price", _LOW, _HIGH
        )
    ]
    tdb_time = time.perf_counter() - start
    tdb.commit()

    # --- XDB: deterministic-ciphertext index cannot answer ranges; the
    #     application falls back to scanning and filtering client-side ----
    xdb = XdbAdapter()
    xcoll, _ = _populate(xdb, spec)
    start = time.perf_counter()
    xdb_hits = []
    scanned = 0
    for rid, _ct in xdb.db.db.scan(xcoll):
        value = xdb.db.read(xcoll, rid)  # decrypt + validate each record
        scanned += 1
        if _LOW <= value["price"] <= _HIGH:
            xdb_hits.append(value)
    xdb_time = time.perf_counter() - start

    def tdb_range_query():
        with tdb.objects.transaction() as tx:
            return list(
                tdb.collections.range(tx, coll, "priced_by_price", _LOW, _HIGH)
            )

    benchmark(tdb_range_query)
    assert sorted(h["ident"] for h in tdb_hits) == sorted(
        h["ident"] for h in xdb_hits
    ), "both systems must return the same answer"
    report(
        "§1.2 range-query functionality gap",
        [
            ("result size", str(len(tdb_hits)), f"of {_POPULATION}"),
            (
                "TDB objects touched",
                f"{len(tdb_hits)} (index-directed)",
                "sorted index below the crypto",
            ),
            (
                "XDB objects touched",
                f"{scanned} (full scan + decrypt)",
                "ordered indexes impossible on ciphertext",
            ),
            (
                "latency",
                f"TDB {tdb_time*1e3:.1f} ms vs XDB {xdb_time*1e3:.1f} ms "
                f"({xdb_time/max(tdb_time,1e-9):.0f}x)",
                "",
            ),
        ],
    )
    assert scanned == _POPULATION
    assert xdb_time > tdb_time
