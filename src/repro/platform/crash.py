"""Fail-stop crash injection.

TDB promises crash *atomicity*: a commit either happens entirely or not at
all with respect to fail-stop crashes such as power failures (§2.2).  To
test that promise we need to crash the system at every interesting point:
mid-way through writing a commit set, after the untrusted store is flushed
but before the tamper-resistant store is updated, between the two, during a
checkpoint, and so on.

Components call :meth:`CrashInjector.point` at named instants.  A test arms
the injector with a point name and a countdown; when the countdown reaches
zero at a matching point, :class:`~repro.errors.CrashError` is raised.  The
stores then revert any un-flushed state (see
:meth:`repro.platform.untrusted.UntrustedStore.simulate_crash`), and the
test re-opens the database to exercise recovery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CrashError


class CrashInjector:
    """Raises :class:`CrashError` at an armed instrumentation point."""

    def __init__(self) -> None:
        self._armed: Optional[Tuple[str, int]] = None
        self._history: List[str] = []
        self.counts: Dict[str, int] = {}

    def arm(self, point_name: str, countdown: int = 0) -> None:
        """Crash at the ``countdown``-th future occurrence of ``point_name``.

        ``countdown=0`` crashes at the next occurrence.
        """
        self._armed = (point_name, countdown)

    def disarm(self) -> None:
        self._armed = None

    @property
    def history(self) -> List[str]:
        """All points hit so far (useful for discovering crash points)."""
        return list(self._history)

    def point(self, name: str) -> None:
        """Called by instrumented components; may raise :class:`CrashError`."""
        self._history.append(name)
        self.counts[name] = self.counts.get(name, 0) + 1
        if self._armed is None:
            return
        armed_name, countdown = self._armed
        if armed_name != name:
            return
        if countdown > 0:
            self._armed = (armed_name, countdown - 1)
            return
        self._armed = None
        raise CrashError(f"injected crash at point {name!r}")
