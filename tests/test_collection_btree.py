"""The persistent B-tree (§8), checked against a dict model with
hypothesis-driven operation sequences."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chunkstore import ChunkStore
from repro.collection import btree
from repro.errors import IndexError_
from repro.objectstore import ObjectStore
from tests.conftest import make_config, make_platform


@pytest.fixture
def env():
    platform = make_platform(size=16 * 1024 * 1024)
    chunks = ChunkStore.format(platform, make_config(segment_size=32 * 1024))
    objects = ObjectStore(chunks, cache_size=16384)
    pid = objects.create_partition(cipher_name="null", hash_name="sha1")
    return objects, pid


def build_tree(objects, pid, entries):
    with objects.transaction() as tx:
        root = btree.create(tx, pid)
        refs = {}
        for key in entries:
            refs[key] = tx.create(pid, f"obj-{key}")
            root = btree.insert(tx, pid, root, key, refs[key])
    return root, refs


class TestBasics:
    def test_empty_tree(self, env):
        objects, pid = env
        with objects.transaction() as tx:
            root = btree.create(tx, pid)
            assert btree.lookup(tx, root, 5) == []
            assert list(btree.iterate(tx, root)) == []

    def test_insert_lookup(self, env):
        objects, pid = env
        root, refs = build_tree(objects, pid, range(10))
        with objects.transaction() as tx:
            assert btree.lookup(tx, root, 7) == [refs[7]]
            assert btree.lookup(tx, root, 99) == []

    def test_duplicate_keys_accumulate_refs(self, env):
        objects, pid = env
        with objects.transaction() as tx:
            root = btree.create(tx, pid)
            r1 = tx.create(pid, "a")
            r2 = tx.create(pid, "b")
            root = btree.insert(tx, pid, root, "same", r1)
            root = btree.insert(tx, pid, root, "same", r2)
            assert set(btree.lookup(tx, root, "same")) == {r1, r2}

    def test_insert_same_pair_idempotent(self, env):
        objects, pid = env
        with objects.transaction() as tx:
            root = btree.create(tx, pid)
            ref = tx.create(pid, "a")
            root = btree.insert(tx, pid, root, 1, ref)
            root = btree.insert(tx, pid, root, 1, ref)
            assert btree.lookup(tx, root, 1) == [ref]

    def test_ordered_iteration_through_splits(self, env):
        objects, pid = env
        keys = list(range(0, 500, 7)) + list(range(3, 500, 11))
        root, refs = build_tree(objects, pid, keys)
        with objects.transaction() as tx:
            got = [key for key, _ in btree.iterate(tx, root)]
        # keys occurring in both ranges carry two refs and appear twice
        assert got == sorted(keys)

    def test_range_query(self, env):
        objects, pid = env
        root, refs = build_tree(objects, pid, range(100))
        with objects.transaction() as tx:
            got = [k for k, _ in btree.iterate(tx, root, low=25, high=30)]
            assert got == [25, 26, 27, 28, 29, 30]
            got = [k for k, _ in btree.iterate(tx, root, low=25, high=30,
                                               low_inclusive=False,
                                               high_inclusive=False)]
            assert got == [26, 27, 28, 29]
            got = [k for k, _ in btree.iterate(tx, root, low=95)]
            assert got == [95, 96, 97, 98, 99]
            got = [k for k, _ in btree.iterate(tx, root, high=3)]
            assert got == [0, 1, 2, 3]

    def test_remove(self, env):
        objects, pid = env
        root, refs = build_tree(objects, pid, range(200))
        with objects.transaction() as tx:
            for key in range(0, 200, 2):
                root = btree.remove(tx, pid, root, key, refs[key])
            remaining = [k for k, _ in btree.iterate(tx, root)]
        assert remaining == list(range(1, 200, 2))

    def test_remove_missing_raises(self, env):
        objects, pid = env
        root, refs = build_tree(objects, pid, range(5))
        with objects.transaction() as tx:
            with pytest.raises(IndexError_):
                btree.remove(tx, pid, root, 99, refs[0])

    def test_persistence(self, env):
        objects, pid = env
        root, refs = build_tree(objects, pid, range(150))
        objects.chunks.checkpoint()
        objects.cache.clear()
        objects.chunks.cache.clear()
        with objects.transaction() as tx:
            assert btree.lookup(tx, root, 120) == [refs[120]]
            assert len(list(btree.iterate(tx, root))) == 150

    def test_string_keys(self, env):
        objects, pid = env
        keys = [f"key-{i:04d}" for i in range(80)]
        root, refs = build_tree(objects, pid, keys)
        with objects.transaction() as tx:
            got = [k for k, _ in btree.iterate(tx, root, low="key-0010", high="key-0015")]
        assert got == [f"key-{i:04d}" for i in range(10, 16)]

    def test_tuple_keys(self, env):
        objects, pid = env
        keys = [(i % 5, i) for i in range(60)]
        root, refs = build_tree(objects, pid, keys)
        with objects.transaction() as tx:
            got = [k for k, _ in btree.iterate(tx, root)]
        assert got == sorted(keys)


class TestModelBased:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove", "lookup"]),
                st.integers(0, 60),
            ),
            max_size=120,
        )
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_against_dict_model(self, ops):
        platform = make_platform(size=16 * 1024 * 1024)
        chunks = ChunkStore.format(platform, make_config(segment_size=32 * 1024))
        objects = ObjectStore(chunks, cache_size=16384)
        pid = objects.create_partition(cipher_name="null", hash_name="sha1")
        model = {}
        with objects.transaction() as tx:
            root = btree.create(tx, pid)
            ref_pool = {key: tx.create(pid, key) for key in range(61)}
            for op, key in ops:
                if op == "insert":
                    root = btree.insert(tx, pid, root, key, ref_pool[key])
                    model.setdefault(key, set()).add(ref_pool[key])
                elif op == "remove" and key in model:
                    root = btree.remove(tx, pid, root, key, ref_pool[key])
                    model[key].discard(ref_pool[key])
                    if not model[key]:
                        del model[key]
                else:
                    assert set(btree.lookup(tx, root, key)) == model.get(key, set())
            # final full check: iteration matches the model exactly
            got = {}
            for key, ref in btree.iterate(tx, root):
                got.setdefault(key, set()).add(ref)
            assert got == model
