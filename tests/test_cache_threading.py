"""Multi-threaded hammer tests for the internally-locked caches.

``ValidatedChunkCache`` and ``ObjectCache`` are shared by concurrent
server sessions (and snapshot views read through the payload cache
without the chunk-store lock), so their LRU bookkeeping, per-partition
indexes, and byte accounting must survive arbitrary interleavings.  The
hammers drive mixed get/put/invalidate traffic from several threads and
then check the internal invariants the unlocked versions corrupted.
"""

import threading
from collections import namedtuple

from repro.chunkstore.cache import ValidatedChunkCache
from repro.chunkstore.ids import ChunkId
from repro.objectstore.cache import ObjectCache
from repro.platform.untrusted import MemoryUntrustedStore

THREADS = 8
ROUNDS = 400


def _run_all(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestValidatedChunkCacheHammer:
    def test_mixed_traffic_preserves_byte_accounting(self):
        cache = ValidatedChunkCache(max_bytes=16 * 1024)
        errors = []

        def worker(seed):
            try:
                for i in range(ROUNDS):
                    cid = ChunkId(seed % 4, 0, (seed * ROUNDS + i) % 64)
                    op = (seed + i) % 5
                    if op <= 1:
                        cache.put(cid, bytes(((seed + i) % 251) + 1))
                    elif op == 2:
                        payload = cache.get(cid)
                        if payload is not None:
                            assert len(payload) == ((seed + i) % 251) + 1
                    elif op == 3:
                        cache.invalidate(cid)
                    else:
                        cache.drop_partition(seed % 4)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        _run_all([lambda s=s: worker(s) for s in range(THREADS)])
        assert not errors
        stats = cache.stats()
        # byte accounting must equal the actual resident payload bytes
        actual = sum(len(b) for b in cache._entries.values())
        assert stats["bytes"] == actual
        assert 0 <= stats["bytes"] <= cache.max_bytes
        # the per-partition index must exactly cover the entries
        indexed = set()
        for ids in cache._by_partition.values():
            indexed |= ids
        assert indexed == set(cache._entries.keys())

    def test_concurrent_clear_and_put(self):
        cache = ValidatedChunkCache(max_bytes=8 * 1024)
        stop = threading.Event()

        def putter():
            i = 0
            while not stop.is_set():
                cache.put(ChunkId(1, 0, i % 32), b"x" * 100)
                i += 1

        def clearer():
            for _ in range(200):
                cache.clear()
            stop.set()

        _run_all([putter, clearer])
        stats = cache.stats()
        actual = sum(len(b) for b in cache._entries.values())
        assert stats["bytes"] == actual


class TestObjectCacheHammer:
    def test_mixed_traffic_preserves_lru_bound(self):
        Ref = namedtuple("Ref", "partition rank")
        cache = ObjectCache(max_entries=64)
        errors = []

        def worker(seed):
            try:
                for i in range(ROUNDS):
                    ref = Ref(seed % 3, (seed * ROUNDS + i) % 128)
                    op = (seed + i) % 4
                    if op <= 1:
                        cache.put(ref, {"owner": seed, "round": i})
                    elif op == 2:
                        present, value = cache.get(ref)
                        if present and value is not None:
                            assert value["round"] < ROUNDS
                    else:
                        cache.evict_partition(seed % 3)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        _run_all([lambda s=s: worker(s) for s in range(THREADS)])
        assert not errors
        assert len(cache) <= 64
        assert cache.hits + cache.misses > 0


class TestUntrustedStoreThreading:
    def test_concurrent_reads_and_writes_stay_in_lane(self):
        """Interleaved read/write traffic must never tear: every read of a
        64-byte lane returns bytes written as one unit to that lane."""
        store = MemoryUntrustedStore(64 * 64)
        for lane in range(64):
            store.write(lane * 64, bytes([lane]) * 64)
        store.flush()
        errors = []

        def writer(seed):
            try:
                for i in range(ROUNDS):
                    lane = (seed * 7 + i) % 64
                    store.write(lane * 64, bytes([(seed + i) % 256]) * 64)
                    if i % 50 == 0:
                        store.flush()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader(seed):
            try:
                for i in range(ROUNDS):
                    lane = (seed * 11 + i) % 64
                    blob = store.read(lane * 64, 64)
                    assert len(set(blob)) == 1, "torn read across a lane"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [lambda s=s: writer(s) for s in range(4)]
        workers += [lambda s=s: reader(s) for s in range(4)]
        _run_all(workers)
        assert not errors
