"""DES / 3DES correctness: FIPS test vectors and structural properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.des import Des, TripleDes


class TestDesVectors:
    # The canonical worked example (used throughout FIPS 46 tutorials).
    def test_fips_vector(self):
        cipher = Des(bytes.fromhex("133457799BBCDFF1"))
        ct = cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert ct.hex().upper() == "85E813540F0AB405"

    def test_fips_vector_decrypt(self):
        cipher = Des(bytes.fromhex("133457799BBCDFF1"))
        pt = cipher.decrypt_block(bytes.fromhex("85E813540F0AB405"))
        assert pt.hex().upper() == "0123456789ABCDEF"

    def test_weak_key_identity_vector(self):
        # E(E(x)) == x under a weak key: classic DES property
        cipher = Des(bytes.fromhex("0101010101010101"))
        block = bytes.fromhex("95F8A5E5DD31D900")
        assert cipher.encrypt_block(cipher.encrypt_block(block)) == block

    def test_known_vector_2(self):
        # From the Ronald Rivest DES test: iterating encryption converges
        # to a known value; we check a single step against itself inverse.
        cipher = Des(bytes.fromhex("5B5A57676A56676E"))
        ct = cipher.encrypt_block(bytes.fromhex("675A69675E5A6B5A"))
        assert cipher.decrypt_block(ct) == bytes.fromhex("675A69675E5A6B5A")

    def test_complementation_property(self):
        """DES's complementation property: E_{~k}(~p) == ~E_k(p)."""
        key = bytes.fromhex("133457799BBCDFF1")
        plain = bytes.fromhex("0123456789ABCDEF")
        not_key = bytes(b ^ 0xFF for b in key)
        not_plain = bytes(b ^ 0xFF for b in plain)
        ct = Des(key).encrypt_block(plain)
        ct2 = Des(not_key).encrypt_block(not_plain)
        assert ct2 == bytes(b ^ 0xFF for b in ct)


class TestDesStructure:
    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            Des(b"short")

    def test_block_size(self):
        assert Des(b"8bytekey").block_size == 8

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
    @settings(max_examples=30)
    def test_roundtrip(self, key, block):
        cipher = Des(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=8, max_size=8))
    @settings(max_examples=20)
    def test_encryption_changes_block(self, block):
        cipher = Des(bytes(range(8)))
        # a permutation can in principle have fixed points, but for a
        # fixed key and random blocks this is vanishingly unlikely
        encrypted = cipher.encrypt_block(block)
        assert len(encrypted) == 8


class TestTripleDes:
    def test_roundtrip_24_byte_key(self):
        cipher = TripleDes(bytes(range(24)))
        block = b"ABCDEFGH"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_roundtrip_16_byte_key(self):
        cipher = TripleDes(bytes(range(16)))
        block = b"12345678"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_degenerates_to_des_with_8_byte_key(self):
        """EDE with K1=K2=K3 is single DES (the standard's keying option 3)."""
        key = bytes.fromhex("133457799BBCDFF1")
        single = Des(key)
        triple = TripleDes(key)
        block = bytes.fromhex("0123456789ABCDEF")
        assert triple.encrypt_block(block) == single.encrypt_block(block)

    def test_k1_k2_k1_equals_16_byte_form(self):
        k1, k2 = bytes(range(8)), bytes(range(8, 16))
        assert TripleDes(k1 + k2).encrypt_block(b"blockxyz") == TripleDes(
            k1 + k2 + k1
        ).encrypt_block(b"blockxyz")

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            TripleDes(bytes(10))

    def test_differs_from_single_des(self):
        key = bytes(range(24))
        block = b"ABCDEFGH"
        assert TripleDes(key).encrypt_block(block) != Des(key[:8]).encrypt_block(
            block
        )
