"""XDB pager: fixed-size pages, page cache, WAL, in-place updates.

This is the storage engine of the "off-the-shelf embedded database
system" baseline (§9.5).  It is deliberately *conventional*, i.e. the
opposite of TDB's log-structured design:

* data lives in fixed 4 KiB pages updated **in place**;
* a write-ahead log (physical redo logging: full after-images) protects
  against crashes;
* commits are **forced**: the WAL is flushed, then the dirty pages are
  written back and flushed — the "multiple disk writes at commit" the
  paper observes in XDB (§9.5.2).

Layout on the untrusted store::

    [page 0: header][pages 1..N-1: data][WAL region]

The header tracks the page allocation high-water mark, the free-page list
head (free pages are chained through their first bytes), and the table
catalog root.  The WAL region occupies the tail of the store.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, List, Set, Tuple

from repro import obs
from repro.bench.profiler import profiled
from repro.errors import IOFaultError, XDBError
from repro.platform.untrusted import UntrustedStore
from repro.util.checksum import crc32_bytes

PAGE_SIZE = 4096
_HEADER_MAGIC = b"XDB1"
_HEADER_STRUCT = struct.Struct(">4sIIIQ")  # magic, next_page, free_head, catalog_root, commit_seq
_WAL_RECORD = struct.Struct(">BII")  # kind, page_no, crc
_WAL_PAGE = 1
_WAL_COMMIT = 2


class Pager:
    """Page storage with a write-back cache and redo-WAL commits."""

    def __init__(
        self,
        store: UntrustedStore,
        wal_bytes: int = 1024 * 1024,
        cache_pages: int = 1024,
    ) -> None:
        self.store = store
        self.wal_offset = store.size - wal_bytes
        self.wal_size = wal_bytes
        self.page_count = self.wal_offset // PAGE_SIZE
        if self.page_count < 8:
            raise XDBError("store too small for XDB")
        self._cache: "OrderedDict[int, bytearray]" = OrderedDict()
        self._cache_limit = cache_pages
        self._dirty: Set[int] = set()
        self._wal_cursor = self.wal_offset
        # header state
        self.next_page = 1
        self.free_head = 0
        self.catalog_root = 0
        self.commit_seq = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def format(self) -> None:
        self._write_header()
        self.store.write(self.wal_offset, b"\x00" * 16)
        self.store.flush()

    def open(self) -> None:
        self._read_header()
        self._recover()

    def _write_header(self) -> None:
        head = _HEADER_STRUCT.pack(
            _HEADER_MAGIC,
            self.next_page,
            self.free_head,
            self.catalog_root,
            self.commit_seq,
        )
        self.store.write(0, head.ljust(64, b"\x00"))

    def _read_header(self) -> None:
        head = self.store.read(0, _HEADER_STRUCT.size)
        magic, next_page, free_head, catalog_root, commit_seq = _HEADER_STRUCT.unpack(
            head
        )
        if magic != _HEADER_MAGIC:
            raise XDBError("not an XDB store")
        self.next_page = next_page
        self.free_head = free_head
        self.catalog_root = catalog_root
        self.commit_seq = commit_seq

    # ------------------------------------------------------------------
    # page access
    # ------------------------------------------------------------------

    def read_page(self, page_no: int) -> bytearray:
        if not 1 <= page_no < self.page_count:
            raise XDBError(f"page {page_no} out of range")
        cached = self._cache.get(page_no)
        if cached is not None:
            self._cache.move_to_end(page_no)
            return cached
        with profiled("untrusted store read"), \
                obs.time_block("xdb.page_read"):
            data = bytearray(self.store.read(page_no * PAGE_SIZE, PAGE_SIZE))
        self._cache[page_no] = data
        self._evict_if_needed()
        return data

    def read_pages(self, page_nos: List[int]) -> List[bytearray]:
        """Read several pages; the uncached ones are fetched in a single
        ``read_many`` round trip instead of one read per page."""
        result: Dict[int, bytearray] = {}
        missing: List[int] = []
        for page_no in page_nos:
            if not 1 <= page_no < self.page_count:
                raise XDBError(f"page {page_no} out of range")
            if page_no in result or page_no in missing:
                continue
            cached = self._cache.get(page_no)
            if cached is not None:
                self._cache.move_to_end(page_no)
                result[page_no] = cached
            else:
                missing.append(page_no)
        if missing:
            with profiled("untrusted store read"):
                blobs = self.store.read_many(
                    [(page_no * PAGE_SIZE, PAGE_SIZE) for page_no in missing]
                )
            for page_no, blob in zip(missing, blobs):
                page = bytearray(blob)
                self._cache[page_no] = page
                result[page_no] = page
            self._evict_if_needed()
        return [result[page_no] for page_no in page_nos]

    def write_page(self, page_no: int, data: bytes) -> None:
        if len(data) > PAGE_SIZE:
            raise XDBError(f"page overflow: {len(data)} bytes")
        page = bytearray(data.ljust(PAGE_SIZE, b"\x00"))
        self._cache[page_no] = page
        self._cache.move_to_end(page_no)
        self._dirty.add(page_no)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._cache) > self._cache_limit:
            victim, page = next(iter(self._cache.items()))
            if victim in self._dirty:
                self._cache.move_to_end(victim)
                if all(p in self._dirty for p in self._cache):
                    break  # everything is dirty; let the cache grow
                continue
            del self._cache[victim]

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate_page(self) -> int:
        if self.free_head:
            page_no = self.free_head
            page = self.read_page(page_no)
            (self.free_head,) = struct.unpack_from(">I", bytes(page), 0)
            return page_no
        if self.next_page >= self.page_count:
            raise XDBError("XDB store is full")
        page_no = self.next_page
        self.next_page += 1
        self.write_page(page_no, b"")
        return page_no

    def free_page(self, page_no: int) -> None:
        self.write_page(page_no, struct.pack(">I", self.free_head))
        self.free_head = page_no

    # ------------------------------------------------------------------
    # commit: WAL flush + in-place force (the baseline's cost model)
    # ------------------------------------------------------------------

    def _header_image(self) -> bytes:
        head = _HEADER_STRUCT.pack(
            _HEADER_MAGIC,
            self.next_page,
            self.free_head,
            self.catalog_root,
            self.commit_seq,
        )
        return head.ljust(PAGE_SIZE, b"\x00")

    def commit(self) -> None:
        """Make the dirty page set durable: WAL append + flush, then force
        the pages in place + flush — the baseline's two disk writes per
        commit (§9.5.2)."""
        dirty = sorted(self._dirty)
        if not dirty:
            return
        with obs.span("xdb_commit", pages=len(dirty)), \
                obs.time_block("xdb.commit"):
            self._commit_dirty(dirty)

    def _commit_dirty(self, dirty: List[int]) -> None:
        self.commit_seq += 1
        # 1. append after-images + commit marker to the WAL; the header
        #    page (0) is journalled too, so allocation state recovers
        images = [(0, self._header_image())] + [
            (page_no, bytes(self._cache[page_no]).ljust(PAGE_SIZE, b"\x00"))
            for page_no in dirty
        ]
        cursor = self._wal_cursor
        for page_no, page in images:
            record = _WAL_RECORD.pack(_WAL_PAGE, page_no, crc32_bytes(page))
            if cursor + len(record) + PAGE_SIZE + 32 > self.wal_offset + self.wal_size:
                cursor = self._checkpoint_wal()
            with profiled("untrusted store write"):
                self.store.write(cursor, record)
                self.store.write(cursor + len(record), page)
            cursor += len(record) + PAGE_SIZE
        marker = _WAL_RECORD.pack(_WAL_COMMIT, self.commit_seq & 0xFFFFFFFF, 0)
        with profiled("untrusted store write"):
            self.store.write(cursor, marker)
        cursor += len(marker)
        self._wal_cursor = cursor
        with profiled("untrusted store write"):
            self.store.flush()  # flush #1: the WAL
        # 2. force the pages in place
        for page_no in dirty:
            with profiled("untrusted store write"):
                self.store.write(page_no * PAGE_SIZE, bytes(self._cache[page_no]))
        self._write_header()
        with profiled("untrusted store write"):
            self.store.flush()  # flush #2: the data pages
        self._dirty.clear()

    def _checkpoint_wal(self) -> int:
        """The WAL wrapped: pages are already forced at commit, so the WAL
        can simply restart."""
        with profiled("untrusted store write"):
            self.store.write(self.wal_offset, b"\x00" * 16)
        self._wal_cursor = self.wal_offset
        return self._wal_cursor

    # ------------------------------------------------------------------
    # recovery: redo complete WAL commits
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        with obs.span("xdb_recovery"), obs.time_block("xdb.recovery"):
            self._recover_wal()

    def _recover_wal(self) -> None:
        cursor = self.wal_offset
        pending: List[Tuple[int, bytes]] = []
        last_seq = self.commit_seq  # from the (forced) header
        # the whole WAL region in one round trip; a faulted span read
        # falls back to the per-record read path
        try:
            (span,) = self.store.read_many([(self.wal_offset, self.wal_size)])
        except IOFaultError:
            span = None

        def read_at(offset: int, size: int) -> bytes:
            if span is not None and offset - self.wal_offset + size <= len(span):
                return span[offset - self.wal_offset : offset - self.wal_offset + size]
            return self.store.read(offset, size)

        while cursor + _WAL_RECORD.size < self.wal_offset + self.wal_size:
            kind, page_no, crc = _WAL_RECORD.unpack(
                read_at(cursor, _WAL_RECORD.size)
            )
            cursor += _WAL_RECORD.size
            if kind == _WAL_PAGE:
                page = read_at(cursor, PAGE_SIZE)
                cursor += PAGE_SIZE
                if crc32_bytes(page) != crc:
                    break  # torn record: stop
                pending.append((page_no, page))
            elif kind == _WAL_COMMIT:
                # The marker's page_no field carries the commit sequence.
                # Sets not newer than the forced header are either already
                # applied (this pass) or stale residue from before a WAL
                # wraparound — skip them without applying; only a set the
                # header has not yet seen gets redone.
                if page_no > (self.commit_seq & 0xFFFFFFFF):
                    for redo_page, image in pending:
                        self.store.write(redo_page * PAGE_SIZE, image)
                pending.clear()
            else:
                break  # end of WAL
        self.store.flush()
        self._wal_cursor = self.wal_offset
        self.store.write(self.wal_offset, b"\x00" * 16)
        self.store.flush()
        self._cache.clear()
        self._dirty.clear()
        self._read_header()
