"""Operational logging: the library reports lifecycle events through
standard `logging` under the "repro.*" namespace."""

import logging

import pytest

from repro.backup import BackupStore
from repro.chunkstore import ChunkStore, ops
from tests.conftest import make_config, make_platform


class TestLogging:
    def test_checkpoint_logged(self, caplog):
        platform = make_platform()
        store = ChunkStore.format(platform, make_config())
        with caplog.at_level(logging.INFO, logger="repro.chunkstore"):
            store.checkpoint()
        assert any("checkpoint complete" in r.message for r in caplog.records)

    def test_recovery_logged(self, caplog):
        platform = make_platform()
        store = ChunkStore.format(platform, make_config())
        store.close()
        platform.reboot()
        with caplog.at_level(logging.INFO, logger="repro.chunkstore.recovery"):
            ChunkStore.open(platform)
        assert any("recovery complete" in r.message for r in caplog.records)

    def test_backup_and_restore_logged(self, caplog):
        platform = make_platform(size=8 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config())
        pid = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(pid, cipher_name="null", hash_name="sha1"),
                ops.WriteChunk(pid, 0, b"x"),
            ]
        )
        backup = BackupStore(store)
        with caplog.at_level(logging.INFO, logger="repro.backup"):
            backup.create_backup([pid], "b1")
        assert any("backup b1" in r.message for r in caplog.records)
        caplog.clear()
        with caplog.at_level(logging.WARNING, logger="repro.backup"):
            backup.restore(["b1"])
        assert any("restore applied" in r.message for r in caplog.records)

    def test_cleaner_logged_at_debug(self, caplog):
        platform = make_platform(size=1024 * 1024)
        store = ChunkStore.format(
            platform, make_config(segment_size=16 * 1024, delta_ut=5)
        )
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        ranks = [store.allocate_chunk(pid) for _ in range(8)]
        store.commit([ops.WriteChunk(pid, r, bytes(400)) for r in ranks])
        for round_no in range(20):
            for rank in ranks:
                store.commit([ops.WriteChunk(pid, rank, bytes([round_no]) * 400)])
        with caplog.at_level(logging.DEBUG, logger="repro.chunkstore.cleaner"):
            assert store.clean(max_segments=50) > 0
        assert any("cleaned segment" in r.message for r in caplog.records)

    def test_quiet_by_default(self, caplog):
        """No handler configuration -> the library does not print."""
        platform = make_platform()
        with caplog.at_level(logging.ERROR):
            store = ChunkStore.format(platform, make_config())
            store.checkpoint()
        errors = [r for r in caplog.records if r.levelno >= logging.ERROR]
        assert not errors
