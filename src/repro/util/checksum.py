"""Plain (non-cryptographic) checksums.

Backups carry an *unencrypted* checksum so that an external, untrusted
application can verify that a backup stream was written completely (§6.2).
That check provides no security — it only detects accidental truncation —
so CRC-32 is appropriate.
"""

from __future__ import annotations

import zlib


def crc32_bytes(data: bytes, value: int = 0) -> int:
    """CRC-32 of ``data``, continuing from ``value`` (for streaming)."""
    return zlib.crc32(data, value) & 0xFFFFFFFF
