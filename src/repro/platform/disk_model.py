"""Disk latency model.

The paper measures on real hardware: an NTFS file on a 7200 rpm disk for
the untrusted store (flush latency 10–40 ms, bandwidth 3.5–4.7 MB/s) and a
second, slower disk emulating the tamper-resistant store (§9.1, §9.2.1).
It then reports I/O cost symbolically as ``l_u + l_t/Δut + bytes/b_u`` per
commit (§9.2.2).

We reproduce that *model* directly: the untrusted store counts flushes and
bytes (see :class:`~repro.platform.untrusted.IOStats`), the tamper-resistant
store counts writes, and this class converts the tallies into modeled time.
The defaults below are the paper's own constants, so modeled numbers are
directly comparable with Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.untrusted import IOStats


@dataclass
class DiskModel:
    """Latency/bandwidth constants for the simulated devices."""

    #: untrusted-store flush latency, seconds (paper: 10–40 ms; midpoint)
    untrusted_flush_latency: float = 0.025
    #: untrusted-store bandwidth, bytes/second (paper: 3.5–4.7 MB/s)
    untrusted_bandwidth: float = 4.0e6
    #: per-read seek+rotation latency, seconds (paper: 9 ms + 4 ms)
    untrusted_read_latency: float = 0.013
    #: tamper-resistant store write latency, seconds (paper: EEPROM ≈ 5 ms,
    #: emulated disk 12 ms + 6 ms; we use the EEPROM figure)
    tamper_resistant_latency: float = 0.005

    def write_time(self, stats: IOStats) -> float:
        """Modeled time spent writing/flushing the untrusted store."""
        return (
            stats.flushes * self.untrusted_flush_latency
            + stats.bytes_written / self.untrusted_bandwidth
        )

    def read_time(self, stats: IOStats) -> float:
        """Modeled time spent reading the untrusted store."""
        return (
            stats.reads * self.untrusted_read_latency
            + stats.bytes_read / self.untrusted_bandwidth
        )

    def tamper_resistant_time(self, tr_writes: int) -> float:
        """Modeled time spent updating the tamper-resistant store."""
        return tr_writes * self.tamper_resistant_latency

    def commit_io_time(self, flushes: int, bytes_written: int, tr_writes: int) -> float:
        """The paper's ``l_u + l_t/Δut + bytes/b_u`` commit I/O formula."""
        return (
            flushes * self.untrusted_flush_latency
            + bytes_written / self.untrusted_bandwidth
            + tr_writes * self.tamper_resistant_latency
        )
