"""The chunk store (§4, §5): trusted storage for named chunks.

This is TDB's core contribution: a log-structured store whose location map
*is* a Merkle tree.  Every piece of persistent state — application data,
indexing metadata of higher modules, the chunk map itself, partition
leaders — is a chunk, encrypted before it reaches the untrusted store and
validated against a hash held (directly or transitively) in the
tamper-resistant store when it is read back.

Public surface
==============

``ChunkStore.format(platform, config)``
    provision a fresh store (writes the initial checkpoint).
``ChunkStore.open(platform, config)``
    reopen after a shutdown or crash; runs recovery (roll-forward of the
    residual log + validation against the tamper-resistant store).
``allocate_partition`` / ``allocate_chunk``
    hand out ids (volatile until committed, §4.4).
``commit(ops)``
    atomically apply chunk writes/deallocations and partition
    creates/copies/deallocations (§4.6, §5.1).
``read_chunk(pid, rank)``
    locate and validate a chunk (§4.5).
``diff(old_pid, new_pid)``
    compare two partitions' contents via their position maps (§5.3).
``checkpoint()``
    propagate buffered descriptors up the map and write a new leader
    (§4.7).
``clean(...)``
    reclaim obsolete chunk versions (§4.9.5) — see
    :mod:`repro.chunkstore.cleaner`.

Concurrency: operations are serialized with a single re-entrant lock —
"mutual exclusion, which does not overlap I/O and computation, but is
simple and acceptable when concurrency is low" (§4.2).
"""

from __future__ import annotations

import logging
import threading
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.bench.profiler import profiled
from repro.chunkstore.cache import DescriptorCache, ValidatedChunkCache
from repro.chunkstore.config import StoreConfig, mac_key, system_cipher_key
from repro.chunkstore.descriptor import (
    ChunkDescriptor,
    ChunkStatus,
    decode_descriptor_vector,
    encode_descriptor_vector,
)
from repro.chunkstore.ids import (
    SYSTEM_PARTITION,
    ChunkId,
    data_id,
    leader_id,
    partition_rank,
    rank_to_partition,
    required_height,
)
from repro.chunkstore.leader import LeaderPayload, SystemExtras
from repro.chunkstore.log import (
    DeallocateRecord,
    LogCodec,
    NextSegmentRecord,
    VersionHeader,
    VersionKind,
)
from repro.chunkstore.ops import (
    CopyPartition,
    DeallocateChunk,
    DeallocatePartition,
    WriteChunk,
    WritePartition,
)
from repro.chunkstore.partition import PartitionState, generate_partition_key
from repro.chunkstore.segments import LogWriteBuffer, SegmentManager
from repro.chunkstore.validation import CounterValidation, DirectValidation
from repro.crypto.mac import Mac
from repro.crypto.registry import KEY_SIZES, make_cipher, make_hash
from repro.errors import (
    ChunkNotAllocatedError,
    ChunkNotWrittenError,
    ChunkStoreError,
    IOFaultError,
    PartitionNotFoundError,
    QuarantineError,
    StorageFullError,
    TamperDetectedError,
    TDBError,
)
from repro.platform.retry import Retrier
from repro.platform.trusted_platform import TrustedPlatform
from repro.util.checksum import crc32_bytes
from repro.util.codec import Decoder, Encoder

_SUPERBLOCK_MAGIC = b"TDB1"

logger = logging.getLogger("repro.chunkstore")


class DiffChange:
    """Kinds of per-position change reported by :meth:`ChunkStore.diff`."""

    ADDED = "added"
    CHANGED = "changed"
    REMOVED = "removed"


class ChunkStore:
    """Trusted chunk storage over an untrusted log (see module docstring)."""

    def __init__(self, platform: TrustedPlatform, config: StoreConfig) -> None:
        """Internal; use :meth:`format` or :meth:`open`."""
        self.platform = platform
        self.config = config
        secret = platform.secret_store.read()
        system_cipher = make_cipher(
            config.system_cipher, system_cipher_key(secret, config.system_cipher)
        )
        system_hash = make_hash(config.system_hash)
        if system_hash.digest_size == 0:
            raise ValueError("the system hash function must not be null")
        self.codec = LogCodec(system_cipher, system_hash)
        self.mac = Mac(mac_key(secret), system_hash)
        self.segman = SegmentManager(
            config.superblock_size, config.segment_size, platform.untrusted.size
        )
        self.cache = DescriptorCache(config.cache_size)
        #: validated-payload cache: decrypted, hash-verified chunk bodies
        #: (hits skip the device, the cipher, and the hasher entirely)
        self.payloads = ValidatedChunkCache(config.payload_cache_bytes)
        #: read-path batching counters (surfaced in stats()["walk"])
        self.walk_batches = 0
        self.walk_map_chunks_fetched = 0
        self.walk_round_trips_saved = 0
        self.chunk_batches = 0
        self.chunk_batch_fetched = 0
        self.prefetch_issued = 0
        #: sequential-read detector per partition: pid -> (last rank, run)
        self._read_cursor: Dict[int, Tuple[int, int]] = {}
        self.retrier = Retrier(
            config.retry_policy,
            clock=platform.clock,
            stats=platform.untrusted.stats,
        )
        self.logbuf = LogWriteBuffer(platform.untrusted, self.retrier)
        self.partitions: Dict[int, PartitionState] = {}
        if config.validation_mode == "direct":
            self.validator = DirectValidation(platform.tamper_resistant, system_hash)
        else:
            self.validator = CounterValidation(
                platform.counter,
                system_hash,
                self.mac,
                config.delta_ut,
                config.delta_tu,
                mac_optional=system_cipher.authenticates,
            )
        self._lock = threading.RLock()
        self._leader_location = 0
        self._system_key = system_cipher_key(secret, config.system_cipher)
        self._next_segment_size = self.codec.version_size(
            NextSegmentRecord.BODY_SIZE, system_cipher
        )
        self._in_maintenance = False
        self._closed = False
        self._failed = False
        self.commit_count_stat = 0
        #: degraded-mode state: str(chunk id) -> cause ("io" or "tamper").
        #: "io" entries short-circuit reads with :class:`QuarantineError`
        #: until scrub heals them; "tamper" entries are bookkeeping only —
        #: reads keep re-validating and raising TamperDetectedError.
        self._quarantine: Dict[str, str] = {}
        #: chunks ever quarantined over this instance's lifetime
        self.quarantined_total = 0
        #: open snapshot views; while > 0 the cleaner declines to run so
        #: the extents frozen roots point at are never relocated or reused
        self._snapshot_pins = 0
        self.snapshot_views_opened = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def format(
        cls, platform: TrustedPlatform, config: Optional[StoreConfig] = None
    ) -> "ChunkStore":
        """Provision a fresh, empty store and write its first checkpoint."""
        config = config or StoreConfig()
        store = cls(platform, config)
        system_payload = LeaderPayload(
            cipher_name=config.system_cipher,
            hash_name=config.system_hash,
            key=b"",  # the system key is derived from the secret store
            system=SystemExtras(),
        )
        store.partitions[SYSTEM_PARTITION] = PartitionState.open(
            SYSTEM_PARTITION, system_payload, key_override=store._system_key
        )
        with store._lock:
            store._write_checkpoint(initial=True)
        return store

    @classmethod
    def open(
        cls, platform: TrustedPlatform, config: Optional[StoreConfig] = None
    ) -> "ChunkStore":
        """Reopen an existing store; validates and rolls the residual log
        forward (§4.8).  Raises :class:`TamperDetectedError` if the
        untrusted store fails validation."""
        from repro.chunkstore.recovery import recover

        stored = cls._read_superblock(platform)
        if config is None:
            config = stored
        else:
            # Geometry and mode come from the superblock; mismatches are
            # either operator error or tampering with the (unauthenticated)
            # superblock — both surface as validation failures later, but
            # catching geometry divergence here gives a clearer error.
            for attr in (
                "segment_size",
                "fanout",
                "validation_mode",
                "system_cipher",
                "system_hash",
                "superblock_size",
            ):
                if getattr(config, attr) != getattr(stored, attr):
                    raise ChunkStoreError(
                        f"config {attr}={getattr(config, attr)!r} does not match "
                        f"stored {getattr(stored, attr)!r}"
                    )
        store = cls(platform, config)
        with store._lock:
            recover(store)
        return store

    def close(self, checkpoint: bool = True) -> None:
        """Shut down cleanly (checkpointing buffered map updates)."""
        with self._lock:
            if self._closed:
                return
            if checkpoint and not self._failed:
                self._write_checkpoint()
            self._closed = True

    # ------------------------------------------------------------------
    # superblock
    # ------------------------------------------------------------------

    def _superblock_bytes(self) -> bytes:
        enc = Encoder()
        enc.raw(_SUPERBLOCK_MAGIC)
        enc.uint(1)  # format version
        enc.uint(self.config.segment_size)
        enc.uint(self.config.fanout)
        enc.text(self.config.validation_mode)
        enc.text(self.config.system_cipher)
        enc.text(self.config.system_hash)
        enc.uint(self.config.superblock_size)
        enc.uint(self.config.delta_ut)
        enc.uint(self.config.delta_tu)
        enc.uint(self._leader_location)
        payload = enc.finish()
        return payload + crc32_bytes(payload).to_bytes(4, "big")

    def _write_superblock(self) -> None:
        data = self._superblock_bytes()
        if len(data) > self.config.superblock_size:
            raise ChunkStoreError("superblock overflow")
        padded = data.ljust(self.config.superblock_size, b"\x00")
        self.retrier.call(
            lambda: self.platform.untrusted.write(0, padded), "superblock write"
        )
        self.retrier.call(self.platform.untrusted.flush, "superblock flush")

    @staticmethod
    def _read_superblock(platform: TrustedPlatform) -> StoreConfig:
        head = platform.untrusted.tamper_read(0, 4096)
        if head[:4] != _SUPERBLOCK_MAGIC:
            raise ChunkStoreError("no TDB store found (bad superblock magic)")
        try:
            dec = Decoder(head, 4)
            version = dec.uint()
            if version != 1:
                raise ChunkStoreError(f"unsupported store format version {version}")
            segment_size = dec.uint()
            fanout = dec.uint()
            mode = dec.text()
            system_cipher = dec.text()
            system_hash = dec.text()
            superblock_size = dec.uint()
            delta_ut = dec.uint()
            delta_tu = dec.uint()
            leader_location = dec.uint()
            payload_end = dec.position
            expected_crc = int.from_bytes(head[payload_end : payload_end + 4], "big")
            if crc32_bytes(head[:payload_end]) != expected_crc:
                raise TamperDetectedError("superblock checksum mismatch")
            config = StoreConfig(
                segment_size=segment_size,
                fanout=fanout,
                validation_mode=mode,
                system_cipher=system_cipher,
                system_hash=system_hash,
                delta_ut=delta_ut,
                delta_tu=delta_tu,
                superblock_size=superblock_size,
            )
        except (ValueError, UnicodeDecodeError) as exc:
            raise TamperDetectedError(f"corrupt superblock: {exc}") from exc
        config.stored_leader_location = leader_location  # type: ignore[attr-defined]
        return config

    # ------------------------------------------------------------------
    # partition state
    # ------------------------------------------------------------------

    def _state(self, pid: int) -> PartitionState:
        state = self.partitions.get(pid)
        if state is not None:
            return state
        if pid == SYSTEM_PARTITION:
            raise ChunkStoreError("system partition state missing (store not open)")
        system = self.partitions[SYSTEM_PARTITION]
        rank = partition_rank(pid)
        if not system.is_committed_written(rank):
            raise PartitionNotFoundError(f"partition {pid} is not written")
        body = self._read_chunk_body(data_id(SYSTEM_PARTITION, rank))
        payload = LeaderPayload.decode(body)
        state = PartitionState.open(pid, payload)
        self.partitions[pid] = state
        return state

    def partition_exists(self, pid: int) -> bool:
        if pid == SYSTEM_PARTITION:
            return True
        system = self.partitions[SYSTEM_PARTITION]
        return system.is_committed_written(partition_rank(pid))

    def partition_ids(self) -> List[int]:
        """Ids of all written partitions (excluding the system partition)."""
        system = self.partitions[SYSTEM_PARTITION]
        return [
            rank_to_partition(rank)
            for rank in range(system.payload.next_rank)
            if system.is_committed_written(rank)
        ]

    def partition_info(self, pid: int) -> Dict[str, object]:
        state = self._state(pid)
        return {
            "cipher": state.payload.cipher_name,
            "hash": state.payload.hash_name,
            "chunk_count": state.payload.next_rank - len(state.payload.free_ranks),
            "copies": list(state.payload.copies),
            "copy_of": state.payload.copy_of,
        }

    # ------------------------------------------------------------------
    # allocation (§4.4)
    # ------------------------------------------------------------------

    def allocate_partition(self) -> int:
        """Return an unallocated partition id (volatile until written)."""
        with self._lock:
            system = self.partitions[SYSTEM_PARTITION]
            return rank_to_partition(system.allocate_rank())

    def allocate_chunk(self, pid: int) -> int:
        """Return an unallocated chunk rank in ``pid`` (volatile until
        written)."""
        with self._lock:
            return self._state(pid).allocate_rank()

    def reserve_partition_id(self, pid: int) -> None:
        """Make a *specific* partition id allocatable (volatile until its
        leader is committed).  Used by the backup store, which must restore
        a partition under its original id even into a fresh database."""
        with self._lock:
            self.partitions[SYSTEM_PARTITION].allocate_specific(partition_rank(pid))

    def find_partition(self, name: str) -> Optional[int]:
        """Look up a partition by the well-known name in its leader.

        Scans all partition leaders; intended for a handful of well-known
        partitions (e.g. the backup registry, the object-store root)."""
        with self._lock:
            for pid in self.partition_ids():
                try:
                    if self._state(pid).payload.name == name:
                        return pid
                except TamperDetectedError:
                    raise
            return None

    # ------------------------------------------------------------------
    # descriptor lookup — the bottom-up read path (§4.5)
    # ------------------------------------------------------------------

    def _get_descriptor(self, cid: ChunkId) -> ChunkDescriptor:
        cached = self.cache.get(cid)
        if cached is not None:
            return cached  # dirty descriptors shadow the persistent map
        state = self._state(cid.partition)
        height = state.payload.tree_height
        if cid.height > height or height == 0:
            return ChunkDescriptor()  # beyond the tree: unallocated
        if cid.height == height:
            if cid.rank == 0:
                return state.payload.root
            return ChunkDescriptor()
        fanout = self.config.fanout
        # Ascend to the first ancestor whose descriptor is already known
        # (cached, or the root level), collecting the uncached map path.
        chain: List[ChunkId] = []  # uncached ancestors of cid, bottom-up
        node = cid.parent(fanout)
        descriptor: Optional[ChunkDescriptor] = None
        while True:
            known = self.cache.get(node)
            if known is not None:
                descriptor = known
                break
            if node.height == height:
                descriptor = (
                    state.payload.root if node.rank == 0 else ChunkDescriptor()
                )
                break
            chain.append(node)
            node = node.parent(fanout)
        # Descend, fetching each map chunk's header+body in one batched
        # round trip instead of the old two reads per level.
        for next_id in list(reversed(chain)) + [cid]:
            if not descriptor.is_written():
                return ChunkDescriptor()
            vector = self._load_map_chunks(state, [(node, descriptor)])[0]
            node, descriptor = next_id, vector[next_id.rank % fanout]
        return descriptor

    def _decode_map_body(self, map_id: ChunkId, body: bytes) -> List[ChunkDescriptor]:
        descriptors = decode_descriptor_vector(body)
        if len(descriptors) != self.config.fanout:
            raise TamperDetectedError(
                f"map chunk {map_id} has {len(descriptors)} slots, "
                f"expected {self.config.fanout}"
            )
        return descriptors

    def _load_map_chunks(
        self,
        state: PartitionState,
        items: Sequence[Tuple[ChunkId, ChunkDescriptor]],
    ) -> List[List[ChunkDescriptor]]:
        """Fetch, validate, and decode written map chunks of one partition
        in a single untrusted round trip; returns their descriptor vectors
        (aligned with ``items``) and caches every child descriptor.

        On an I/O fault the whole batch falls back to per-chunk validated
        reads so retries and quarantine land on the precise extent."""
        with obs.span("map_walk", pid=state.pid, chunks=len(items)), \
                obs.time_block("chunkstore.map_walk"):
            for map_id, _descriptor in items:
                key = str(map_id)
                if self._quarantine.get(key) == "io":
                    raise QuarantineError(key, "io")
            self.logbuf.seal()  # an extent may sit in the pending span
            extents: List[Tuple[int, int]] = []
            for map_id, descriptor in items:
                try:
                    self._check_extent(map_id, descriptor)
                except TamperDetectedError:
                    self._quarantine_chunk(map_id, "tamper")
                    raise
                extents.append((descriptor.location, descriptor.length))
            try:
                blobs: Optional[List[bytes]] = self._io_read_many(extents)
                self.walk_batches += 1
                self.walk_map_chunks_fetched += len(items)
                # versus the unbatched path: two reads (header, body) per map
                # chunk, minus the one round trip this batch cost
                self.walk_round_trips_saved += 2 * len(items) - 1
            except IOFaultError:
                blobs = None  # fall back so the fault pins the right chunk
            vectors: List[List[ChunkDescriptor]] = []
            if blobs is not None:
                for (map_id, descriptor), raw in zip(items, blobs):
                    body = self._validate_raw_version(map_id, descriptor, state, raw)
                    vectors.append(self._decode_map_body(map_id, body))
            else:
                for map_id, descriptor in items:
                    body = self._read_validated(map_id, descriptor, state)
                    vectors.append(self._decode_map_body(map_id, body))
            fanout = self.config.fanout
            for (map_id, _descriptor), vector in zip(items, vectors):
                for slot, child in enumerate(vector):
                    self.cache.put_clean(map_id.child(fanout, slot), child)
            return vectors

    # ------------------------------------------------------------------
    # reading and validating versions
    # ------------------------------------------------------------------

    def _io_read(self, location: int, size: int) -> bytes:
        """One untrusted-store read, retried per the configured policy.

        All trusted read paths (version reads, recovery, the cleaner) go
        through here so transient device faults are absorbed uniformly;
        only exhausted retries or permanent faults escape."""

        def issue() -> bytes:
            with profiled("untrusted store read"):
                return self.platform.untrusted.read(location, size)

        return self.retrier.call(issue, "read")

    def _io_read_many(self, extents: List[Tuple[int, int]]) -> List[bytes]:
        """One batched untrusted-store round trip, retried like
        :meth:`_io_read` (the whole batch is re-issued on a transient
        fault)."""

        def issue() -> List[bytes]:
            with profiled("untrusted store read"):
                return self.platform.untrusted.read_many(extents)

        return self.retrier.call(issue, "read_many")

    def _check_extent(self, cid: ChunkId, descriptor: ChunkDescriptor) -> None:
        """Bounds-check a descriptor's extent before issuing the read.

        Descriptors arrive hash-validated, so an implausible extent means
        the validation chain itself was subverted — tampering, not I/O."""
        location, length = descriptor.location, descriptor.length
        if (
            length < self.codec.header_cipher_size
            or location < self.config.superblock_size
            or location + length > self.platform.untrusted.size
        ):
            raise TamperDetectedError(
                f"chunk {cid}: descriptor extent [{location}, "
                f"{location + length}) is implausible"
            )

    def _read_version_at(self, location: int) -> Tuple[VersionHeader, bytes]:
        """Read and parse one version; returns (header, body ciphertext).

        A tampered header can decrypt to arbitrary garbage, including
        absurd body sizes — those are tampering, not I/O errors."""
        self.logbuf.seal()  # the location may sit in the pending span
        untrusted = self.platform.untrusted
        header_ct = self._io_read(location, self.codec.header_cipher_size)
        header = self.codec.parse_header(header_ct)
        body_end = location + self.codec.header_cipher_size + header.body_cipher_size
        segment_end = (
            self.segman.segment_start(self.segman.segment_of(location))
            + self.config.segment_size
        )
        if header.body_cipher_size > self.config.segment_size or body_end > min(
            untrusted.size, segment_end
        ):
            raise TamperDetectedError(
                f"version at {location} declares an implausible body size "
                f"{header.body_cipher_size}"
            )
        body_ct = self._io_read(
            location + self.codec.header_cipher_size, header.body_cipher_size
        )
        return header, body_ct

    def _quarantine_chunk(self, cid: ChunkId, cause: str) -> None:
        key = str(cid)
        if key not in self._quarantine:
            self.quarantined_total += 1
            logger.warning("quarantining chunk %s (%s)", key, cause)
            obs.add("chunkstore.quarantines")
            obs.emit("quarantine", chunk=key, cause=cause)
        if cause == "io" or key not in self._quarantine:
            self._quarantine[key] = cause
        self.payloads.invalidate(cid)

    def _validate_raw_version(
        self,
        cid: ChunkId,
        descriptor: ChunkDescriptor,
        state: PartitionState,
        raw: bytes,
    ) -> bytes:
        """Parse, decrypt, and hash-validate one version read as a single
        extent (``raw`` spans header and body ciphertext).  Validation
        failures raise :class:`TamperDetectedError` on every read — the
        security verdict never changes — but are recorded so scrub can
        target repair."""
        key = str(cid)
        raw = memoryview(raw)  # header/body slices below stay zero-copy
        try:
            header = self.codec.parse_header(
                raw[: self.codec.header_cipher_size]
            )
            if (
                self.codec.header_cipher_size + header.body_cipher_size
                != len(raw)
            ):
                raise TamperDetectedError(
                    f"chunk {cid}: header declares an implausible body size "
                    f"{header.body_cipher_size}"
                )
            if header.kind != VersionKind.NAMED:
                raise TamperDetectedError(f"chunk {cid}: version kind mismatch")
            if (header.height, header.rank) != (cid.height, cid.rank):
                raise TamperDetectedError(
                    f"chunk {cid}: stored position {header.height}.{header.rank} "
                    f"does not match"
                )
            with profiled("encryption"):
                body, computed = self.codec.validate_named(
                    header,
                    raw[self.codec.header_cipher_size :],
                    state.cipher,
                    state.hash,
                )
            if computed != descriptor.body_hash:
                raise TamperDetectedError(f"chunk {cid}: hash mismatch")
        except TamperDetectedError:
            self._quarantine_chunk(cid, "tamper")
            raise
        if self._quarantine.pop(key, None) is not None:
            # a clean read heals the entry
            obs.emit("quarantine_healed", chunk=key)
        return body

    def _read_validated(
        self, cid: ChunkId, descriptor: ChunkDescriptor, state: PartitionState
    ) -> bytes:
        """Read the version ``descriptor`` points at, decrypt it with the
        partition cipher, and validate it against the descriptor hash.

        The descriptor's length covers header and body, so the whole
        version arrives in one device read (the old path cost two).

        Degraded mode: an extent unreadable after retries quarantines the
        chunk (``QuarantineError``) instead of poisoning the store, and
        later reads short-circuit until scrub clears the entry for a
        fresh attempt."""
        key = str(cid)
        if self._quarantine.get(key) == "io":
            raise QuarantineError(key, "io")
        self.logbuf.seal()  # the extent may sit in the pending span
        try:
            self._check_extent(cid, descriptor)
        except TamperDetectedError:
            self._quarantine_chunk(cid, "tamper")
            raise
        try:
            raw = self._io_read(descriptor.location, descriptor.length)
        except IOFaultError as exc:
            self._quarantine_chunk(cid, "io")
            raise QuarantineError(key, "io") from exc
        return self._validate_raw_version(cid, descriptor, state, raw)

    def _read_chunk_body(
        self, cid: ChunkId, use_payload_cache: bool = True
    ) -> bytes:
        use_cache = (
            use_payload_cache and cid.height == 0 and self.payloads.enabled
        )
        if use_cache:
            cached = self.payloads.get(cid)
            if cached is not None:
                return cached
        descriptor = self._get_descriptor(cid)
        if descriptor.status == ChunkStatus.WRITTEN:
            # cache misses only: warm hits return above untimed, so the
            # read histogram prices the real device+crypto+hash path
            with obs.time_block("chunkstore.read"):
                body = self._read_validated(
                    cid, descriptor, self._state(cid.partition)
                )
            if use_cache:
                # populated ONLY after a successful validated read — never
                # write-through — so a cached payload was always vouched
                # for by the hash-link path
                self.payloads.put(cid, body)
            return body
        state = self._state(cid.partition)
        if cid.height == 0 and (
            cid.rank in state.pending_ranks or not state.is_committed_written(cid.rank)
        ):
            if cid.rank in state.pending_ranks:
                raise ChunkNotWrittenError(f"chunk {cid} is allocated but unwritten")
            raise ChunkNotAllocatedError(f"chunk {cid} is not allocated")
        raise TamperDetectedError(
            f"chunk {cid} should be written but its descriptor says "
            f"{descriptor.status.name}"
        )

    # ------------------------------------------------------------------
    # snapshot views (MVCC read path for the serving layer)
    # ------------------------------------------------------------------

    def open_snapshot_view(self, pid: int) -> "SnapshotView":
        """Freeze partition ``pid``'s committed state into a lock-free
        :class:`~repro.chunkstore.snapshot.SnapshotView`.

        Reads through the view proceed without the store lock — they never
        block behind (or be blocked by) commits, checkpoints, or flushes.
        While any view is open the cleaner defers (``_snapshot_pins``), so
        close views promptly.  See :mod:`repro.chunkstore.snapshot` for the
        full soundness argument and consistency contract."""
        from repro.chunkstore.snapshot import build_snapshot_view

        with self._lock:
            self._check_open()
            self.logbuf.seal()  # the frozen root must be device-visible
            view = build_snapshot_view(self, pid)
            self._snapshot_pins += 1
            self.snapshot_views_opened += 1
            obs.add("chunkstore.snapshot_views_opened")
            obs.emit("snapshot_view_opened", pid=pid, pins=self._snapshot_pins)
            return view

    def close_snapshot_view(self, view: "SnapshotView") -> None:
        """Release a snapshot view (idempotent); unpins the cleaner once
        the last view closes."""
        with self._lock:
            if view.closed:
                return
            view.closed = True
            self._snapshot_pins -= 1
            obs.emit(
                "snapshot_view_closed", pid=view.pid, pins=self._snapshot_pins
            )

    @property
    def snapshot_pins(self) -> int:
        with self._lock:
            return self._snapshot_pins

    def read_chunk(self, pid: int, rank: int) -> bytes:
        """Return the last written state of chunk ``(pid, rank)`` (§4.5)."""
        with self._lock, profiled("chunk store"):
            body = self._read_chunk_body(data_id(pid, rank))
            self._note_sequential_read(pid, rank)
            return body

    def read_chunks(self, pid: int, ranks: Sequence[int]) -> Dict[int, bytes]:
        """Batched :meth:`read_chunk`: returns ``{rank: bytes}`` for every
        requested rank, coalescing descriptor resolution (one ``read_many``
        per uncached map level) and the data-extent fetches (one more) so
        an N-chunk read costs a constant number of round trips instead of
        2(h+1) per chunk.  Error semantics match a sequential loop: the
        first rank that cannot be served raises its typed error."""
        with self._lock, profiled("chunk store"), obs.span(
            "read_chunks", pid=pid, ranks=len(ranks)
        ):
            state = self._state(pid)
            result: Dict[int, bytes] = {}
            todo: List[int] = []
            for rank in ranks:
                if rank in result or rank in todo:
                    continue
                cached = self.payloads.get(data_id(pid, rank))
                if cached is not None:
                    result[rank] = cached
                else:
                    todo.append(rank)
            if todo:
                result.update(self._fetch_chunks(state, todo))
            return {rank: result[rank] for rank in ranks}

    def _fetch_chunks(
        self,
        state: PartitionState,
        ranks: Sequence[int],
        prefetched: bool = False,
    ) -> Dict[int, bytes]:
        """Batched fetch of uncached data chunks.  Any fault or validation
        trouble in the batched machinery falls back to the sequential path,
        which reports errors (and quarantines extents) precisely; prefetch
        callers re-raise instead and swallow at the call site."""
        try:
            with obs.time_block("chunkstore.read_batch"):
                return self._fetch_chunks_batch(state, ranks, prefetched)
        except TDBError:
            if prefetched:
                raise
            result: Dict[int, bytes] = {}
            for rank in ranks:
                result[rank] = self._read_chunk_body(data_id(state.pid, rank))
            return result

    def _fetch_chunks_batch(
        self, state: PartitionState, ranks: Sequence[int], prefetched: bool
    ) -> Dict[int, bytes]:
        pid = state.pid
        self._resolve_descriptors_batched(state, ranks)
        pairs: List[Tuple[ChunkId, ChunkDescriptor]] = []
        plain: List[int] = []  # ranks the batch cannot serve
        for rank in ranks:
            cid = data_id(pid, rank)
            descriptor = self._get_descriptor(cid)
            if (
                descriptor.status == ChunkStatus.WRITTEN
                and self._quarantine.get(str(cid)) != "io"
            ):
                pairs.append((cid, descriptor))
            else:
                plain.append(rank)
        result: Dict[int, bytes] = {}
        if pairs:
            self.logbuf.seal()
            for cid, descriptor in pairs:
                try:
                    self._check_extent(cid, descriptor)
                except TamperDetectedError:
                    self._quarantine_chunk(cid, "tamper")
                    raise
            blobs = self._io_read_many(
                [(d.location, d.length) for _, d in pairs]
            )
            self.chunk_batches += 1
            self.chunk_batch_fetched += len(pairs)
            for (cid, descriptor), raw in zip(pairs, blobs):
                body = self._validate_raw_version(cid, descriptor, state, raw)
                result[cid.rank] = body
                self.payloads.put(cid, body, prefetched=prefetched)
        for rank in plain:
            if prefetched:
                continue  # best-effort: skip chunks needing the typed path
            result[rank] = self._read_chunk_body(data_id(pid, rank))
        return result

    def _resolve_descriptors_batched(
        self, state: PartitionState, ranks: Sequence[int]
    ) -> None:
        """Warm the descriptor cache for data ``ranks``, fetching every
        uncached map chunk of a level in one ``read_many`` batch (the
        levels themselves are inherently sequential: a map chunk's extent
        is only known once its parent's body is decoded)."""
        pid = state.pid
        fanout = self.config.fanout
        height = state.payload.tree_height
        if height == 0:
            return
        need_data = [
            rank for rank in ranks if self.cache.get(data_id(pid, rank)) is None
        ]
        if not need_data:
            return
        # reads_at[l]: level-l map-chunk ranks whose bodies are needed
        reads_at: Dict[int, Set[int]] = {1: {r // fanout for r in need_data}}
        for level in range(1, height):
            parents = {
                node_rank // fanout
                for node_rank in reads_at.get(level, ())
                if self.cache.get(ChunkId(pid, level, node_rank)) is None
            }
            if parents:
                reads_at.setdefault(level + 1, set()).update(parents)
        for level in range(height, 0, -1):
            items: List[Tuple[ChunkId, ChunkDescriptor]] = []
            for node_rank in sorted(reads_at.get(level, ())):
                cid = ChunkId(pid, level, node_rank)
                descriptor = self.cache.get(cid)
                if descriptor is None:
                    descriptor = (
                        state.payload.root
                        if level == height and node_rank == 0
                        else ChunkDescriptor()
                    )
                if descriptor.is_written():
                    items.append((cid, descriptor))
            if items:
                self._load_map_chunks(state, items)

    def _note_sequential_read(self, pid: int, rank: int) -> None:
        """Detect sequential rank runs and prefetch the next window of
        committed chunks into the payload cache (best-effort: a prefetch
        never raises; real reads report errors precisely)."""
        window = self.config.prefetch_window
        if window <= 0 or not self.payloads.enabled:
            return
        last, run = self._read_cursor.get(pid, (-2, 0))
        run = run + 1 if rank == last + 1 else 1
        self._read_cursor[pid] = (rank, run)
        if run < 2:
            return
        state = self._state(pid)
        targets = [
            r
            for r in range(rank + 1, rank + 1 + window)
            if state.is_committed_written(r)
            and r not in state.pending_ranks
            and not self.payloads.contains(data_id(pid, r))
        ]
        if not targets:
            return
        self.prefetch_issued += len(targets)
        try:
            self._fetch_chunks(state, targets, prefetched=True)
        except TDBError:
            pass

    def evict_payload(self, pid: int, rank: int) -> None:
        """Drop any validated-payload entry for ``(pid, rank)`` — e.g. an
        :class:`~repro.objectstore.store.ObjectStore` abort's defensive
        eviction of chunks its transaction touched."""
        with self._lock:
            self.payloads.invalidate(data_id(pid, rank))

    def chunk_status(self, pid: int, rank: int) -> str:
        """Introspection: 'written', 'unwritten', 'free', or 'unallocated'."""
        with self._lock:
            state = self._state(pid)
            if rank in state.pending_ranks:
                return "unwritten"
            if state.is_committed_written(rank):
                return "written"
            if rank in state.payload.free_ranks:
                return "free"
            return "unallocated"

    # ------------------------------------------------------------------
    # appending to the log
    # ------------------------------------------------------------------

    def _note(self, version_bytes: bytes, in_commit_set: bool) -> None:
        if self.config.validation_mode == "direct":
            self.validator.note_version(version_bytes)
        elif in_commit_set:
            self.validator.note_version(version_bytes)

    def _append_version(self, version_bytes: bytes, in_commit_set: bool = True) -> int:
        """Append one version at the log tail, jumping segments as needed.

        Returns the absolute location of the version.  NEXT_SEGMENT
        versions created by jumps are excluded from counter-mode commit-set
        hashes (see :mod:`repro.chunkstore.validation`).
        """
        size = len(version_bytes)
        limit = self.config.segment_size - self._next_segment_size
        if size > limit:
            raise ChunkStoreError(
                f"version of {size} bytes exceeds the maximum of {limit} "
                f"(segment size {self.config.segment_size})"
            )
        segman = self.segman
        if segman.tail_offset + size + self._next_segment_size > self.config.segment_size:
            new_segment = segman.claim_free_segment()
            jump = self.codec.build_unnamed(
                VersionKind.NEXT_SEGMENT, NextSegmentRecord(new_segment).encode()
            )
            location = segman.tail_location
            self.logbuf.append(location, jump)
            self._note(jump, in_commit_set=False)
            segman.advance(len(jump))
            segman.jump_to(new_segment)
        location = segman.tail_location
        self.logbuf.append(location, version_bytes)
        self._note(version_bytes, in_commit_set)
        segman.advance(size)
        return location

    def _flush_untrusted(self) -> None:
        self.logbuf.seal()

        def issue() -> None:
            with profiled("untrusted store write"):
                self.platform.untrusted.flush()

        self.retrier.call(issue, "flush")
        if self.config.validation_mode == "counter":
            self.validator.note_flushed()

    # ------------------------------------------------------------------
    # effect application — shared between commit and recovery roll-forward
    # ------------------------------------------------------------------

    def _apply_chunk_write(
        self, cid: ChunkId, descriptor: ChunkDescriptor
    ) -> None:
        """Install a committed chunk write into cache, allocation state,
        and utilization accounting."""
        self.payloads.invalidate(cid)  # the cached payload is now stale
        state = self._state(cid.partition)
        old = self.cache.get(cid)
        if old is None and state.payload.tree_height >= max(cid.height, 1):
            try:
                old = self._get_descriptor(cid)
            except (TamperDetectedError, QuarantineError, IOFaultError):
                old = None  # accounting only; validation happens on real reads
        if old is not None and old.is_written():
            self.segman.sub_live(old.location, old.length)
        self.segman.add_live(descriptor.location, descriptor.length)
        self.cache.put_dirty(cid, descriptor)
        if cid.height == 0:
            state.apply_committed_write(cid.rank)
        state.leader_dirty = True

    def _apply_chunk_dealloc(self, cid: ChunkId) -> None:
        self.payloads.invalidate(cid)
        state = self._state(cid.partition)
        old = self.cache.get(cid)
        if old is None:
            try:
                old = self._get_descriptor(cid)
            except (TamperDetectedError, QuarantineError, IOFaultError):
                old = None
        if old is not None and old.is_written():
            self.segman.sub_live(old.location, old.length)
        self.cache.put_dirty(cid, ChunkDescriptor(ChunkStatus.FREE))
        state.apply_committed_dealloc(cid.rank)

    def _apply_partition_leader(
        self, pid: int, payload: LeaderPayload, descriptor: ChunkDescriptor
    ) -> None:
        """A partition leader chunk was committed (create, copy, or leader
        rewrite): refresh the open partition state."""
        existing = self.partitions.get(pid)
        if existing is not None and existing.payload is payload:
            # rewrite of the live payload (e.g. a copy source's updated
            # copies list): state — including volatile allocations — stays
            existing.leader_dirty = False
        else:
            self.partitions[pid] = PartitionState.open(pid, payload)
        self._apply_chunk_write(data_id(SYSTEM_PARTITION, partition_rank(pid)), descriptor)

    def _collect_copy_family(self, pid: int) -> List[int]:
        """``pid`` plus all transitive copies (§5.1: deallocating a
        partition deallocates its copies)."""
        family: List[int] = []
        queue = [pid]
        seen: Set[int] = set()
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            family.append(current)
            if not self.partition_exists(current):
                continue
            try:
                state = self._state(current)
            except (
                PartitionNotFoundError,
                TamperDetectedError,
                QuarantineError,
                IOFaultError,
            ):
                continue
            queue.extend(state.payload.copies)
        return family

    def _iter_partition_locations(self, pid: int) -> Iterator[Tuple[int, int]]:
        """Yield (location, length) of every written descriptor reachable
        from ``pid``'s position map — data and map chunks.  Best-effort
        (skips unreadable subtrees); used only for utilization estimates."""
        try:
            state = self._state(pid)
        except (
            PartitionNotFoundError,
            TamperDetectedError,
            QuarantineError,
            IOFaultError,
        ):
            return
        payload = state.payload
        if payload.tree_height == 0:
            return
        stack = [(ChunkId(pid, payload.tree_height, 0), payload.root)]
        while stack:
            cid, descriptor = stack.pop()
            if not descriptor.is_written():
                continue
            yield descriptor.location, descriptor.length
            if cid.height == 0:
                continue
            try:
                body = self._read_validated(cid, descriptor, state)
            except (TamperDetectedError, QuarantineError, IOFaultError, ValueError):
                continue
            try:
                children = decode_descriptor_vector(body)
            except ValueError:
                continue
            for slot, child in enumerate(children):
                # prefer the cache view: dirty descriptors shadow the map
                child_id = cid.child(self.config.fanout, slot)
                cached = self.cache.get(child_id)
                stack.append((child_id, cached if cached is not None else child))

    def _apply_partition_dealloc(self, family: Iterable[int]) -> None:
        system = self.partitions[SYSTEM_PARTITION]
        # subtract live bytes once per distinct version across the family
        locations: Set[Tuple[int, int]] = set()
        for pid in family:
            for loc_len in self._iter_partition_locations(pid):
                locations.add(loc_len)
        for location, length in locations:
            self.segman.sub_live(location, length)
        for pid in family:
            state = self.partitions.get(pid)
            parent = state.payload.copy_of if state else None
            if parent is not None and parent not in family:
                parent_state = self.partitions.get(parent)
                if parent_state and pid in parent_state.payload.copies:
                    parent_state.payload.copies.remove(pid)
                    parent_state.leader_dirty = True
            self.cache.drop_partition(pid)
            self.payloads.drop_partition(pid)
            self._read_cursor.pop(pid, None)
            self.partitions.pop(pid, None)
            rank = partition_rank(pid)
            if system.is_committed_written(rank):
                self._apply_chunk_dealloc(data_id(SYSTEM_PARTITION, rank))
        system.leader_dirty = True

    # ------------------------------------------------------------------
    # commit (§4.6, §5.1)
    # ------------------------------------------------------------------

    def commit(self, operations: Sequence[object]) -> None:
        """Atomically apply a set of operations (see
        :mod:`repro.chunkstore.ops`).  The commit is durable when this
        method returns; a crash at any earlier point leaves the store in
        its prior committed state."""
        with self._lock, profiled("chunk store"), obs.span(
            "commit", ops=len(operations)
        ), obs.time_block("chunkstore.commit"):
            self._check_open()
            self._validate_operations(operations)
            if self.cache.dirty_count() >= self.config.checkpoint_dirty_threshold:
                self._write_checkpoint()
            if any(isinstance(op, CopyPartition) for op in operations):
                # Copies snapshot via the leader payload, whose root must be
                # current: flush buffered descriptors first (see DESIGN.md).
                if self.cache.dirty_count() > 0 or any(
                    s.leader_dirty for s in self.partitions.values()
                ):
                    self._write_checkpoint()
            self._ensure_capacity(self._estimate_commit_bytes(operations))
            try:
                self._commit_locked(operations)
            except BaseException:
                # a failure *during* the commit (crash injection or an
                # unexpected error past the preflight checks) leaves
                # volatile state half-applied; the only safe continuation
                # is recovery from the durable log
                self._failed = True
                raise
            self.commit_count_stat += 1

    def _check_open(self) -> None:
        if self._closed:
            raise ChunkStoreError("chunk store is closed")
        if self._failed:
            raise ChunkStoreError(
                "chunk store is in a failed state after an interrupted "
                "commit; reopen it to recover from the log"
            )

    def _validate_operations(self, operations: Sequence[object]) -> None:
        """Pre-flight checks so failures surface before any mutation."""
        written_here: Set[Tuple[int, int]] = set()
        # collect first so chunk writes into partitions created by this
        # same commit validate regardless of operation order
        partitions_written_here: Set[int] = {
            op.partition
            for op in operations
            if isinstance(op, (WritePartition, CopyPartition))
        }
        for op in operations:
            if isinstance(op, WriteChunk):
                key = (op.partition, op.rank)
                if key in written_here:
                    raise ChunkStoreError(
                        f"duplicate write to chunk {op.partition}:0.{op.rank} "
                        f"in one commit"
                    )
                written_here.add(key)
                # size must be checked *before* any mutation: a mid-commit
                # failure would leave earlier operations half-applied
                limit = self.config.segment_size - self._next_segment_size
                worst_case = self.codec.header_cipher_size + len(op.data) + 64
                if worst_case > limit:
                    raise ChunkStoreError(
                        f"chunk of {len(op.data)} bytes exceeds the segment "
                        f"capacity ({limit} bytes incl. overhead)"
                    )
                if op.partition in partitions_written_here:
                    continue  # chunk in a partition created by this commit
                self._state(op.partition).require_allocated(op.rank)
            elif isinstance(op, DeallocateChunk):
                if op.partition in partitions_written_here:
                    raise ChunkStoreError(
                        "cannot deallocate chunks of a partition created in "
                        "the same commit"
                    )
                self._state(op.partition).require_allocated(op.rank)
            elif isinstance(op, WritePartition):
                system = self.partitions[SYSTEM_PARTITION]
                rank = partition_rank(op.partition)
                system.require_allocated(rank)
                if op.key is not None and len(op.key) != KEY_SIZES.get(
                    op.cipher_name, -1
                ):
                    raise ChunkStoreError(
                        f"key size {len(op.key)} wrong for cipher {op.cipher_name!r}"
                    )
                make_hash(op.hash_name)  # raises on unknown names
            elif isinstance(op, CopyPartition):
                system = self.partitions[SYSTEM_PARTITION]
                system.require_allocated(partition_rank(op.partition))
                self._state(op.source)
            elif isinstance(op, DeallocatePartition):
                self._state(op.partition)
            else:
                raise ChunkStoreError(f"unknown operation {op!r}")

    def _estimate_commit_bytes(self, operations: Sequence[object]) -> int:
        total = 0
        for op in operations:
            if isinstance(op, WriteChunk):
                total += self.codec.version_size(
                    len(op.data) + 64, self.codec.system_cipher
                )
            elif isinstance(op, (WritePartition, CopyPartition)):
                total += 2048
            else:
                total += 256
        total += 4096  # dealloc record, commit chunk, jump slack
        return total

    def _ensure_capacity(self, needed: int) -> None:
        def capacity() -> int:
            per_segment = self.config.segment_size - self._next_segment_size
            return (
                (per_segment - self.segman.tail_offset)
                + self.segman.free_segment_count() * per_segment
            )

        if capacity() >= needed and (
            self.segman.free_segment_count() >= self.config.clean_low_water
        ):
            return
        if not self._in_maintenance:
            from repro.chunkstore.cleaner import Cleaner

            cleaner = Cleaner(self)
            checkpointed = False
            while capacity() < max(
                needed, self.config.clean_low_water * self.config.segment_size
            ):
                if cleaner.clean_one() is None:
                    if not checkpointed and len(self.segman.residual_segments) > 1:
                        self._write_checkpoint()  # bound the residual log
                        checkpointed = True
                        continue
                    break
        if capacity() < needed:
            raise StorageFullError(
                f"need {needed} bytes but only {capacity()} available after cleaning"
            )

    def _commit_locked(self, operations: Sequence[object]) -> None:
        injector = self.platform.injector
        injector.point("commit.begin")
        if self.config.validation_mode == "counter":
            self.validator.begin_commit()
        dealloc_chunks: List[ChunkId] = []
        dealloc_partitions: List[int] = []

        # Partition creations/copies first, so chunk writes into brand-new
        # partitions within the same commit find their leader.
        ordered = sorted(
            operations,
            key=lambda op: 0
            if isinstance(op, (WritePartition, CopyPartition))
            else (2 if isinstance(op, (DeallocateChunk, DeallocatePartition)) else 1),
        )
        for op in ordered:
            if isinstance(op, WritePartition):
                key = op.key if op.key is not None else generate_partition_key(
                    op.cipher_name
                )
                payload = LeaderPayload(
                    cipher_name=op.cipher_name,
                    hash_name=op.hash_name,
                    key=key,
                    name=op.name,
                )
                if self.partition_exists(op.partition):
                    # reset semantics: old contents become obsolete; copy
                    # relationships survive (copies keep their own state)
                    old_state = self._state(op.partition)
                    for location, length in self._iter_partition_locations(
                        op.partition
                    ):
                        self.segman.sub_live(location, length)
                    payload.copies = list(old_state.payload.copies)
                    payload.copy_of = old_state.payload.copy_of
                    self.cache.drop_partition(op.partition)
                    self.payloads.drop_partition(op.partition)
                    self._read_cursor.pop(op.partition, None)
                self._append_leader(op.partition, payload)
            elif isinstance(op, CopyPartition):
                source = self._state(op.source)
                payload = source.payload.copy_for_snapshot()
                payload.copy_of = op.source
                source.payload.copies.append(op.partition)
                self._append_leader(op.partition, payload)
                self._append_leader(op.source, source.payload)
            elif isinstance(op, WriteChunk):
                cid = data_id(op.partition, op.rank)
                state = self._state(op.partition)
                with profiled("encryption"):
                    version, digest = self.codec.build_named(
                        cid, op.data, state.cipher, state.hash
                    )
                location = self._append_version(version)
                self._apply_chunk_write(
                    cid,
                    ChunkDescriptor(
                        ChunkStatus.WRITTEN, location, len(version), digest
                    ),
                )
                injector.point("commit.write")
            elif isinstance(op, DeallocateChunk):
                state = self._state(op.partition)
                if op.rank in state.pending_ranks and not state.is_committed_written(
                    op.rank
                ):
                    state.cancel_pending(op.rank)  # never persisted: no record
                else:
                    dealloc_chunks.append(data_id(op.partition, op.rank))
            elif isinstance(op, DeallocatePartition):
                dealloc_partitions.extend(self._collect_copy_family(op.partition))

        if dealloc_chunks or dealloc_partitions:
            record = DeallocateRecord(dealloc_chunks, sorted(set(dealloc_partitions)))
            version = self.codec.build_unnamed(
                VersionKind.DEALLOCATE, record.encode()
            )
            self._append_version(version)
            for cid in dealloc_chunks:
                self._apply_chunk_dealloc(cid)
            if dealloc_partitions:
                self._apply_partition_dealloc(sorted(set(dealloc_partitions)))

        self._finalize_commit()

    def _append_leader(self, pid: int, payload: LeaderPayload) -> None:
        """Write a partition leader as a data chunk of the system partition."""
        cid = data_id(SYSTEM_PARTITION, partition_rank(pid))
        system = self.partitions[SYSTEM_PARTITION]
        with profiled("encryption"):
            version, digest = self.codec.build_named(
                cid, payload.encode(), system.cipher, system.hash
            )
        location = self._append_version(version)
        descriptor = ChunkDescriptor(ChunkStatus.WRITTEN, location, len(version), digest)
        self._apply_partition_leader(pid, payload, descriptor)

    def _finalize_commit(self) -> None:
        """Flush and update the tamper-resistant store (§4.8.2)."""
        injector = self.platform.injector
        if self.config.validation_mode == "counter":
            record = self.validator.build_commit_record()
            version = self.codec.build_unnamed(VersionKind.COMMIT, record.encode())
            self._append_version(version, in_commit_set=False)
            self.logbuf.seal()
            injector.point("commit.before_flush")
            if self.config.flush_every_commit:
                self._flush_untrusted()
            injector.point("commit.after_flush")
            self.validator.committed()
            if self.validator.needs_tr_update():
                target = self.validator.tr_update_target()
                if target < self.validator.next_count - 1:
                    # Δtu forbids the counter from leading the durable log;
                    # flush so the counter can catch up fully.
                    self._flush_untrusted()
                    target = self.validator.tr_update_target()
                with profiled("tamper-resistant store"):
                    self.validator.advance_tr(target)
                injector.point("commit.after_tr")
        else:
            self.logbuf.seal()
            injector.point("commit.before_flush")
            self._flush_untrusted()
            injector.point("commit.after_flush")
            with profiled("tamper-resistant store"):
                self.validator.commit_point(
                    self.segman.tail_location, self._leader_location
                )
            injector.point("commit.after_tr")

    # ------------------------------------------------------------------
    # checkpoint (§4.7)
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write buffered chunk-map updates and a fresh leader to the log."""
        with self._lock, profiled("chunk store"), obs.span(
            "checkpoint"
        ), obs.time_block("chunkstore.checkpoint"):
            self._check_open()
            try:
                self._write_checkpoint()
            except BaseException:
                self._failed = True  # half-written checkpoint: reopen to recover
                raise

    def _write_checkpoint(self, initial: bool = False) -> None:
        injector = self.platform.injector
        injector.point("checkpoint.begin")
        if self.config.validation_mode == "counter":
            self.validator.begin_commit()
        appended_any = False

        if not initial:
            # Phase 1: persist map chunks for every partition with dirty
            # descriptors, then rewrite dirty leaders (user partitions are
            # data chunks of the system partition, so they come before the
            # system partition's own map).
            user_pids = [
                pid for pid in self.partitions if pid != SYSTEM_PARTITION
            ]
            for pid in sorted(user_pids):
                appended_any |= self._checkpoint_partition_maps(pid)
            for pid in sorted(user_pids):
                state = self.partitions[pid]
                if state.leader_dirty:
                    self._append_leader(pid, state.payload)
                    state.leader_dirty = False
                    appended_any = True
            appended_any |= self._checkpoint_partition_maps(SYSTEM_PARTITION)

            if self.config.validation_mode == "counter" and appended_any:
                record = self.validator.build_commit_record()
                version = self.codec.build_unnamed(
                    VersionKind.COMMIT, record.encode()
                )
                self._append_version(version, in_commit_set=False)
                self.validator.committed()

        # Phase 2: start a fresh segment for the residual log, write the
        # system leader there (the head of the new residual log), and make
        # the checkpoint durable.
        new_segment = self.segman.claim_free_segment()
        if not initial:
            jump = self.codec.build_unnamed(
                VersionKind.NEXT_SEGMENT, NextSegmentRecord(new_segment).encode()
            )
            self.logbuf.append(self.segman.tail_location, jump)
            self._note(jump, in_commit_set=False)
            self.segman.advance(len(jump))
        self.segman.begin_residual(new_segment)

        if self.config.validation_mode == "direct":
            self.validator.reset_chain()
        else:
            self.validator.begin_commit()

        system = self.partitions[SYSTEM_PARTITION]
        extras = system.payload.system
        if extras is None:
            extras = SystemExtras()
            system.payload.system = extras
        if self.config.validation_mode == "counter":
            extras.checkpoint_count = self.validator.next_count
        extras.segments = self.segman.to_table()

        leader_cid = leader_id(SYSTEM_PARTITION)
        with profiled("encryption"):
            version, _digest = self.codec.build_named(
                leader_cid, system.payload.encode(), system.cipher, system.hash
            )
        self._leader_location = self._append_version(version)
        system.leader_dirty = False

        if self.config.validation_mode == "counter":
            record = self.validator.build_commit_record()
            commit_version = self.codec.build_unnamed(
                VersionKind.COMMIT, record.encode()
            )
            self._append_version(commit_version, in_commit_set=False)
            self.validator.committed()

        injector.point("checkpoint.before_flush")
        self._flush_untrusted()
        injector.point("checkpoint.after_flush")
        with profiled("tamper-resistant store"):
            if self.config.validation_mode == "direct":
                self.validator.commit_point(
                    self.segman.tail_location, self._leader_location
                )
            else:
                self.validator.advance_tr(self.validator.next_count - 1)
        injector.point("checkpoint.after_tr")
        self._write_superblock()
        injector.point("checkpoint.end")
        self.cache.clean_all_dirty()
        logger.info(
            "checkpoint complete: leader at %d, residual restarts in segment %d",
            self._leader_location,
            self.segman.tail_segment,
        )

    def _checkpoint_partition_maps(self, pid: int) -> bool:
        """Write every map chunk of ``pid`` containing dirty descriptors
        (and their ancestors up to the root); returns True if any were
        written.  Updates the partition payload's root and height."""
        state = self.partitions.get(pid)
        if state is None:
            return False
        fanout = self.config.fanout
        need = [cid for cid, _ in self.cache.dirty_items() if cid.partition == pid]
        if not need:
            return False
        payload = state.payload
        old_height = payload.tree_height
        new_height = max(old_height, required_height(fanout, payload.next_rank), 1)
        if new_height > old_height and old_height >= 1:
            # the old root becomes an ordinary map chunk: seed its
            # descriptor so the new levels above it get built
            old_root_id = ChunkId(pid, old_height, 0)
            self.cache.put_dirty(old_root_id, payload.root)
            need.append(old_root_id)
        appended = False
        for height in range(1, new_height + 1):
            parents = sorted(
                {cid.parent(fanout) for cid in need if cid.height == height - 1},
                key=lambda c: c.rank,
            )
            for map_id in parents:
                appended |= self._rewrite_map_chunk(map_id, state)
                need.append(map_id)
        root = self.cache.get(ChunkId(pid, new_height, 0))
        if root is None:
            raise ChunkStoreError(f"checkpoint failed to produce a root for {pid}")
        payload.root = root
        payload.tree_height = new_height
        state.leader_dirty = True
        return appended

    def _rewrite_map_chunk(self, map_id: ChunkId, state: PartitionState) -> bool:
        fanout = self.config.fanout
        old_desc = None
        if map_id.height <= state.payload.tree_height:
            try:
                old_desc = self._get_descriptor(map_id)
            except TamperDetectedError:
                raise
        if old_desc is not None and old_desc.is_written():
            try:
                body = self._read_validated(map_id, old_desc, state)
            except (QuarantineError, IOFaultError, TamperDetectedError):
                # Degraded rebuild: a checkpoint must not be poisoned by a
                # dead map chunk if every written child descriptor it held
                # is known from elsewhere (the cache, or repairs just
                # committed).  If any committed child is unaccounted for,
                # the original error propagates — rebuilding would silently
                # drop that chunk's location.
                slots = self._degraded_map_slots(map_id, state)
                if slots is None:
                    raise
            else:
                slots = decode_descriptor_vector(body)
        else:
            slots = [ChunkDescriptor() for _ in range(fanout)]
        for slot in range(fanout):
            child = map_id.child(fanout, slot)
            cached = self.cache.get(child)
            if cached is not None:
                slots[slot] = cached
        body = encode_descriptor_vector(slots)
        with profiled("encryption"):
            version, digest = self.codec.build_named(
                map_id, body, state.cipher, state.hash
            )
        location = self._append_version(version)
        descriptor = ChunkDescriptor(ChunkStatus.WRITTEN, location, len(version), digest)
        if old_desc is not None and old_desc.is_written():
            self.segman.sub_live(old_desc.location, old_desc.length)
        self.segman.add_live(location, len(version))
        self.cache.put_dirty(map_id, descriptor)
        self._quarantine.pop(str(map_id), None)  # the rewrite supersedes it
        return True

    def _degraded_map_slots(
        self, map_id: ChunkId, state: PartitionState
    ) -> Optional[List[ChunkDescriptor]]:
        """Rebuild an unreadable map chunk's slot vector from the cache.

        Returns ``None`` if any committed-written data rank covered by an
        uncached child subtree exists — its descriptor lives only in the
        dead map chunk, so a rebuild would lose it."""
        fanout = self.config.fanout
        slots: List[ChunkDescriptor] = []
        child_span = fanout ** (map_id.height - 1)
        for slot in range(fanout):
            child = map_id.child(fanout, slot)
            cached = self.cache.get(child)
            if cached is not None:
                slots.append(cached)
                continue
            first = child.rank * child_span
            last = min((child.rank + 1) * child_span, state.payload.next_rank)
            if any(state.is_committed_written(r) for r in range(first, last)):
                return None
            slots.append(ChunkDescriptor())
        return slots

    # ------------------------------------------------------------------
    # diff (§5.3)
    # ------------------------------------------------------------------

    def diff(self, old_pid: int, new_pid: int) -> Dict[int, str]:
        """Positions whose state differs between two partitions.

        Returns ``{rank: DiffChange.*}``.  Commonly called on two
        snapshots of the same partition, where the shared subtree pruning
        makes the traversal proportional to the *changed* chunks."""
        with self._lock, profiled("chunk store"):
            if self.cache.dirty_count() > 0 or any(
                s.leader_dirty for s in self.partitions.values()
            ):
                # the traversal compares *persistent* map descriptors, so
                # buffered updates must reach the map first
                self._write_checkpoint()
            old_state = self._state(old_pid)
            new_state = self._state(new_pid)
            changes: Dict[int, str] = {}
            if old_state.payload.tree_height == new_state.payload.tree_height:
                height = old_state.payload.tree_height
                if height == 0:
                    return changes
                self._diff_recursive(
                    old_state, new_state, height, 0, changes
                )
            else:
                max_rank = max(
                    old_state.payload.next_rank, new_state.payload.next_rank
                )
                for rank in range(max_rank):
                    self._diff_leaf(old_state, new_state, rank, changes)
            return changes

    def _diff_recursive(
        self,
        old_state: PartitionState,
        new_state: PartitionState,
        height: int,
        rank: int,
        changes: Dict[int, str],
    ) -> None:
        old_desc = self._get_descriptor(ChunkId(old_state.pid, height, rank))
        new_desc = self._get_descriptor(ChunkId(new_state.pid, height, rank))
        if old_desc.same_version(new_desc):
            return
        if height == 0:
            self._classify_leaf(old_desc, new_desc, rank, changes)
            return
        for slot in range(self.config.fanout):
            self._diff_recursive(
                old_state, new_state, height - 1, rank * self.config.fanout + slot,
                changes,
            )

    def _diff_leaf(
        self,
        old_state: PartitionState,
        new_state: PartitionState,
        rank: int,
        changes: Dict[int, str],
    ) -> None:
        old_desc = self._get_descriptor(data_id(old_state.pid, rank))
        new_desc = self._get_descriptor(data_id(new_state.pid, rank))
        if not old_desc.same_version(new_desc):
            self._classify_leaf(old_desc, new_desc, rank, changes)

    @staticmethod
    def _classify_leaf(
        old_desc: ChunkDescriptor,
        new_desc: ChunkDescriptor,
        rank: int,
        changes: Dict[int, str],
    ) -> None:
        if old_desc.is_written() and new_desc.is_written():
            changes[rank] = DiffChange.CHANGED
        elif new_desc.is_written():
            changes[rank] = DiffChange.ADDED
        elif old_desc.is_written():
            changes[rank] = DiffChange.REMOVED
        # neither written (free vs unallocated): no observable difference

    # ------------------------------------------------------------------
    # cleaning (§4.9.5)
    # ------------------------------------------------------------------

    def clean(self, max_segments: int = 1) -> int:
        """Clean up to ``max_segments`` low-utilization segments; returns
        the number actually cleaned."""
        from repro.chunkstore.cleaner import Cleaner

        with self._lock:
            self._check_open()
            cleaner = Cleaner(self)
            cleaned = 0
            for _ in range(max_segments):
                if cleaner.clean_one() is None:
                    if cleaned == 0 and len(self.segman.residual_segments) > 1:
                        # everything cleanable is pinned in the residual
                        # log; a checkpoint bounds it (§4.9.5)
                        self._write_checkpoint()
                        if cleaner.clean_one() is None:
                            break
                        cleaned += 1
                        continue
                    break
                cleaned += 1
            return cleaned

    # ------------------------------------------------------------------
    # introspection / stats
    # ------------------------------------------------------------------

    def scrub(
        self,
        raise_on_first: bool = True,
        repair_source: Optional[Callable[[int, int], Optional[bytes]]] = None,
    ) -> Dict[str, object]:
        """Proactively validate the *entire* database (an fsck for trust),
        and repair what the device or an attacker destroyed.

        Walks every partition's position map and reads every current map
        and data chunk through the normal validated read path, giving
        previously quarantined extents fresh retries.  With
        ``raise_on_first`` (default), the first failure raises; otherwise
        failures are collected — ``corrupt`` for validation failures
        (tampering), ``unreadable`` for extents dead after retries — and a
        repair pass runs:

        * data chunks are re-committed from ``repair_source(pid, rank)``
          (e.g. :meth:`repro.backup.store.BackupStore.repair_source`).
          Where the committed descriptor is reachable, the candidate must
          hash to exactly the committed bytes, so a stale backup can never
          silently roll data back; with the descriptor unreachable (dead
          map chunk) the MAC-validated backup is the remaining authority.
        * unreadable map chunks are rebuilt from cached and freshly
          repaired child descriptors by forcing a checkpoint rewrite.

        Every failed chunk is then re-read: the ones that now validate are
        reported in ``repaired``, the rest in ``unrepaired`` (and stay
        quarantined for a later scrub with a better backup).
        """
        with self._lock, profiled("chunk store"), obs.span(
            "scrub"
        ), obs.time_block("chunkstore.scrub"):
            self._check_open()
            # Fresh retries: drop "io" short-circuits so reads hit the
            # device again ("tamper" entries are bookkeeping; reads
            # re-validate those regardless).
            self._quarantine = {
                k: v for k, v in self._quarantine.items() if v != "io"
            }
            validated = 0
            corrupt: List[str] = []
            unreadable: List[str] = []
            failed: List[ChunkId] = []
            scan_errors = (TamperDetectedError, QuarantineError, IOFaultError)

            def note_failure(cid: ChunkId, exc: Exception) -> None:
                if isinstance(exc, TamperDetectedError):
                    corrupt.append(str(cid))
                else:
                    unreadable.append(str(cid))
                failed.append(cid)

            pids = [SYSTEM_PARTITION] + self.partition_ids()
            for pid in pids:
                try:
                    state = self._state(pid)
                except scan_errors:
                    if raise_on_first:
                        raise
                    # the leader is a data chunk of the system partition,
                    # already recorded by the system partition's own walk
                    continue
                for rank in range(state.payload.next_rank):
                    if not state.is_committed_written(rank):
                        continue
                    cid = data_id(pid, rank)
                    try:
                        # bypass the payload cache: scrub exists to
                        # exercise the device and the validation chain
                        self._read_chunk_body(cid, use_payload_cache=False)
                        validated += 1
                    except scan_errors as exc:
                        if raise_on_first:
                            raise
                        note_failure(cid, exc)
                # map chunks validate implicitly on the way down, but walk
                # them explicitly so unreferenced-yet-current levels count
                height = state.payload.tree_height
                for level in range(1, height + 1):
                    span = (state.payload.next_rank + self.config.fanout**level - 1) // (
                        self.config.fanout**level
                    )
                    for rank in range(span):
                        cid = ChunkId(pid, level, rank)
                        try:
                            descriptor = self._get_descriptor(cid)
                            if not descriptor.is_written():
                                continue
                            self._read_validated(cid, descriptor, state)
                            validated += 1
                        except scan_errors as exc:
                            if raise_on_first:
                                raise
                            note_failure(cid, exc)

            repaired: List[str] = []
            unrepaired: List[str] = []
            if failed:
                self._repair_failed_chunks(failed, repair_source)
                for cid in failed:
                    self._quarantine.pop(str(cid), None)  # fresh attempt
                    try:
                        state = self._state(cid.partition)
                        if cid.height == 0:
                            self._read_chunk_body(cid, use_payload_cache=False)
                        else:
                            descriptor = self._get_descriptor(cid)
                            if descriptor.is_written():
                                self._read_validated(cid, descriptor, state)
                        repaired.append(str(cid))
                        obs.add("chunkstore.repairs")
                        obs.emit("repair", chunk=str(cid), ok=True)
                    except (ChunkStoreError, TamperDetectedError, IOFaultError):
                        unrepaired.append(str(cid))
                        obs.emit("repair", chunk=str(cid), ok=False)
            logger.info(
                "scrub: %d chunk(s) validated across %d partition(s), "
                "%d corrupt, %d unreadable, %d repaired",
                validated,
                len(pids),
                len(corrupt),
                len(unreadable),
                len(repaired),
            )
            return {
                "chunks_validated": validated,
                "partitions": len(pids),
                "corrupt": corrupt,
                "unreadable": unreadable,
                "repaired": repaired,
                "unrepaired": unrepaired,
                "quarantine": dict(self._quarantine),
            }

    def _repair_failed_chunks(
        self,
        failed: List[ChunkId],
        repair_source: Optional[Callable[[int, int], Optional[bytes]]],
    ) -> None:
        """Scrub's repair pass (see :meth:`scrub`)."""
        changed = False
        for cid in failed:
            if (
                cid.height == 0
                and cid.partition != SYSTEM_PARTITION
                and repair_source is not None
            ):
                try:
                    state = self._state(cid.partition)
                except (TamperDetectedError, QuarantineError, IOFaultError):
                    continue
                candidate = repair_source(cid.partition, cid.rank)
                if candidate is not None and self._repair_data_chunk(
                    cid, state, candidate
                ):
                    changed = True
            elif cid.height >= 1:
                # Re-dirty every cached written child so the checkpoint
                # rewrites this map chunk (degraded rebuild from cache).
                for slot in range(self.config.fanout):
                    child = cid.child(self.config.fanout, slot)
                    cached = self.cache.get(child)
                    if cached is not None and cached.is_written():
                        self.cache.put_dirty(child, cached)
                        changed = True
        if changed:
            try:
                self._write_checkpoint()
            except BaseException:
                self._failed = True  # half-written checkpoint: reopen
                raise

    def _repair_data_chunk(
        self, cid: ChunkId, state: PartitionState, candidate: bytes
    ) -> bool:
        """Re-commit backup bytes for one data chunk, verified first where
        the committed descriptor is reachable (stale bytes are refused)."""
        try:
            descriptor = self._get_descriptor(cid)
        except (TamperDetectedError, QuarantineError, IOFaultError):
            descriptor = None
        if (
            descriptor is not None
            and descriptor.is_written()
            and state.cipher.authenticates
        ):
            # An AEAD descriptor stores the auth tag, which depends on the
            # encryption nonce — unrecomputable from plaintext, so the
            # stale-bytes pre-check below cannot run.  The backup stream
            # is itself MAC-validated end-to-end, which is the authority
            # this path falls back on.
            logger.info(
                "scrub: %s is on an AEAD partition; trusting the "
                "MAC-validated backup bytes without a descriptor pre-check",
                cid,
            )
        elif descriptor is not None and descriptor.is_written():
            header = VersionHeader(
                VersionKind.NAMED,
                cid.partition,
                cid.height,
                cid.rank,
                len(candidate),
                state.cipher.ciphertext_size(len(candidate)),
            )
            if (
                self.codec.descriptor_hash(header, candidate, state.hash)
                != descriptor.body_hash
            ):
                logger.warning(
                    "scrub: backup bytes for %s do not match the committed "
                    "hash; refusing to roll back",
                    cid,
                )
                return False
        self.commit([WriteChunk(cid.partition, cid.rank, candidate)])
        return True

    def stored_bytes(self) -> int:
        """Bytes the log currently occupies (§9.3 space accounting)."""
        return self.segman.stored_bytes()

    def live_bytes(self) -> int:
        return self.segman.live_total()

    def stats(self) -> Dict[str, object]:
        """Operational counters: crypto and hash byte tallies per algorithm,
        descriptor-cache hit rates, and log write coalescing (§9.5.3)."""
        with self._lock:
            crypto: Dict[str, Dict[str, int]] = {}
            hashing: Dict[str, Dict[str, int]] = {}

            def merge(table, name, counters):
                agg = table.setdefault(name, {})
                counters.add_into(agg)

            merge(crypto, self.codec.system_cipher.name, self.codec.system_cipher.counters)
            merge(hashing, self.codec.system_hash.name, self.codec.system_hash.counters)
            for state in self.partitions.values():
                merge(crypto, state.cipher.name, state.cipher.counters)
                merge(hashing, state.hash.name, state.hash.counters)
            io = self.platform.untrusted.stats
            return {
                "crypto": crypto,
                "hashing": hashing,
                "cache": self.cache.stats(),
                "log": {
                    "appends": self.logbuf.appends,
                    "writes_issued": self.logbuf.writes_issued,
                    "writes_coalesced": self.logbuf.appends - self.logbuf.writes_issued,
                    "bytes_appended": self.logbuf.bytes_appended,
                },
                "commits": self.commit_count_stat,
                "payload_cache": self.payloads.stats(),
                "walk": {
                    "batches": self.walk_batches,
                    "map_chunks_fetched": self.walk_map_chunks_fetched,
                    "round_trips_saved": self.walk_round_trips_saved,
                    "chunk_batches": self.chunk_batches,
                    "chunks_batch_fetched": self.chunk_batch_fetched,
                    "prefetch_issued": self.prefetch_issued,
                },
                "untrusted": {
                    "reads": io.reads,
                    "batched_reads": io.batched_reads,
                    "batched_extents": io.batched_extents,
                    "bytes_read": io.bytes_read,
                    "writes": io.writes,
                    "bytes_written": io.bytes_written,
                    "flushes": io.flushes,
                    "flushed_bytes": io.flushed_bytes,
                    "io_errors": io.io_errors,
                    "retries": io.retries,
                    "gave_up": io.gave_up,
                },
                "faults": {
                    "quarantined": self.quarantined_total,
                    "quarantine_active": len(self._quarantine),
                },
                "snapshots": {
                    "open_views": self._snapshot_pins,
                    "views_opened": self.snapshot_views_opened,
                },
            }

    def quarantined_chunks(self) -> Dict[str, str]:
        """Active quarantine entries: ``{chunk id: cause}`` (see
        :meth:`scrub` for how entries heal)."""
        with self._lock:
            return dict(self._quarantine)

    def data_ranks(self, pid: int) -> List[int]:
        """All committed-written data ranks of a partition."""
        with self._lock:
            state = self._state(pid)
            return [
                rank
                for rank in range(state.payload.next_rank)
                if state.is_committed_written(rank)
            ]
