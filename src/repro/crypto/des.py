"""DES and Triple-DES (EDE) block ciphers, implemented from scratch.

The paper uses DES in CBC mode for application partitions and 3DES in CBC
mode for the system partition (§9.2.1).  This module implements the FIPS
46-3 algorithm in pure Python.

Implementation notes (these matter for making pure Python tolerable):

* permutations (IP, FP, E) are applied through precomputed per-input-byte
  lookup tables, so each permutation is a handful of table lookups and ORs
  rather than 64 bit tests;
* the S-boxes are precombined with the P permutation into "SP boxes", the
  classic optimisation from C implementations: one lookup per S-box per
  round yields an already-P-permuted 32-bit word;
* the key schedule runs once per keyed instance.

Beyond the per-block path, both ciphers implement the bulk CBC hooks
(``encrypt_cbc``/``decrypt_cbc``, see :class:`~repro.crypto.cipher.BlockCipher`)
with an *int-native* whole-message engine: the message is unpacked to
64-bit ints once, CBC chaining XORs stay integer ops, and each round does
four lookups in *key-folded pair tables* — per-round tables of 1024
entries indexed by 10-bit windows of the expanded half-block, with the
round subkey XORed in at build time so the round function is pure table
OR.  The tables cost ~14 ms per DES key to build and a few MB to hold, so
they are built lazily on the first bulk call.  When the optional OpenSSL
backend (:mod:`repro.crypto.accel`) is importable it takes precedence
over the Python engine; both produce identical bytes.

Verified against the canonical FIPS test vector
(key ``133457799BBCDFF1``, plaintext ``0123456789ABCDEF`` →
ciphertext ``85E813540F0AB405``) and additional FIPS 81 / Rivest
known-answer vectors in the test suite.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.crypto import accel as accel_mod
from repro.crypto.cipher import BlockCipher

# --- FIPS 46-3 tables (1-based bit positions, MSB = bit 1) -----------------

_IP = [
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
]

_FP = [
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
]

_E = [
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
]

_P = [
    16, 7, 20, 21,
    29, 12, 28, 17,
    1, 15, 23, 26,
    5, 18, 31, 10,
    2, 8, 24, 14,
    32, 27, 3, 9,
    19, 13, 30, 6,
    22, 11, 4, 25,
]

_PC1 = [
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
]

_PC2 = [
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
]

_SHIFTS = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]

_SBOXES = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
]


def _permute(value: int, in_bits: int, table: Sequence[int]) -> int:
    """Generic (slow) permutation; used only in the key schedule."""
    out = 0
    out_bits = len(table)
    for out_pos, in_pos in enumerate(table):
        if (value >> (in_bits - in_pos)) & 1:
            out |= 1 << (out_bits - 1 - out_pos)
    return out


def _make_byte_perm(table: Sequence[int], in_bits: int) -> List[List[int]]:
    """Precompute per-input-byte lookup tables for a permutation."""
    out_bits = len(table)
    n_bytes = in_bits // 8
    tables = [[0] * 256 for _ in range(n_bytes)]
    for out_pos, in_pos in enumerate(table):
        byte_index = (in_pos - 1) // 8
        bit_in_byte = 7 - ((in_pos - 1) % 8)
        out_mask = 1 << (out_bits - 1 - out_pos)
        for v in range(256):
            if (v >> bit_in_byte) & 1:
                tables[byte_index][v] |= out_mask
    return tables


_IP_TABLES = _make_byte_perm(_IP, 64)
_FP_TABLES = _make_byte_perm(_FP, 64)
_E_TABLES = _make_byte_perm(_E, 32)


def _make_sp_boxes() -> List[List[int]]:
    """Combine each S-box with the P permutation into a 64-entry table."""
    sp: List[List[int]] = []
    for i, sbox in enumerate(_SBOXES):
        table = [0] * 64
        for six in range(64):
            row = ((six >> 4) & 0x2) | (six & 0x1)
            col = (six >> 1) & 0xF
            s_out = sbox[row * 16 + col]
            placed = s_out << (28 - 4 * i)
            table[six] = _permute(placed, 32, _P)
        sp.append(table)
    return sp


_SP = _make_sp_boxes()


def _key_schedule(key64: int) -> List[int]:
    """Derive the 16 round subkeys (48-bit each) from a 64-bit key."""
    cd = _permute(key64, 64, _PC1)
    c = (cd >> 28) & 0xFFFFFFF
    d = cd & 0xFFFFFFF
    subkeys = []
    for shift in _SHIFTS:
        c = ((c << shift) | (c >> (28 - shift))) & 0xFFFFFFF
        d = ((d << shift) | (d >> (28 - shift))) & 0xFFFFFFF
        subkeys.append(_permute((c << 28) | d, 56, _PC2))
    return subkeys


def _apply_tables(value: int, tables: List[List[int]], in_bits: int) -> int:
    out = 0
    shift = in_bits
    for table in tables:
        shift -= 8
        out |= table[(value >> shift) & 0xFF]
    return out


def _folded_pair_tables(subkeys: Sequence[int]) -> List[List[List[int]]]:
    """Per-round SP tables with the round subkey folded in.

    Adjacent 6-bit groups of the E-expansion overlap by two bits, so two
    neighbouring S-box inputs fit in a 10-bit window of the *duplicated*
    half-block ``t = [b32, b1..b32, b1]``.  For round key ``k``, pair
    table ``i`` maps window ``w`` to ``SP[2i][(w >> 4) ^ kA] |
    SP[2i+1][(w & 63) ^ kB]`` where ``kA``/``kB`` are the subkey's 6-bit
    groups ``2i``/``2i+1`` — one lookup replaces two S-box lookups, the
    key XOR, and the E-expansion byte tables.
    """
    rounds: List[List[List[int]]] = []
    for k in subkeys:
        row: List[List[int]] = []
        for i in range(4):
            ka = (k >> (42 - 12 * i)) & 0x3F
            kb = (k >> (36 - 12 * i)) & 0x3F
            spa = _SP[2 * i]
            spb = _SP[2 * i + 1]
            row.append([spa[(w >> 4) ^ ka] | spb[(w & 63) ^ kb] for w in range(1024)])
        rounds.append(row)
    return rounds


def _des_pass(v: int, rounds: List[List[List[int]]], _ip=_IP_TABLES, _fp=_FP_TABLES) -> int:
    """One full DES application (IP → 16 folded rounds → FP) on a 64-bit int."""
    ip0, ip1, ip2, ip3, ip4, ip5, ip6, ip7 = _ip
    v = (
        ip0[v >> 56]
        | ip1[(v >> 48) & 255]
        | ip2[(v >> 40) & 255]
        | ip3[(v >> 32) & 255]
        | ip4[(v >> 24) & 255]
        | ip5[(v >> 16) & 255]
        | ip6[(v >> 8) & 255]
        | ip7[v & 255]
    )
    l = v >> 32
    r = v & 0xFFFFFFFF
    for p0, p1, p2, p3 in rounds:
        t = ((r & 1) << 33) | (r << 1) | (r >> 31)
        l ^= p0[t >> 24] | p1[(t >> 16) & 1023] | p2[(t >> 8) & 1023] | p3[t & 1023]
        l, r = r, l
    v = (r << 32) | l
    fp0, fp1, fp2, fp3, fp4, fp5, fp6, fp7 = _fp
    return (
        fp0[v >> 56]
        | fp1[(v >> 48) & 255]
        | fp2[(v >> 40) & 255]
        | fp3[(v >> 32) & 255]
        | fp4[(v >> 24) & 255]
        | fp5[(v >> 16) & 255]
        | fp6[(v >> 8) & 255]
        | fp7[v & 255]
    )


_Passes = Tuple[List[List[List[int]]], ...]


def _cbc_encrypt_int(iv: bytes, data: bytes, passes: _Passes) -> bytes:
    """CBC-encrypt padded ``data``; one DES application per entry of
    ``passes`` per block (1 for DES, 3 for EDE)."""
    n = len(data) // 8
    blocks = struct.unpack(">%dQ" % n, data)
    out = [0] * n
    prev = int.from_bytes(iv, "big")
    if len(passes) == 1:
        rounds = passes[0]
        for i, v in enumerate(blocks):
            prev = _des_pass(v ^ prev, rounds)
            out[i] = prev
    else:
        r1, r2, r3 = passes
        for i, v in enumerate(blocks):
            prev = _des_pass(_des_pass(_des_pass(v ^ prev, r1), r2), r3)
            out[i] = prev
    return struct.pack(">%dQ" % n, *out)


def _cbc_decrypt_int(iv: bytes, data: bytes, passes: _Passes) -> bytes:
    n = len(data) // 8
    blocks = struct.unpack(">%dQ" % n, data)
    out = [0] * n
    prev = int.from_bytes(iv, "big")
    if len(passes) == 1:
        rounds = passes[0]
        for i, c in enumerate(blocks):
            out[i] = _des_pass(c, rounds) ^ prev
            prev = c
    else:
        r1, r2, r3 = passes
        for i, c in enumerate(blocks):
            out[i] = _des_pass(_des_pass(_des_pass(c, r1), r2), r3) ^ prev
            prev = c
    return struct.pack(">%dQ" % n, *out)


def _crypt_block_int(block: int, subkeys: Sequence[int]) -> int:
    v = _apply_tables(block, _IP_TABLES, 64)
    left = (v >> 32) & 0xFFFFFFFF
    right = v & 0xFFFFFFFF
    e_tables = _E_TABLES
    sp = _SP
    for k in subkeys:
        expanded = _apply_tables(right, e_tables, 32) ^ k
        f_out = (
            sp[0][(expanded >> 42) & 0x3F]
            | sp[1][(expanded >> 36) & 0x3F]
            | sp[2][(expanded >> 30) & 0x3F]
            | sp[3][(expanded >> 24) & 0x3F]
            | sp[4][(expanded >> 18) & 0x3F]
            | sp[5][(expanded >> 12) & 0x3F]
            | sp[6][(expanded >> 6) & 0x3F]
            | sp[7][expanded & 0x3F]
        )
        left, right = right, left ^ f_out
    preoutput = (right << 32) | left
    return _apply_tables(preoutput, _FP_TABLES, 64)


class Des(BlockCipher):
    """Single DES over 8-byte blocks with an 8-byte key.

    ``accel=False`` pins the bulk hooks to the pure-Python int-native
    engine even when the OpenSSL backend is importable (used by the
    benchmarks and equivalence tests to exercise every path).
    """

    block_size = 8

    def __init__(self, key: bytes, accel: bool = True) -> None:
        if len(key) != 8:
            raise ValueError(f"DES key must be 8 bytes, got {len(key)}")
        key_int = int.from_bytes(key, "big")
        self._enc_keys = _key_schedule(key_int)
        self._dec_keys = list(reversed(self._enc_keys))
        self._cbc_accel = accel_mod.cbc_backend("des", key) if accel else None
        self._enc_passes: Tuple = ()
        self._dec_passes: Tuple = ()

    def encrypt_block(self, block: bytes) -> bytes:
        value = int.from_bytes(block, "big")
        return _crypt_block_int(value, self._enc_keys).to_bytes(8, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        value = int.from_bytes(block, "big")
        return _crypt_block_int(value, self._dec_keys).to_bytes(8, "big")

    def _passes(self) -> Tuple[_Passes, _Passes]:
        if not self._enc_passes:
            enc = _folded_pair_tables(self._enc_keys)
            # each round's table depends only on that round's subkey, so
            # the decrypt schedule is simply the rows in reverse
            self._enc_passes = (enc,)
            self._dec_passes = (enc[::-1],)
        return self._enc_passes, self._dec_passes

    def encrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        if self._cbc_accel is not None:
            return self._cbc_accel.encrypt_cbc(iv, data)
        enc, _ = self._passes()
        return _cbc_encrypt_int(iv, data, enc)

    def decrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        if self._cbc_accel is not None:
            return self._cbc_accel.decrypt_cbc(iv, data)
        _, dec = self._passes()
        return _cbc_decrypt_int(iv, data, dec)


class TripleDes(BlockCipher):
    """3DES in EDE mode.

    Accepts a 24-byte key (three independent DES keys), a 16-byte key
    (K1, K2, K1), or an 8-byte key (degenerates to single DES, per the
    standard keying options).
    """

    block_size = 8

    def __init__(self, key: bytes, accel: bool = True) -> None:
        if len(key) == 8:
            k1 = k2 = k3 = key
        elif len(key) == 16:
            k1, k2 = key[:8], key[8:]
            k3 = k1
        elif len(key) == 24:
            k1, k2, k3 = key[:8], key[8:16], key[16:]
        else:
            raise ValueError(f"3DES key must be 8/16/24 bytes, got {len(key)}")
        key1 = _key_schedule(int.from_bytes(k1, "big"))
        key2 = _key_schedule(int.from_bytes(k2, "big"))
        key3 = _key_schedule(int.from_bytes(k3, "big"))
        self._k1_enc, self._k2_enc, self._k3_enc = key1, key2, key3
        self._k1_dec = list(reversed(key1))
        self._k2_dec = list(reversed(key2))
        self._k3_dec = list(reversed(key3))
        self._cbc_accel = accel_mod.cbc_backend("3des", key) if accel else None
        self._enc_passes: Tuple = ()
        self._dec_passes: Tuple = ()

    def encrypt_block(self, block: bytes) -> bytes:
        value = int.from_bytes(block, "big")
        value = _crypt_block_int(value, self._k1_enc)
        value = _crypt_block_int(value, self._k2_dec)
        value = _crypt_block_int(value, self._k3_enc)
        return value.to_bytes(8, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        value = int.from_bytes(block, "big")
        value = _crypt_block_int(value, self._k3_dec)
        value = _crypt_block_int(value, self._k2_enc)
        value = _crypt_block_int(value, self._k1_dec)
        return value.to_bytes(8, "big")

    def _passes(self) -> Tuple[_Passes, _Passes]:
        if not self._enc_passes:
            t1 = _folded_pair_tables(self._k1_enc)
            t2 = _folded_pair_tables(self._k2_enc)
            t3 = _folded_pair_tables(self._k3_enc)
            # EDE: encrypt = E_k1 · D_k2 · E_k3; decrypt reverses it
            self._enc_passes = (t1, t2[::-1], t3)
            self._dec_passes = (t3[::-1], t2, t1[::-1])
        return self._enc_passes, self._dec_passes

    def encrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        if self._cbc_accel is not None:
            return self._cbc_accel.encrypt_cbc(iv, data)
        enc, _ = self._passes()
        return _cbc_encrypt_int(iv, data, enc)

    def decrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        if self._cbc_accel is not None:
            return self._cbc_accel.decrypt_cbc(iv, data)
        _, dec = self._passes()
        return _cbc_decrypt_int(iv, data, dec)
