"""StoreConfig validation, and the lazy-flush / Δtu > 0 configuration
(§4.8.2.2: "the system might also allow t to leap ahead of u")."""

import pytest

from repro.chunkstore import ChunkStore, StoreConfig, ops
from repro.chunkstore.config import derive_key, mac_key, system_cipher_key
from tests.conftest import make_config, make_platform


class TestStoreConfig:
    def test_defaults_valid(self):
        StoreConfig()

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            StoreConfig(validation_mode="hope")

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            StoreConfig(fanout=1)

    def test_bad_segment_size(self):
        with pytest.raises(ValueError):
            StoreConfig(segment_size=100)

    def test_bad_delta_ut(self):
        with pytest.raises(ValueError):
            StoreConfig(delta_ut=0)

    def test_bad_delta_tu(self):
        with pytest.raises(ValueError):
            StoreConfig(delta_tu=-1)

    def test_reopen_with_mismatched_geometry_rejected(self):
        from repro.errors import ChunkStoreError

        platform = make_platform()
        store = ChunkStore.format(platform, make_config(segment_size=16 * 1024))
        store.close()
        with pytest.raises(ChunkStoreError):
            ChunkStore.open(platform, make_config(segment_size=32 * 1024))

    def test_reopen_without_config_uses_stored(self):
        platform = make_platform()
        store = ChunkStore.format(platform, make_config(fanout=8))
        store.close()
        reopened = ChunkStore.open(platform)
        assert reopened.config.fanout == 8


class TestKeyDerivation:
    def test_deterministic(self):
        secret = bytes(range(16))
        assert derive_key(secret, "label", 24) == derive_key(secret, "label", 24)

    def test_domain_separated(self):
        secret = bytes(range(16))
        assert derive_key(secret, "a", 16) != derive_key(secret, "b", 16)

    def test_secret_separated(self):
        assert derive_key(b"A" * 16, "l", 16) != derive_key(b"B" * 16, "l", 16)

    def test_lengths(self):
        secret = bytes(16)
        assert len(system_cipher_key(secret, "3des-cbc")) == 24
        assert len(system_cipher_key(secret, "des-cbc")) == 8
        assert len(mac_key(secret)) == 32


class TestLazyFlush:
    """flush_every_commit=False: the untrusted store is flushed lazily;
    the TR counter may lead the durable log by up to Δtu commits."""

    def build(self, delta_tu=2, delta_ut=3):
        platform = make_platform()
        store = ChunkStore.format(
            platform,
            make_config(
                flush_every_commit=False, delta_tu=delta_tu, delta_ut=delta_ut
            ),
        )
        pid = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(pid, cipher_name="null", hash_name="sha1"),
                ops.WriteChunk(pid, 0, b"base"),
            ]
        )
        return platform, store, pid

    def test_fewer_flushes_than_commits(self):
        platform, store, pid = self.build()
        flushes_before = platform.untrusted.stats.flushes
        for i in range(12):
            store.commit([ops.WriteChunk(pid, 0, f"v{i}".encode())])
        assert (
            platform.untrusted.stats.flushes - flushes_before < 12
        ), "lazy mode must coalesce flushes"

    def test_crash_may_lose_recent_but_within_window(self):
        """Lazy flushing trades durability of the last few commits for
        latency — but recovery still validates within the Δtu window."""
        platform, store, pid = self.build()
        for i in range(10):
            store.commit([ops.WriteChunk(pid, 0, f"v{i}".encode())])
        platform.reboot()  # un-flushed commits vanish
        reopened = ChunkStore.open(platform)
        value = reopened.read_chunk(pid, 0)
        assert value == b"base" or value.startswith(b"v")

    def test_clean_close_loses_nothing(self):
        platform, store, pid = self.build()
        for i in range(10):
            store.commit([ops.WriteChunk(pid, 0, f"v{i}".encode())])
        store.close()  # checkpoint flushes everything
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(pid, 0) == b"v9"

    def test_rollback_beyond_window_detected(self):
        from repro.errors import TamperDetectedError

        platform, store, pid = self.build(delta_tu=1, delta_ut=1)
        store.checkpoint()
        saved = platform.untrusted.tamper_image()
        for i in range(8):
            store.commit([ops.WriteChunk(pid, 0, f"v{i}".encode())])
        store.close(checkpoint=False)
        platform.untrusted.tamper_replay(saved)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)
