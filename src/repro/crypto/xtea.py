"""XTEA block cipher (Needham & Wheeler, 1997), implemented from scratch.

Included as a concrete instance of the paper's observation that "there are
other, more secure, algorithms that run faster than DES" (§9.2.1): XTEA has
a 128-bit key and a trivially small implementation.  It operates on 8-byte
blocks, so it composes with the same CBC wrapper as DES.

The bulk CBC hooks (``encrypt_cbc``/``decrypt_cbc``) keep the whole
message as integers: blocks are unpacked once with ``struct``, chaining
XORs are int ops, and the per-round key mixes ``sum + key[...]`` — which
depend only on the key — are precomputed at construction, halving the
work in the round function.  Output is byte-identical to the per-block
path.
"""

from __future__ import annotations

import struct

from repro.crypto.cipher import BlockCipher

_DELTA = 0x9E3779B9
_MASK = 0xFFFFFFFF
_ROUNDS = 32


class Xtea(BlockCipher):
    """XTEA over 8-byte blocks with a 16-byte key."""

    block_size = 8

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"XTEA key must be 16 bytes, got {len(key)}")
        self._key = [int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4)]
        # Precompute the per-round key material for both directions.
        enc_sums = []
        total = 0
        for _ in range(_ROUNDS):
            enc_sums.append(total)
            total = (total + _DELTA) & _MASK
        self._enc_sums = enc_sums
        self._final_sum = total
        # Fully-mixed per-round addends (sum + selected key word) for the
        # bulk path; these 33-bit values are XORed before the masked add,
        # exactly as the per-block loop computes them.
        k = self._key
        self._enc_round_keys = []
        for total in enc_sums:
            total2 = (total + _DELTA) & _MASK
            self._enc_round_keys.append(
                (total + k[total & 3], total2 + k[(total2 >> 11) & 3])
            )
        self._dec_round_keys = []
        total = self._final_sum
        for _ in range(_ROUNDS):
            a = total + k[(total >> 11) & 3]
            total = (total - _DELTA) & _MASK
            self._dec_round_keys.append((a, total + k[total & 3]))

    def encrypt_block(self, block: bytes) -> bytes:
        v0 = int.from_bytes(block[:4], "big")
        v1 = int.from_bytes(block[4:], "big")
        key = self._key
        for total in self._enc_sums:
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & _MASK
            total2 = (total + _DELTA) & _MASK
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total2 + key[(total2 >> 11) & 3]))) & _MASK
        return v0.to_bytes(4, "big") + v1.to_bytes(4, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        v0 = int.from_bytes(block[:4], "big")
        v1 = int.from_bytes(block[4:], "big")
        key = self._key
        total = self._final_sum
        for _ in range(_ROUNDS):
            v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + key[(total >> 11) & 3]))) & _MASK
            total = (total - _DELTA) & _MASK
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & _MASK
        return v0.to_bytes(4, "big") + v1.to_bytes(4, "big")

    def encrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        n = len(data) // 8
        blocks = struct.unpack(">%dQ" % n, data)
        out = [0] * n
        prev = int.from_bytes(iv, "big")
        round_keys = self._enc_round_keys
        mask = _MASK
        for i, b in enumerate(blocks):
            b ^= prev
            v0 = b >> 32
            v1 = b & mask
            for ka, kb in round_keys:
                v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ ka)) & mask
                v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ kb)) & mask
            prev = (v0 << 32) | v1
            out[i] = prev
        return struct.pack(">%dQ" % n, *out)

    def decrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        n = len(data) // 8
        blocks = struct.unpack(">%dQ" % n, data)
        out = [0] * n
        prev = int.from_bytes(iv, "big")
        round_keys = self._dec_round_keys
        mask = _MASK
        for i, c in enumerate(blocks):
            v0 = c >> 32
            v1 = c & mask
            for ka, kb in round_keys:
                v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ ka)) & mask
                v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ kb)) & mask
            out[i] = ((v0 << 32) | v1) ^ prev
            prev = c
        return struct.pack(">%dQ" % n, *out)
