"""Multiple partitions (§5): crypto parameters, copies, diff,
deallocation cascade, names, reset semantics."""

import pytest

from repro.chunkstore import ChunkStore, DiffChange, ops
from repro.errors import (
    ChunkNotAllocatedError,
    ChunkStoreError,
    PartitionNotFoundError,
)
from tests.conftest import make_config, make_platform


@pytest.fixture
def env():
    platform = make_platform(size=8 * 1024 * 1024)
    store = ChunkStore.format(platform, make_config())
    return platform, store


def new_partition(store, cipher="ctr-sha256", hash_name="sha1", name=""):
    pid = store.allocate_partition()
    store.commit(
        [ops.WritePartition(pid, cipher_name=cipher, hash_name=hash_name, name=name)]
    )
    return pid


class TestPartitionLifecycle:
    def test_partitions_are_isolated(self, env):
        _, store = env
        p1 = new_partition(store)
        p2 = new_partition(store)
        store.commit([ops.WriteChunk(p1, store.allocate_chunk(p1), b"one")])
        store.commit([ops.WriteChunk(p2, store.allocate_chunk(p2), b"two")])
        assert store.read_chunk(p1, 0) == b"one"
        assert store.read_chunk(p2, 0) == b"two"

    def test_same_position_different_partitions(self, env):
        """A chunk in one partition may share its position with a chunk
        in another (§5.1)."""
        _, store = env
        p1 = new_partition(store)
        p2 = new_partition(store)
        store.commit(
            [
                ops.WriteChunk(p1, store.allocate_chunk(p1), b"p1-chunk"),
                ops.WriteChunk(p2, store.allocate_chunk(p2), b"p2-chunk"),
            ]
        )
        assert store.read_chunk(p1, 0) != store.read_chunk(p2, 0)

    def test_per_partition_crypto_parameters(self, env):
        _, store = env
        encrypted = new_partition(store, cipher="des-cbc", hash_name="sha256")
        plain = new_partition(store, cipher="null", hash_name="sha1")
        unvalidated = new_partition(store, cipher="ctr-sha256", hash_name="null")
        for pid in (encrypted, plain, unvalidated):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"data")])
            assert store.read_chunk(pid, 0) == b"data"
        info = store.partition_info(encrypted)
        assert info["cipher"] == "des-cbc"
        assert info["hash"] == "sha256"

    def test_null_cipher_partition_is_readable_by_attacker(self, env):
        """Sanity: a null-cipher partition really does store plaintext —
        secrecy is genuinely optional per partition (§2.2)."""
        platform, store = env
        pid = new_partition(store, cipher="null")
        store.commit(
            [ops.WriteChunk(pid, store.allocate_chunk(pid), b"FINDME-PLAINTEXT")]
        )
        assert b"FINDME-PLAINTEXT" in platform.untrusted.tamper_image()

    def test_encrypted_partition_hides_data(self, env):
        platform, store = env
        pid = new_partition(store, cipher="ctr-sha256")
        store.commit(
            [ops.WriteChunk(pid, store.allocate_chunk(pid), b"FINDME-SECRET")]
        )
        assert b"FINDME-SECRET" not in platform.untrusted.tamper_image()

    def test_unknown_partition_raises(self, env):
        _, store = env
        with pytest.raises((PartitionNotFoundError, ChunkNotAllocatedError)):
            store.read_chunk(99, 0)

    def test_partition_ids_listing(self, env):
        _, store = env
        p1 = new_partition(store)
        p2 = new_partition(store)
        assert set(store.partition_ids()) >= {p1, p2}

    def test_named_partition_lookup(self, env):
        _, store = env
        pid = new_partition(store, name="registry")
        assert store.find_partition("registry") == pid
        assert store.find_partition("missing") is None

    def test_write_partition_reset(self, env):
        """WritePartition on a written id resets it to empty (§5.1)."""
        _, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"old")])
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        with pytest.raises(ChunkNotAllocatedError):
            store.read_chunk(pid, 0)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"new")])
        assert store.read_chunk(pid, 0) == b"new"

    def test_partition_and_chunk_create_in_one_commit(self, env):
        """§5.1: store a new partition's id in a chunk of an existing
        partition in one atomic step."""
        _, store = env
        existing = new_partition(store)
        directory = store.allocate_chunk(existing)
        fresh = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(fresh, cipher_name="null", hash_name="sha1"),
                ops.WriteChunk(fresh, 0, b"inside new partition"),
                ops.WriteChunk(existing, directory, str(fresh).encode()),
            ]
        )
        assert int(store.read_chunk(existing, directory)) == fresh
        assert store.read_chunk(fresh, 0) == b"inside new partition"


class TestCopies:
    def test_copy_preserves_state_at_copy_time(self, env):
        _, store = env
        pid = new_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(10)]
        store.commit([ops.WriteChunk(pid, r, f"v{r}".encode()) for r in ranks])
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        store.commit([ops.WriteChunk(pid, ranks[0], b"mutated")])
        assert store.read_chunk(snap, ranks[0]) == b"v0"
        assert store.read_chunk(pid, ranks[0]) == b"mutated"

    def test_copy_is_independently_writable(self, env):
        """Copies 'can also be modified independently' (§5.3)."""
        _, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"orig")])
        copy = store.allocate_partition()
        store.commit([ops.CopyPartition(copy, pid)])
        store.commit([ops.WriteChunk(copy, 0, b"copy-side")])
        assert store.read_chunk(pid, 0) == b"orig"
        assert store.read_chunk(copy, 0) == b"copy-side"

    def test_copy_inherits_crypto_parameters(self, env):
        _, store = env
        pid = new_partition(store, cipher="des-cbc", hash_name="sha256")
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        assert store.partition_info(snap)["cipher"] == "des-cbc"

    def test_copy_tracking(self, env):
        _, store = env
        pid = new_partition(store)
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        assert snap in store.partition_info(pid)["copies"]
        assert store.partition_info(snap)["copy_of"] == pid

    def test_copy_of_copy(self, env):
        _, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        c1 = store.allocate_partition()
        store.commit([ops.CopyPartition(c1, pid)])
        c2 = store.allocate_partition()
        store.commit([ops.CopyPartition(c2, c1)])
        assert store.read_chunk(c2, 0) == b"x"

    def test_copies_survive_reopen(self, env):
        platform, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"v")])
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        store.commit([ops.WriteChunk(pid, 0, b"changed")])
        store.close()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(snap, 0) == b"v"
        assert reopened.read_chunk(pid, 0) == b"changed"


class TestDiff:
    def test_diff_classification(self, env):
        _, store = env
        pid = new_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(6)]
        store.commit([ops.WriteChunk(pid, r, b"base") for r in ranks])
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        store.commit([ops.WriteChunk(pid, ranks[1], b"changed")])
        # allocate before deallocating, else the freed rank is reused (§4.4)
        added = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, added, b"added")])
        store.commit([ops.DeallocateChunk(pid, ranks[2])])
        diff = store.diff(snap, pid)
        assert diff == {
            ranks[1]: DiffChange.CHANGED,
            ranks[2]: DiffChange.REMOVED,
            added: DiffChange.ADDED,
        }

    def test_diff_of_identical_snapshots_is_empty(self, env):
        _, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"v")])
        s1 = store.allocate_partition()
        s2 = store.allocate_partition()
        store.commit([ops.CopyPartition(s1, pid), ops.CopyPartition(s2, pid)])
        assert store.diff(s1, s2) == {}

    def test_diff_with_different_tree_heights(self, env):
        platform = make_platform(size=8 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config(fanout=4))
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"a")])
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        # grow the source well past the snapshot's tree height
        for i in range(30):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"g")])
        diff = store.diff(snap, pid)
        assert len(diff) == 30
        assert all(change == DiffChange.ADDED for change in diff.values())

    def test_diff_unchanged_rewrite_not_reported(self, env):
        """Rewriting a chunk with identical content yields an identical
        hash, so diff reports nothing (hash comparison, §5.3)."""
        _, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"same")])
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        store.commit([ops.WriteChunk(pid, 0, b"same")])
        assert store.diff(snap, pid) == {}


class TestPartitionDeallocation:
    def test_dealloc_removes_partition(self, env):
        _, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        store.commit([ops.DeallocatePartition(pid)])
        assert not store.partition_exists(pid)
        with pytest.raises((PartitionNotFoundError, ChunkStoreError)):
            store.read_chunk(pid, 0)

    def test_dealloc_cascades_to_copies(self, env):
        """Deallocating a partition deallocates all of its copies (§5.1)."""
        _, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        c1 = store.allocate_partition()
        store.commit([ops.CopyPartition(c1, pid)])
        c2 = store.allocate_partition()
        store.commit([ops.CopyPartition(c2, c1)])
        store.commit([ops.DeallocatePartition(pid)])
        for dead in (pid, c1, c2):
            assert not store.partition_exists(dead)

    def test_dealloc_copy_leaves_source(self, env):
        _, store = env
        pid = new_partition(store)
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        store.commit([ops.DeallocatePartition(snap)])
        assert store.partition_exists(pid)
        assert not store.partition_exists(snap)
        assert snap not in store.partition_info(pid)["copies"]
        assert store.read_chunk(pid, 0) == b"x"

    def test_partition_id_reused_after_dealloc(self, env):
        _, store = env
        pid = new_partition(store)
        store.commit([ops.DeallocatePartition(pid)])
        assert store.allocate_partition() == pid

    def test_dealloc_survives_reopen(self, env):
        platform, store = env
        pid = new_partition(store)
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        store.commit([ops.DeallocatePartition(pid)])
        store.close()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert not reopened.partition_exists(pid)
        assert not reopened.partition_exists(snap)
