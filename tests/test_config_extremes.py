"""Extreme configurations: minimal fanout, tiny descriptor cache, many
partitions — the design must degrade gracefully, never break."""

import pytest

from repro.chunkstore import ChunkStore, ops
from tests.conftest import make_config, make_platform


class TestTinyDescriptorCache:
    def test_reads_reclimb_the_map_under_pressure(self):
        """With a cache of 8 clean descriptors, most reads re-walk the
        map from the leader — slower but always correct (§4.5)."""
        platform = make_platform(size=8 * 1024 * 1024)
        store = ChunkStore.format(
            platform, make_config(cache_size=8, fanout=4)
        )
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        ranks = [store.allocate_chunk(pid) for _ in range(120)]
        store.commit([ops.WriteChunk(pid, r, f"v{r}".encode()) for r in ranks])
        store.checkpoint()
        # scatter reads across the whole range, defeating the tiny cache
        for rank in range(0, 120, 7):
            assert store.read_chunk(pid, rank) == f"v{rank}".encode()
        assert store.cache.misses > 0

    def test_dirty_pinning_overrides_cache_limit(self):
        """A burst of commits pins more dirty descriptors than the clean
        limit; nothing is lost (checkpoint trigger is separate)."""
        platform = make_platform(size=8 * 1024 * 1024)
        store = ChunkStore.format(
            platform,
            make_config(cache_size=4, checkpoint_dirty_threshold=10_000),
        )
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        ranks = [store.allocate_chunk(pid) for _ in range(100)]
        store.commit([ops.WriteChunk(pid, r, b"x") for r in ranks])
        assert store.cache.dirty_count() >= 100
        for rank in ranks:
            assert store.read_chunk(pid, rank) == b"x"


class TestMinimalFanout:
    def test_fanout_two_deep_tree(self):
        platform = make_platform(size=8 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config(fanout=2))
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        ranks = [store.allocate_chunk(pid) for _ in range(40)]
        store.commit([ops.WriteChunk(pid, r, f"d{r}".encode()) for r in ranks])
        store.checkpoint()
        assert store.partitions[pid].payload.tree_height >= 6  # 2^6 = 64 ≥ 40
        store.cache.clear()
        for rank in ranks:
            assert store.read_chunk(pid, rank) == f"d{rank}".encode()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert len(reopened.data_ranks(pid)) == 40


class TestManyPartitions:
    def test_forty_partitions_coexist_and_recover(self):
        platform = make_platform(size=16 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config())
        pids = []
        for i in range(40):
            pid = store.allocate_partition()
            cipher = ["null", "ctr-sha256"][i % 2]
            store.commit(
                [
                    ops.WritePartition(pid, cipher_name=cipher, hash_name="sha1"),
                    ops.WriteChunk(pid, 0, f"partition-{pid}".encode()),
                ]
            )
            pids.append(pid)
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for pid in pids:
            assert reopened.read_chunk(pid, 0) == f"partition-{pid}".encode()
        # the system partition's own map grew past one map chunk (fanout 64
        # holds 64 leaders; 40 partitions stay within — check ids listing)
        assert set(reopened.partition_ids()) == set(pids)

    def test_two_collection_stores_different_partitions(self):
        from repro.collection import CollectionStore, KeyFunctionRegistry, field_key
        from repro.objectstore import ObjectStore

        platform = make_platform(size=16 * 1024 * 1024)
        chunks = ChunkStore.format(platform, make_config(segment_size=32 * 1024))
        objects = ObjectStore(chunks)
        registry = KeyFunctionRegistry()
        registry.register("k", field_key("k"))
        pid_a = objects.create_partition(cipher_name="null", hash_name="sha1")
        pid_b = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
        store_a = CollectionStore(objects, pid_a, registry)
        store_b = CollectionStore(objects, pid_b, registry)
        with objects.transaction() as tx:
            coll_a = store_a.create_collection(tx, "same-name")
            coll_b = store_b.create_collection(tx, "same-name")
            store_a.insert(tx, coll_a, {"k": "a"})
            store_b.insert(tx, coll_b, {"k": "b"})
        with objects.transaction() as tx:
            coll_a = store_a.open_collection(tx, "same-name")
            coll_b = store_b.open_collection(tx, "same-name")
            values_a = [tx.get(r)["k"] for r in store_a.scan(tx, coll_a)]
            values_b = [tx.get(r)["k"] for r in store_b.scan(tx, coll_b)]
        assert values_a == ["a"] and values_b == ["b"]
