"""The untrusted store: bulk persistent storage anyone can read or write.

This is where the database lives (§2.1): "persistent, allows efficient
random access, and can be read and written by any program".  Two
implementations are provided — an in-memory image (fast, used by most
tests and benchmarks) and a file-backed one.

Three aspects of the simulation deserve explanation:

**Crash semantics.**  Writes are applied to the image immediately (the OS
page-cache view) but recorded in an undo journal until :meth:`flush`.  A
simulated fail-stop crash (:meth:`simulate_crash`) rolls back every
un-flushed write, modelling data that never reached the platter.  A crash
injected *during* a flush leaves a prefix of the pending writes durable —
the torn-commit case recovery must handle.

**Attacker API.**  ``tamper_read`` / ``tamper_write`` / ``tamper_image``
give tests and demos the powers of the hosting party: arbitrary read and
write access to the raw device, including whole-image save/replay (the
replay attack of §1).  Trusted code never calls these.

**I/O accounting.**  Every read, write, and flush is tallied in
:class:`IOStats`.  The benchmark harness feeds the tallies to a
:class:`~repro.platform.disk_model.DiskModel` to produce the modeled I/O
latencies that reproduce the paper's Figure 12 breakdown without needing a
2000-era disk.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.platform.crash import CrashInjector

if False:  # pragma: no cover - import cycle guard, typing only
    from repro.platform.faults import FaultInjector


@dataclass
class IOStats:
    """Tally of untrusted-store traffic since the last :meth:`reset`."""

    reads: int = 0
    bytes_read: int = 0
    writes: int = 0
    bytes_written: int = 0
    flushes: int = 0
    flushed_bytes: int = 0
    #: read_many batches issued (each counts as a single round trip, §10)
    batched_reads: int = 0
    #: total extents carried by those batches (coalescing factor =
    #: batched_extents / batched_reads)
    batched_extents: int = 0
    #: I/O faults raised by the store (injected or real)
    io_errors: int = 0
    #: operations re-issued by the retry layer after a transient fault
    retries: int = 0
    #: operations abandoned after the retry policy was exhausted
    gave_up: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.bytes_read = 0
        self.writes = 0
        self.bytes_written = 0
        self.flushes = 0
        self.flushed_bytes = 0
        self.batched_reads = 0
        self.batched_extents = 0
        self.io_errors = 0
        self.retries = 0
        self.gave_up = 0

    def snapshot(self) -> "IOStats":
        return IOStats(
            reads=self.reads,
            bytes_read=self.bytes_read,
            writes=self.writes,
            bytes_written=self.bytes_written,
            flushes=self.flushes,
            flushed_bytes=self.flushed_bytes,
            batched_reads=self.batched_reads,
            batched_extents=self.batched_extents,
            io_errors=self.io_errors,
            retries=self.retries,
            gave_up=self.gave_up,
        )

    def delta(self, earlier: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads - earlier.reads,
            bytes_read=self.bytes_read - earlier.bytes_read,
            writes=self.writes - earlier.writes,
            bytes_written=self.bytes_written - earlier.bytes_written,
            flushes=self.flushes - earlier.flushes,
            flushed_bytes=self.flushed_bytes - earlier.flushed_bytes,
            batched_reads=self.batched_reads - earlier.batched_reads,
            batched_extents=self.batched_extents - earlier.batched_extents,
            io_errors=self.io_errors - earlier.io_errors,
            retries=self.retries - earlier.retries,
            gave_up=self.gave_up - earlier.gave_up,
        )


@dataclass
class _UndoRecord:
    offset: int
    old_bytes: bytes
    new_len: int


class UntrustedStore(ABC):
    """Byte-addressed untrusted storage with flush/crash semantics.

    Thread-safety: every public operation takes an internal I/O mutex.
    Snapshot views read the device concurrently with the commit path's
    writes and flushes, and a file-backed image's seek+read / seek+write
    pairs would otherwise interleave and return bytes from the wrong
    offset.  The mutex also keeps the undo journal and :class:`IOStats`
    tallies consistent.  Individual operations are short (memory copies);
    anything slow a subclass adds to :meth:`flush` should run *outside*
    ``super().flush()`` so readers are not held up behind it.
    """

    def __init__(
        self,
        size: int,
        crash_injector: Optional[CrashInjector] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        self._size = size
        self.stats = IOStats()
        self.injector = crash_injector or CrashInjector()
        #: optional I/O fault source; ``None`` means a perfect device
        self.faults = fault_injector
        #: chronological journal of writes not yet flushed
        self._undo: List[_UndoRecord] = []
        #: serializes image access, journal updates, and stats tallies
        self._io_mutex = threading.RLock()

    # -- raw image access, provided by subclasses ---------------------------

    @abstractmethod
    def _image_read(self, offset: int, size: int) -> bytes: ...

    @abstractmethod
    def _image_write(self, offset: int, data: bytes) -> None: ...

    # -- trusted interface ---------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    def _fault_read(self, offset: int, size: int) -> None:
        """Give the fault injector a chance to fail a read (before any
        accounting, so a faulted read is a clean no-op)."""
        if self.faults is not None:
            try:
                self.faults.on_read(offset, size)
            except Exception:
                self.stats.io_errors += 1
                raise

    def read(self, offset: int, size: int) -> bytes:
        with self._io_mutex:
            self._check_range(offset, size)
            self._fault_read(offset, size)
            self.stats.reads += 1
            self.stats.bytes_read += size
            return self._image_read(offset, size)

    def read_many(self, extents: List[Tuple[int, int]]) -> List[bytes]:
        """Batched read (for the §10 "untrusted storage on servers"
        extension, where round-trips matter).

        The whole batch counts as *one* read round trip in
        :class:`IOStats` (plus a ``batched_reads`` tally), so the remote-
        store extension can measure round-trip savings against the
        one-read-per-extent baseline."""
        if not extents:
            return []
        with self._io_mutex:
            for offset, size in extents:
                self._check_range(offset, size)
                self._fault_read(offset, size)
            results = []
            total = 0
            for offset, size in extents:
                total += size
                results.append(self._image_read(offset, size))
            self.stats.reads += 1
            self.stats.batched_reads += 1
            self.stats.batched_extents += len(extents)
            self.stats.bytes_read += total
            return results

    def write(self, offset: int, data: bytes) -> None:
        with self._io_mutex:
            self._check_range(offset, len(data))
            if self.faults is not None:
                try:
                    self.faults.on_write(offset, len(data))
                except Exception:
                    self.stats.io_errors += 1
                    raise
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
            self._undo.append(
                _UndoRecord(
                    offset, self._image_read(offset, len(data)), len(data)
                )
            )
            self._image_write(offset, data)

    def flush(self) -> None:
        """Make all buffered writes durable.

        A crash injected at ``untrusted.flush.partial`` makes only a prefix
        of the pending writes durable.  An injected flush fault fires
        before any pending record becomes durable: the undo journal is
        untouched, so the caller can simply flush again.
        """
        with self._io_mutex:
            if self.faults is not None:
                try:
                    self.faults.on_flush()
                except Exception:
                    self.stats.io_errors += 1
                    raise
            self.injector.point("untrusted.flush.begin")
            self.stats.flushes += 1
            pending = self._undo
            self._undo = []
            for index, record in enumerate(pending):
                try:
                    self.injector.point("untrusted.flush.partial")
                except Exception:
                    # Everything from this record on is still volatile: put
                    # the un-flushed suffix back so simulate_crash reverts
                    # it.  (The tally below intentionally hasn't happened
                    # yet: flushed_bytes only counts records that became
                    # durable.)
                    self._undo = pending[index:]
                    raise
                self.stats.flushed_bytes += record.new_len
            self.injector.point("untrusted.flush.end")

    # -- crash simulation ----------------------------------------------------

    def simulate_crash(self) -> None:
        """Discard every write since the last flush (power failure)."""
        with self._io_mutex:
            for record in reversed(self._undo):
                self._image_write(record.offset, record.old_bytes)
            self._undo = []

    # -- attacker interface --------------------------------------------------

    def tamper_read(self, offset: int, size: int) -> bytes:
        """Attacker: read raw device bytes (no validation, no accounting)."""
        with self._io_mutex:
            return self._image_read(offset, size)

    def tamper_write(self, offset: int, data: bytes) -> None:
        """Attacker: overwrite raw device bytes."""
        with self._io_mutex:
            self._check_range(offset, len(data))
            self._image_write(offset, data)

    def tamper_image(self) -> bytes:
        """Attacker: copy the whole device (first half of a replay attack)."""
        with self._io_mutex:
            return self._image_read(0, self._size)

    def tamper_replay(self, image: bytes) -> None:
        """Attacker: restore a previously saved device image."""
        with self._io_mutex:
            if len(image) != self._size:
                raise ValueError("replay image size mismatch")
            self._image_write(0, image)
            self._undo = []

    # ------------------------------------------------------------------------

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self._size:
            raise ValueError(
                f"access [{offset}, {offset + size}) outside store of "
                f"size {self._size}"
            )


class MemoryUntrustedStore(UntrustedStore):
    """Untrusted store backed by an in-memory byte array."""

    def __init__(
        self,
        size: int,
        crash_injector: Optional[CrashInjector] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        super().__init__(size, crash_injector, fault_injector)
        self._image = bytearray(size)

    def _image_read(self, offset: int, size: int) -> bytes:
        return bytes(self._image[offset : offset + size])

    def _image_write(self, offset: int, data: bytes) -> None:
        self._image[offset : offset + len(data)] = data


class FileUntrustedStore(UntrustedStore):
    """Untrusted store backed by a file (the paper's NTFS-file setup)."""

    def __init__(
        self,
        path: str,
        size: int,
        crash_injector: Optional[CrashInjector] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        super().__init__(size, crash_injector, fault_injector)
        self._path = path
        create = not os.path.exists(path) or os.path.getsize(path) != size
        self._file = open(path, "r+b" if not create else "w+b")
        if create:
            self._file.truncate(size)

    def _image_read(self, offset: int, size: int) -> bytes:
        self._file.seek(offset)
        return self._file.read(size)

    def _image_write(self, offset: int, data: bytes) -> None:
        self._file.seek(offset)
        self._file.write(data)

    def flush(self) -> None:
        super().flush()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()
