"""Crash atomicity and recovery (§4.8): systematic crash-point sweeps in
both validation modes."""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.errors import CrashError
from tests.conftest import make_config, make_platform


def build_store(mode, platform=None, **overrides):
    platform = platform or make_platform()
    config = make_config(validation_mode=mode, **overrides)
    return platform, ChunkStore.format(platform, config)


def prepared(mode, **overrides):
    platform, store = build_store(mode, **overrides)
    pid = store.allocate_partition()
    store.commit(
        [
            ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1"),
            ops.WriteChunk(pid, 0, b"stable"),
        ]
    )
    return platform, store, pid


MODES = ["counter", "direct"]


@pytest.mark.parametrize("mode", MODES)
class TestCommitAtomicity:
    def crash_and_reopen(self, platform, store, pid, point, countdown=0):
        platform.injector.arm(point, countdown)
        with pytest.raises(CrashError):
            store.commit([ops.WriteChunk(pid, 0, b"SHOULD NOT SURVIVE")])
        platform.injector.disarm()
        platform.reboot()
        return ChunkStore.open(platform)

    def test_crash_at_commit_begin(self, mode):
        platform, store, pid = prepared(mode)
        reopened = self.crash_and_reopen(platform, store, pid, "commit.begin")
        assert reopened.read_chunk(pid, 0) == b"stable"

    def test_crash_before_flush(self, mode):
        platform, store, pid = prepared(mode)
        reopened = self.crash_and_reopen(platform, store, pid, "commit.before_flush")
        assert reopened.read_chunk(pid, 0) == b"stable"

    def test_crash_during_partial_flush(self, mode):
        platform, store, pid = prepared(mode)
        reopened = self.crash_and_reopen(
            platform, store, pid, "untrusted.flush.partial", countdown=0
        )
        assert reopened.read_chunk(pid, 0) == b"stable"

    def test_crash_between_flush_and_tr(self, mode):
        """The window between untrusted-store flush and TR update: in
        direct mode the TR write is the commit point, so the commit is
        lost; in counter mode (Δut=1 here) the commit chunk is durable so
        the commit survives."""
        platform, store, pid = prepared(mode)
        platform.injector.arm("commit.after_flush")
        with pytest.raises(CrashError):
            store.commit([ops.WriteChunk(pid, 0, b"window")])
        platform.injector.disarm()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        value = reopened.read_chunk(pid, 0)
        if mode == "direct":
            assert value == b"stable"
        else:
            assert value == b"window"

    def test_committed_data_survives_crash(self, mode):
        platform, store, pid = prepared(mode)
        store.commit([ops.WriteChunk(pid, 0, b"v2")])
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(pid, 0) == b"v2"

    def test_store_usable_after_crash_recovery(self, mode):
        platform, store, pid = prepared(mode)
        reopened = self.crash_and_reopen(platform, store, pid, "commit.before_flush")
        reopened.commit([ops.WriteChunk(pid, 0, b"after-crash")])
        platform.reboot()
        final = ChunkStore.open(platform)
        assert final.read_chunk(pid, 0) == b"after-crash"

    def test_dealloc_atomicity(self, mode):
        platform, store, pid = prepared(mode)
        platform.injector.arm("commit.before_flush")
        with pytest.raises(CrashError):
            store.commit([ops.DeallocateChunk(pid, 0)])
        platform.injector.disarm()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(pid, 0) == b"stable"

    def test_committed_dealloc_survives(self, mode):
        from repro.errors import ChunkNotAllocatedError

        platform, store, pid = prepared(mode)
        store.commit([ops.DeallocateChunk(pid, 0)])
        platform.reboot()
        reopened = ChunkStore.open(platform)
        with pytest.raises(ChunkNotAllocatedError):
            reopened.read_chunk(pid, 0)


@pytest.mark.parametrize("mode", MODES)
class TestCheckpointAtomicity:
    def test_crash_during_each_checkpoint_phase(self, mode):
        for point in (
            "checkpoint.begin",
            "checkpoint.before_flush",
            "checkpoint.after_flush",
            "checkpoint.after_tr",
        ):
            platform, store, pid = prepared(mode)
            for i in range(20):
                rank = store.allocate_chunk(pid)
                store.commit([ops.WriteChunk(pid, rank, f"d{i}".encode())])
            platform.injector.arm(point)
            with pytest.raises(CrashError):
                store.checkpoint()
            platform.injector.disarm()
            platform.reboot()
            reopened = ChunkStore.open(platform)
            assert reopened.read_chunk(pid, 0) == b"stable", point
            assert len(reopened.data_ranks(pid)) == 21, point
            # the store remains fully usable and can checkpoint again
            reopened.commit([ops.WriteChunk(pid, 0, b"post")])
            reopened.checkpoint()
            assert reopened.read_chunk(pid, 0) == b"post", point

    def test_commits_after_interrupted_checkpoint_recover(self, mode):
        platform, store, pid = prepared(mode)
        for i in range(10):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        platform.injector.arm("checkpoint.after_flush")
        with pytest.raises(CrashError):
            store.checkpoint()
        platform.injector.disarm()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        reopened.commit([ops.WriteChunk(pid, 0, b"continued")])
        platform.reboot()
        final = ChunkStore.open(platform)
        assert final.read_chunk(pid, 0) == b"continued"


class TestCounterModeWindows:
    def test_delta_ut_lag_commits_recoverable(self):
        """With Δut=5 the TR counter lags; commits in the lag window are
        still recovered (they are durable in the untrusted store)."""
        platform, store = build_store("counter", delta_ut=5)
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        for i in range(7):
            rank = store.allocate_chunk(pid)
            store.commit([ops.WriteChunk(pid, rank, f"v{i}".encode())])
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert len(reopened.data_ranks(pid)) == 7

    def test_tr_updates_amortized(self):
        platform, store = build_store("counter", delta_ut=5)
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        before = platform.counter.write_count
        for i in range(20):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        # roughly one TR write per Δut commits
        assert platform.counter.write_count - before <= 5

    def test_direct_mode_updates_tr_every_commit(self):
        platform, store = build_store("direct")
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        before = platform.tamper_resistant.write_count
        for i in range(10):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        assert platform.tamper_resistant.write_count - before == 10


class TestRepeatedCrashes:
    @pytest.mark.parametrize("mode", MODES)
    def test_crash_loop(self, mode):
        """Crash → recover → work → crash ... state never regresses."""
        platform, store, pid = prepared(mode)
        expected = b"stable"
        for round_no in range(6):
            new_value = f"round-{round_no}".encode()
            if round_no % 2 == 0:
                store.commit([ops.WriteChunk(pid, 0, new_value)])
                expected = new_value
            else:
                platform.injector.arm("commit.before_flush")
                with pytest.raises(CrashError):
                    store.commit([ops.WriteChunk(pid, 0, new_value)])
                platform.injector.disarm()
            platform.reboot()
            store = ChunkStore.open(platform)
            assert store.read_chunk(pid, 0) == expected
