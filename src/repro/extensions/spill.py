"""Steal buffer management (§10).

"Currently, modified objects must remain in the cache until their
transaction commits, which may degrade the security and performance of
large transactions.  Evicting dirty objects would require writing them to
the log."

:class:`SpillingObjectStore` lifts the no-steal limitation: when a
transaction's dirty set exceeds ``spill_threshold`` objects, the largest
buffered values are *stolen* — pickled and written (encrypted, validated)
to a per-transaction scratch partition via ordinary chunk-store commits —
leaving only small stubs in memory.  At commit, spilled values are read
back and committed to their real homes; the scratch partition is
deallocated afterwards (and likewise on abort).

Crash safety: a crash mid-transaction leaves an orphaned scratch
partition holding *uncommitted* data.  Scratch partitions carry the
well-known name prefix ``__tx_spill__``; :meth:`SpillingObjectStore.
collect_orphans` deallocates any found at startup (they are, by
construction, never referenced by committed state).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro import obs
from repro.chunkstore.ops import DeallocatePartition, WriteChunk, WritePartition
from repro.chunkstore.store import ChunkStore
from repro.errors import TDBError
from repro.objectstore.pickling import ObjectRef, pickle_value, unpickle_value
from repro.objectstore.store import ObjectStore, Transaction, _DELETED

_SPILL_PREFIX = "__tx_spill__"


class _SpilledValue:
    """Stub left in the transaction buffer for a stolen object."""

    __slots__ = ("rank",)

    def __init__(self, rank: int) -> None:
        self.rank = rank


class SpillingTransaction(Transaction):
    """A transaction that may steal dirty objects to trusted storage."""

    def __init__(self, store: "SpillingObjectStore", spill_threshold: int) -> None:
        super().__init__(store)
        self.spill_threshold = spill_threshold
        self._scratch_pid: Optional[int] = None
        self.spilled_count = 0

    # -- stealing ---------------------------------------------------------------

    def _scratch(self) -> int:
        if self._scratch_pid is None:
            chunks = self.store.chunks
            pid = chunks.allocate_partition()
            chunks.commit(
                [
                    WritePartition(
                        pid,
                        cipher_name="ctr-sha256",
                        hash_name="sha1",
                        name=f"{_SPILL_PREFIX}{self.tx_id}",
                    )
                ]
            )
            self._scratch_pid = pid
        return self._scratch_pid

    def _maybe_spill(self) -> None:
        live = [
            (ref, value)
            for ref, value in self._writes.items()
            if value is not _DELETED and not isinstance(value, _SpilledValue)
        ]
        if len(live) <= self.spill_threshold:
            return
        chunks = self.store.chunks
        scratch = self._scratch()
        excess = len(live) - self.spill_threshold
        writes: List[WriteChunk] = []
        for ref, value in live[:excess]:
            rank = chunks.allocate_chunk(scratch)
            writes.append(
                WriteChunk(scratch, rank, pickle_value(value, self.store.registry))
            )
            self._writes[ref] = _SpilledValue(rank)
            self.spilled_count += 1
        chunks.commit(writes)

    def _materialise(self, ref: ObjectRef, value: Any) -> Any:
        if isinstance(value, _SpilledValue):
            data = self.store.chunks.read_chunk(self._scratch_pid, value.rank)
            return unpickle_value(data, self.store.registry)
        return value

    # -- overridden operations ----------------------------------------------------

    def get(self, ref: ObjectRef) -> Any:
        if ref in self._writes and isinstance(self._writes[ref], _SpilledValue):
            return self._materialise(ref, self._writes[ref])
        return super().get(ref)

    def get_for_update(self, ref: ObjectRef) -> Any:
        if ref in self._writes and isinstance(self._writes[ref], _SpilledValue):
            return self._materialise(ref, self._writes[ref])
        return super().get_for_update(ref)

    def update(self, ref: ObjectRef, value: Any) -> None:
        super().update(ref, value)
        self._maybe_spill()

    def create(self, partition: int, value: Any) -> ObjectRef:
        ref = super().create(partition, value)
        self._maybe_spill()
        return ref

    # -- completion -----------------------------------------------------------------

    def commit(self) -> None:
        """Materialise every stolen value, commit normally, then drop the
        scratch partition."""
        # read every stolen value back before the real commit
        for ref, value in list(self._writes.items()):
            if isinstance(value, _SpilledValue):
                self._writes[ref] = self._materialise(ref, value)
        try:
            super().commit()
        finally:
            self._drop_scratch()

    def abort(self) -> None:
        super().abort()
        self._drop_scratch()

    def _drop_scratch(self) -> None:
        if self._scratch_pid is not None:
            try:
                self.store.chunks.commit(
                    [DeallocatePartition(self._scratch_pid)]
                )
            except TDBError as exc:
                # cleanup is best-effort; collect_orphans sweeps later —
                # but the swallow is *recorded*, never silent, and only
                # typed store errors qualify (a foreign exception is a
                # bug and propagates)
                obs.add("extensions.swallowed_errors")
                obs.emit(
                    "swallowed_error",
                    where="spill.drop_scratch",
                    error=type(exc).__name__,
                    detail=str(exc),
                )
            self._scratch_pid = None


class SpillingObjectStore(ObjectStore):
    """An object store whose transactions steal dirty objects when large.

    ``spill_threshold`` is the number of dirty objects a transaction may
    hold in trusted memory before stealing begins.
    """

    def __init__(
        self, chunk_store: ChunkStore, spill_threshold: int = 64, **kwargs
    ) -> None:
        super().__init__(chunk_store, **kwargs)
        self.spill_threshold = spill_threshold
        self.collect_orphans()

    def transaction(self) -> SpillingTransaction:
        return SpillingTransaction(self, self.spill_threshold)

    def collect_orphans(self) -> int:
        """Deallocate scratch partitions orphaned by crashes; returns the
        number collected."""
        collected = 0
        for pid in list(self.chunks.partition_ids()):
            try:
                state = self.chunks._state(pid)
            except TDBError as exc:
                # an unreadable leader (quarantined, tampered) just means
                # this partition cannot be swept now; record the skip
                obs.add("extensions.swallowed_errors")
                obs.emit(
                    "swallowed_error",
                    where="spill.collect_orphans",
                    error=type(exc).__name__,
                    partition=pid,
                )
                continue
            if state.payload.name.startswith(_SPILL_PREFIX):
                self.chunks.commit([DeallocatePartition(pid)])
                collected += 1
        return collected
