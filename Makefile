# Developer entry points for the TDB reproduction.

PYTHON ?= python

# Adversary / differential / fault harness knobs (see docs/TESTING.md):
#   make adversary MODE=counter SEED=41 CLASS=image_replay   # replay one trial
#   make adversary MODE=direct TRIALS=500                    # seeded sweep
#   make differential MODE=counter SEED=7 OPS=50             # replay one seed
#   make fault-sweep MODE=counter SEED=12                    # replay one trial
#   make fault-sweep FAULT_TRIALS=500                        # deeper sweep
#   make adversary-sweep                                     # nightly-depth run
MODE ?= counter
TRIALS ?= 250
SEEDS ?= 20
OPS ?= 50
FAULT_TRIALS ?= 150

.PHONY: install test test-fast bench bench-crypto bench-store bench-server obs-smoke report examples lint all \
	adversary adversary-sweep differential fault-sweep

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-crypto:
	PYTHONPATH=src $(PYTHON) -m repro.bench.crypto_bench --out BENCH_crypto.json

bench-store:
	PYTHONPATH=src $(PYTHON) -m repro.bench.store_bench --out BENCH_store.json

# Serving-layer benchmark: group-commit batching + MVCC snapshot reads
# vs the single-session baseline (floors: batch > 1, speedup >= 2x,
# snapshot reads complete inside an in-flight commit's flush window).
bench-server:
	PYTHONPATH=src $(PYTHON) -m repro.bench.server_bench --out BENCH_server.json

# Observability smoke: run a short traced workload and assert the shape
# of the recorded histograms, spans, and events (docs/OBSERVABILITY.md).
obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.obs.smoke

report:
	$(PYTHON) -m repro.bench.report

adversary:
ifdef SEED
	PYTHONPATH=src $(PYTHON) -m repro.testing adversary --mode $(MODE) \
		--seed $(SEED) $(if $(CLASS),--class $(CLASS))
else
	PYTHONPATH=src $(PYTHON) -m repro.testing adversary --mode $(MODE) \
		--trials $(TRIALS)
endif

differential:
ifdef SEED
	PYTHONPATH=src $(PYTHON) -m repro.testing differential --mode $(MODE) \
		--seed $(SEED) --ops $(OPS)
else
	PYTHONPATH=src $(PYTHON) -m repro.testing differential --mode $(MODE) \
		--seeds $(SEEDS) --ops $(OPS)
endif

# Seeded transient/permanent I/O fault-tolerance sweep (both validation
# modes by default; pin one with MODE and replay a trial with SEED).
fault-sweep:
ifdef SEED
	PYTHONPATH=src $(PYTHON) -m repro.testing faults --mode $(MODE) \
		--seed $(SEED) $(if $(POINT),--point $(POINT)) $(if $(RATE),--rate $(RATE))
else
	PYTHONPATH=src $(PYTHON) -m repro.testing faults --mode counter \
		--trials $(FAULT_TRIALS) --crash-sites
	PYTHONPATH=src $(PYTHON) -m repro.testing faults --mode direct \
		--trials $(FAULT_TRIALS) --crash-sites
endif

adversary-sweep:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_adversary.py \
		tests/test_differential.py -q
	PYTHONPATH=src $(PYTHON) -m repro.testing adversary --mode counter --trials 1000
	PYTHONPATH=src $(PYTHON) -m repro.testing adversary --mode direct --trials 1000
	PYTHONPATH=src $(PYTHON) -m repro.testing differential --mode counter --seeds 50
	PYTHONPATH=src $(PYTHON) -m repro.testing differential --mode direct --seeds 50
	PYTHONPATH=src $(PYTHON) -m repro.testing faults --mode counter --trials 500 --crash-sites
	PYTHONPATH=src $(PYTHON) -m repro.testing faults --mode direct --trials 500 --crash-sites

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/digital_goods.py
	$(PYTHON) examples/backup_restore.py
	$(PYTHON) examples/tamper_demo.py
	$(PYTHON) examples/trusted_paging.py

all: test bench
