"""Adversarial tamper sweep: the detect-or-correct oracle under seeded
mutation.

The quick sweep (tier 1) runs 250 trials per validation mode — 500 seeded
mutations total, round-robin across all eight attack classes — and
requires zero silent corruptions and zero non-TDB exceptions.  The
slow-marked sweep quadruples the trial count for nightly runs.

Any failure prints a ``make adversary ...`` line that replays the exact
seed.
"""

import random

import pytest

from repro.testing.adversary import (
    DETECTED,
    FOREIGN_ERROR,
    HARMLESS,
    SILENT_CORRUPTION,
    Adversary,
    build_scenario,
)

MODES = ["counter", "direct"]


@pytest.fixture(scope="module")
def adversaries():
    """One scenario build per mode, shared by every test in the module
    (trials restore from the snapshot, so sharing is safe)."""
    return {mode: Adversary(mode) for mode in MODES}


def _assert_no_failures(result):
    lines = [
        f"{r.outcome}: seed={r.seed} {r.detail}\n  repro: "
        f"{r.repro_line(result.mode)}"
        for r in result.failures
    ]
    assert not result.failures, (
        f"{len(lines)} oracle violation(s) in mode={result.mode}:\n"
        + "\n".join(lines)
    )


@pytest.mark.parametrize("mode", MODES)
def test_adversary_sweep(adversaries, mode):
    """≥250 seeded mutations per mode (500 total across the
    parametrization), every attack class exercised, oracle never
    violated."""
    result = adversaries[mode].run(250)
    _assert_no_failures(result)
    assert set(result.classes_exercised()) == set(Adversary.CLASSES)
    outcomes = result.outcomes()
    assert outcomes.get(SILENT_CORRUPTION, 0) == 0
    assert outcomes.get(FOREIGN_ERROR, 0) == 0
    # sanity: the sweep is not vacuous — plenty of mutations actually bit
    assert outcomes.get(DETECTED, 0) >= 50


@pytest.mark.parametrize("mode", MODES)
def test_image_replay_always_detected(adversaries, mode):
    """Whole-image replay of a stale-but-authentic snapshot is the §2.1
    attack; with Δut=1 and every snapshot >1 commit stale, detection is
    mandatory, not merely permitted."""
    adversary = adversaries[mode]
    for seed in range(20):
        report = adversary.run_trial(seed, attack="image_replay")
        assert report.outcome == DETECTED, (
            f"image replay went undetected: {report.detail}\n"
            f"repro: {report.repro_line(mode)}"
        )


@pytest.mark.parametrize("mode", MODES)
def test_torn_race_atomicity(adversaries, mode):
    """The flush-to-TR-update window: the raced commit may appear or
    vanish atomically, but never corrupt and never leak a non-TDB error."""
    adversary = adversaries[mode]
    for seed in range(24):
        report = adversary.run_trial(seed, attack="torn_race")
        assert report.outcome in (HARMLESS, DETECTED), (
            f"torn race violated atomicity: {report.detail}\n"
            f"repro: {report.repro_line(mode)}"
        )


def test_trials_are_reproducible(adversaries):
    """A seed names one trial: same attack, same outcome, same detail."""
    adversary = adversaries["counter"]
    for seed in (3, 17, 42):
        first = adversary.run_trial(seed)
        again = adversary.run_trial(seed)
        assert first == again


def test_trials_leave_scenario_untouched(adversaries):
    """Each trial mutates a restored copy, never the frozen snapshot."""
    adversary = adversaries["counter"]
    image_before = adversary.scenario.final.image
    adversary.run(16)
    assert adversary.scenario.final.image == image_before


def test_scenario_covers_attack_surface():
    """The frozen scenario has the structure the taxonomy needs: several
    partitions with distinct crypto, stale snapshots, known extents."""
    scenario = build_scenario("counter")
    assert len(scenario.pids) >= 3
    assert len(scenario.stale_images) >= 2
    assert len(scenario.extents) >= 10
    # cross-partition splices need extents in at least two partitions
    assert len({pid for pid, _ in scenario.extents}) >= 3
    # replay fodder must differ from the final image
    for stale in scenario.stale_images:
        assert stale != scenario.final.image


def test_repro_line_format(adversaries):
    report = adversaries["counter"].run_trial(5)
    line = report.repro_line("counter")
    assert line == f"make adversary MODE=counter SEED=5 CLASS={report.attack}"


@pytest.mark.slow
@pytest.mark.parametrize("mode", MODES)
def test_adversary_sweep_deep(adversaries, mode):
    """Nightly: 1000 trials per mode, plus per-class pinned sweeps so the
    round-robin can't starve a class of unusual seeds."""
    result = adversaries[mode].run(1000)
    _assert_no_failures(result)
    adversary = adversaries[mode]
    rng = random.Random(0xC0FFEE)
    for attack in Adversary.CLASSES:
        for _ in range(25):
            report = adversary.run_trial(rng.randrange(1 << 30), attack=attack)
            assert not report.failed, (
                f"{report.detail}\nrepro: {report.repro_line(mode)}"
            )


@pytest.mark.parametrize("mode", MODES)
def test_sweep_with_payload_cache_disabled(adversaries, mode):
    """The cache-off toggle (CI's --no-payload-cache smoke): same scenario,
    payload cache disabled, oracle still never violated."""
    base = adversaries[mode]
    uncached = Adversary(mode, scenario=base.scenario, payload_cache=False)
    assert uncached._open_config().payload_cache_bytes == 0
    assert base._open_config().payload_cache_bytes > 0
    result = uncached.run(24)
    _assert_no_failures(result)
    outcomes = result.outcomes()
    assert outcomes.get(SILENT_CORRUPTION, 0) == 0
    assert outcomes.get(FOREIGN_ERROR, 0) == 0
