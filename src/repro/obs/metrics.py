"""Metrics registry: named counters plus log-scale latency histograms.

The registry unifies the counters scattered across the stack
(``ChunkStore.stats()``, ``IOStats``, lock tallies) under one namespace
and adds what raw counters cannot express: latency *distributions*.
Histograms use power-of-two microsecond buckets — ``record()`` is one
``bit_length()`` call and a list increment, cheap enough to leave on —
and report p50/p95/p99 as the upper bound of the bucket containing that
rank, the standard trade of resolution (±2×) for constant-time capture.

Everything here is process-global and thread-tolerant under the GIL:
increments are plain ``int`` adds and list-index bumps, so contention can
at worst drop a count, never corrupt a structure.  The facade's
``suspend()`` turns recording into a no-op for overhead baselines.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: histogram buckets: bucket ``b`` holds samples in [2^(b-1), 2^b) µs;
#: 48 buckets covers ~8.9 years, comfortably everything
BUCKETS = 48


class Counter:
    """A named monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class LatencyHistogram:
    """Log₂-scale latency histogram over microseconds.

    ``record(seconds)`` buckets by ``int(µs).bit_length()`` — sub-µs
    samples land in bucket 0.  Percentiles return the bucket's upper
    bound in seconds (an overestimate by at most 2×), clamped to the
    observed maximum: still an upper bound on the true quantile (any
    sample ≤ max, and any bucket at or below the max's own bucket has
    its upper bound ≥ the samples it holds), but never the absurd
    "p50 > max" that a raw bucket bound produces when every sample sits
    just past a power of two.  The bias stays right for a floor check:
    reported p99 ≥ true p99.
    """

    __slots__ = ("name", "buckets", "count", "total", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: List[int] = [0] * BUCKETS
        self.count = 0
        self.total = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        bucket = int(seconds * 1e6).bit_length()
        if bucket >= BUCKETS:  # pragma: no cover - ~9 years
            bucket = BUCKETS - 1
        self.buckets[bucket] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, p: float) -> float:
        """Upper bound (seconds) of the bucket holding the p-quantile,
        clamped to the observed max (see the class docstring)."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(p * self.count + 0.999999))
        seen = 0
        for bucket, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                return min((1 << bucket) / 1e6, self.max_seconds)
        return self.max_seconds  # pragma: no cover - unreachable

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": round(self.mean, 9),
            "p50_s": self.percentile(0.50),
            "p95_s": self.percentile(0.95),
            "p99_s": self.percentile(0.99),
            "max_s": round(self.max_seconds, 9),
        }


class MetricsRegistry:
    """Thread-safe name → Counter/LatencyHistogram registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            with self._lock:
                hist = self._histograms.setdefault(name, LatencyHistogram(name))
        return hist

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            items = sorted(self._histograms.items())
        return {name: h.snapshot() for name, h in items}

    def snapshot(self) -> Dict[str, object]:
        return {"counters": self.counters(), "histograms": self.histograms()}

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


# -- module-level singleton ---------------------------------------------------

_registry = MetricsRegistry()
_suspended = False


def registry() -> MetricsRegistry:
    return _registry


def add(name: str, n: int = 1) -> None:
    """Bump the named counter (no-op while suspended)."""
    if _suspended:
        return
    _registry.counter(name).add(n)


def observe(name: str, seconds: float) -> None:
    """Record one latency sample into the named histogram."""
    if _suspended:
        return
    _registry.histogram(name).record(seconds)


@contextmanager
def time_block(name: str) -> Iterator[None]:
    """Time the body and ``observe`` it under ``name``."""
    if _suspended:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _registry.histogram(name).record(time.perf_counter() - start)


def counter_value(name: str) -> int:
    counter = _registry._counters.get(name)
    return counter.value if counter is not None else 0


def histogram_for(name: str) -> Optional[LatencyHistogram]:
    return _registry._histograms.get(name)


def snapshot() -> Dict[str, object]:
    return _registry.snapshot()


def reset() -> None:
    _registry.clear()
