"""Benchmark support: module profiler, workload generator, regression fit."""

from repro.bench.profiler import Profiler, profiled

__all__ = ["Profiler", "profiled"]
