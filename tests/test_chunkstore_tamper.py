"""Threat-model tests (§1.1, §4.8.2): every attack the paper's design
must detect, exercised against the real implementation through the
untrusted store's attacker API."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunkstore import ChunkStore, ops
from repro.chunkstore.ids import data_id
from repro.errors import TamperDetectedError
from tests.conftest import make_config, make_platform

MODES = ["counter", "direct"]


def prepared(mode, chunks=20, **overrides):
    platform = make_platform()
    store = ChunkStore.format(platform, make_config(validation_mode=mode, **overrides))
    pid = store.allocate_partition()
    store.commit(
        [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
    )
    for i in range(chunks):
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, f"secret-{i}".encode() * 3)])
    return platform, store, pid


@pytest.mark.parametrize("mode", MODES)
class TestDataTampering:
    def test_bit_flip_in_current_chunk_detected_on_read(self, mode):
        platform, store, pid = prepared(mode)
        descriptor = store._get_descriptor(data_id(pid, 7))
        offset = descriptor.location + descriptor.length // 2
        byte = platform.untrusted.tamper_read(offset, 1)
        platform.untrusted.tamper_write(offset, bytes([byte[0] ^ 0x01]))
        with pytest.raises(TamperDetectedError):
            store.read_chunk(pid, 7)

    def test_header_tamper_detected(self, mode):
        platform, store, pid = prepared(mode)
        descriptor = store._get_descriptor(data_id(pid, 3))
        byte = platform.untrusted.tamper_read(descriptor.location, 1)
        platform.untrusted.tamper_write(
            descriptor.location, bytes([byte[0] ^ 0x80])
        )
        with pytest.raises(TamperDetectedError):
            store.read_chunk(pid, 3)

    def test_swapping_chunk_versions_detected(self, mode):
        """Swap the stored bytes of two chunks: both reads must fail (the
        descriptor hash binds identity, not just content)."""
        platform, store, pid = prepared(mode)
        d1 = store._get_descriptor(data_id(pid, 1))
        d2 = store._get_descriptor(data_id(pid, 2))
        v1 = platform.untrusted.tamper_read(d1.location, d1.length)
        v2 = platform.untrusted.tamper_read(d2.location, d2.length)
        if d1.length == d2.length:
            platform.untrusted.tamper_write(d1.location, v2)
            platform.untrusted.tamper_write(d2.location, v1)
            with pytest.raises(TamperDetectedError):
                store.read_chunk(pid, 1)
            with pytest.raises(TamperDetectedError):
                store.read_chunk(pid, 2)

    def test_secrecy_ciphertext_does_not_leak_plaintext(self, mode):
        platform, store, pid = prepared(mode)
        image = platform.untrusted.tamper_image()
        assert b"secret-" not in image


@pytest.mark.parametrize("mode", MODES)
class TestReplayAttacks:
    def test_whole_image_replay_detected(self, mode):
        """§1: save the database, make purchases, replay the old state."""
        platform, store, pid = prepared(mode)
        saved = platform.untrusted.tamper_image()
        for i in range(8):
            store.commit([ops.WriteChunk(pid, 0, f"purchase-{i}".encode())])
        store.close()
        platform.untrusted.tamper_replay(saved)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)

    def test_replay_within_delta_ut_window_is_tolerated(self, mode):
        """Counter mode with Δut=5: rolling back *fewer* commits than the
        lag window is the documented, accepted risk (§4.8.2.2).  Direct
        mode detects any rollback."""
        if mode == "direct":
            pytest.skip("direct mode has no tolerance window")
        platform = make_platform()
        store = ChunkStore.format(
            platform, make_config(validation_mode="counter", delta_ut=5)
        )
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="null", hash_name="sha1")]
        )
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"base")])
        store.checkpoint()
        saved = platform.untrusted.tamper_image()
        saved_tr = platform.counter.read()
        # fewer than Δut commits past the last TR flush
        store.commit([ops.WriteChunk(pid, 0, b"withinwindow")])
        if platform.counter.read() == saved_tr:
            platform.untrusted.tamper_replay(saved)
            reopened = ChunkStore.open(platform)  # accepted: inside the window
            assert reopened.read_chunk(pid, 0) == b"base"

    def test_any_rollback_detected_in_direct_mode(self, mode):
        if mode == "counter":
            pytest.skip("covered by window test")
        platform, store, pid = prepared(mode, chunks=2)
        saved = platform.untrusted.tamper_image()
        store.commit([ops.WriteChunk(pid, 0, b"one more")])
        store.close(checkpoint=False)
        platform.untrusted.tamper_replay(saved)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)


class TestLogAttacks:
    def test_deleting_log_tail_beyond_window_detected(self):
        platform = make_platform()
        store = ChunkStore.format(
            platform, make_config(validation_mode="counter", delta_ut=1)
        )
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        store.checkpoint()
        saved = platform.untrusted.tamper_image()
        for i in range(10):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"x")])
        store.close(checkpoint=False)
        # restore the pre-commit image: equivalent to deleting 10 commit
        # sets from the log tail
        platform.untrusted.tamper_replay(saved)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)

    def test_suppressing_deallocation_detected(self):
        """Un-deallocating a chunk by reverting the log region holding the
        deallocate record (§4.8.1)."""
        platform = make_platform()
        store = ChunkStore.format(
            platform, make_config(validation_mode="counter", delta_ut=1)
        )
        pid = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(pid, cipher_name="null", hash_name="sha1"),
                ops.WriteChunk(pid, 0, b"licence"),
            ]
        )
        store.checkpoint()
        before_dealloc = platform.untrusted.tamper_image()
        store.commit([ops.DeallocateChunk(pid, 0)])
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"later")])
        store.close(checkpoint=False)
        platform.untrusted.tamper_replay(before_dealloc)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)

    def test_superblock_corruption_detected(self):
        platform, store, pid = prepared("counter")
        store.close()
        head = platform.untrusted.tamper_read(8, 1)
        platform.untrusted.tamper_write(8, bytes([head[0] ^ 0xFF]))
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)

    def test_leader_location_redirect_detected(self):
        """§4.9.2: point the stored leader location at another chunk; the
        recovery procedure checks the chunk at that location is the
        leader."""
        platform, store, pid = prepared("counter")
        descriptor = store._get_descriptor(data_id(pid, 0))
        store.close()
        # rewrite the superblock to point at a data chunk
        from repro.chunkstore.store import ChunkStore as CS

        store2 = CS.__new__(CS)  # forge a superblock with a bad leader loc
        # simpler: patch the varint region is fragile; instead corrupt via
        # a fresh superblock written through the real code path
        store._leader_location = descriptor.location
        store._write_superblock()
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)

    def test_residual_log_corruption_detected(self):
        """Corrupt a committed-but-not-checkpointed region (the residual
        log): recovery must not silently accept it beyond the window."""
        platform = make_platform()
        store = ChunkStore.format(
            platform, make_config(validation_mode="direct")
        )
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        location = store.segman.tail_location
        for i in range(5):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"data")])
        store.close(checkpoint=False)
        byte = platform.untrusted.tamper_read(location + 4, 1)
        platform.untrusted.tamper_write(location + 4, bytes([byte[0] ^ 1]))
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)


class TestTamperFuzz:
    @given(offset_fraction=st.floats(0.0, 0.999), bit=st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_random_bit_flip_never_corrupts_silently(self, offset_fraction, bit):
        """Flip one random bit anywhere in the store image.  Outcome must
        be: (a) detected on open/read, or (b) harmless — data reads back
        exactly as written.  Silent corruption is the only forbidden
        outcome."""
        platform = make_platform(size=512 * 1024)
        store = ChunkStore.format(
            platform, make_config(validation_mode="counter", delta_ut=1)
        )
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        expected = {}
        for i in range(10):
            rank = store.allocate_chunk(pid)
            expected[rank] = f"value-{i}".encode()
            store.commit([ops.WriteChunk(pid, rank, expected[rank])])
        store.checkpoint()
        store.close(checkpoint=False)

        offset = int(offset_fraction * platform.untrusted.size)
        byte = platform.untrusted.tamper_read(offset, 1)
        platform.untrusted.tamper_write(offset, bytes([byte[0] ^ (1 << bit)]))

        from repro.errors import ChunkStoreError

        try:
            reopened = ChunkStore.open(platform)
        except (TamperDetectedError, ChunkStoreError):
            return  # detected at recovery (or superblock refused): fine
        for rank, value in expected.items():
            try:
                assert reopened.read_chunk(pid, rank) == value
            except TamperDetectedError:
                pass  # detected at read: fine
