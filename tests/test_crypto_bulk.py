"""Bulk CBC/CTR fast paths must be byte-identical to the generic loops.

The chunk store's on-disk format must not depend on which implementation
encrypted a version: same key + same IV ⇒ same bytes, whether the message
went through the OpenSSL backend, the int-native Python bulk hooks, or the
per-block fallback.  These tests pin the IV (both ``repro.crypto.cipher``
and ``repro.crypto.modes`` import ``random_iv`` by name) and compare all
paths pairwise, plus decrypt across paths, plus published known-answer
vectors for DES and 3DES.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.crypto.cipher as cipher_mod
import repro.crypto.modes as modes_mod
from repro.crypto import accel
from repro.crypto.des import Des, TripleDes
from repro.crypto.modes import CbcCipher, CtrStreamCipher
from repro.crypto.xtea import Xtea

# the fixed_iv fixture is deterministic and idempotent, so reusing it
# across hypothesis examples is safe
_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture
def fixed_iv(monkeypatch):
    """Make IV/nonce generation deterministic so ciphertexts compare."""

    def deterministic_iv(size: int) -> bytes:
        return bytes(range(1, size + 1))

    monkeypatch.setattr(cipher_mod, "random_iv", deterministic_iv)
    monkeypatch.setattr(modes_mod, "random_iv", deterministic_iv)


def _block_cipher(kind: str, key: bytes, use_accel: bool):
    if kind == "des":
        return Des(key, accel=use_accel)
    if kind == "3des":
        return TripleDes(key, accel=use_accel)
    return Xtea(key)


_CASES = [
    ("des", 8),
    ("3des", 16),
    ("3des", 24),
    ("xtea", 16),
]


class TestCbcEquivalence:
    @pytest.mark.parametrize("kind,key_len", _CASES)
    @_SETTINGS
    @given(data=st.data())
    def test_bulk_matches_fallback(self, fixed_iv, kind, key_len, data):
        key = data.draw(st.binary(min_size=key_len, max_size=key_len))
        plaintext = data.draw(st.binary(min_size=0, max_size=200))
        bc = _block_cipher(kind, key, use_accel=False)
        bulk = CbcCipher(bc, kind, bulk=True)
        fallback = CbcCipher(bc, kind, bulk=False)
        ct_bulk = bulk.encrypt(plaintext)
        assert ct_bulk == fallback.encrypt(plaintext)
        # decrypt across paths: either implementation reads the other's output
        assert bulk.decrypt(ct_bulk) == plaintext
        assert fallback.decrypt(ct_bulk) == plaintext

    @pytest.mark.parametrize("kind,key_len", [("des", 8), ("3des", 16), ("3des", 24)])
    @pytest.mark.skipif(not accel.available(), reason=str(accel.unavailable_reason()))
    @_SETTINGS
    @given(data=st.data())
    def test_accel_matches_python(self, fixed_iv, kind, key_len, data):
        key = data.draw(st.binary(min_size=key_len, max_size=key_len))
        plaintext = data.draw(st.binary(min_size=0, max_size=200))
        fast = CbcCipher(_block_cipher(kind, key, use_accel=True), kind)
        python = CbcCipher(_block_cipher(kind, key, use_accel=False), kind)
        ct = fast.encrypt(plaintext)
        assert ct == python.encrypt(plaintext)
        assert python.decrypt(ct) == plaintext
        assert fast.decrypt(ct) == plaintext

    @pytest.mark.parametrize("kind,key_len", _CASES)
    @pytest.mark.parametrize("size", [0, 8, 16, 64, 8 * 37])
    def test_empty_and_exact_block_multiples(self, fixed_iv, kind, key_len, size):
        """PKCS#7 always adds a full pad block at exact multiples; the bulk
        path must agree on those boundary layouts."""
        key = bytes(range(17, 17 + key_len))
        bc = _block_cipher(kind, key, use_accel=False)
        plaintext = bytes(i & 0xFF for i in range(size))
        ct_bulk = CbcCipher(bc, kind, bulk=True).encrypt(plaintext)
        ct_fb = CbcCipher(bc, kind, bulk=False).encrypt(plaintext)
        assert ct_bulk == ct_fb
        assert len(ct_bulk) == 8 + size + (8 - size % 8)

    def test_counters_distinguish_paths(self, fixed_iv):
        bc = Des(bytes(8), accel=False)
        bulk = CbcCipher(bc, "des-cbc", bulk=True)
        fallback = CbcCipher(bc, "des-cbc", bulk=False)
        bulk.encrypt(b"payload")
        fallback.encrypt(b"payload")
        assert bulk.counters.bulk_calls == 1 and bulk.counters.fallback_calls == 0
        assert fallback.counters.fallback_calls == 1 and fallback.counters.bulk_calls == 0
        assert bulk.counters.bytes_encrypted == len(b"payload")


class TestCtrEquivalence:
    @_SETTINGS
    @given(
        key=st.binary(min_size=16, max_size=16),
        plaintext=st.binary(min_size=0, max_size=300),
    )
    def test_bulk_matches_fallback(self, fixed_iv, key, plaintext):
        ct_bulk = CtrStreamCipher(key, bulk=True).encrypt(plaintext)
        ct_fb = CtrStreamCipher(key, bulk=False).encrypt(plaintext)
        assert ct_bulk == ct_fb
        assert CtrStreamCipher(key, bulk=False).decrypt(ct_bulk) == plaintext
        assert CtrStreamCipher(key, bulk=True).decrypt(ct_fb) == plaintext

    @pytest.mark.parametrize("size", [0, 1, 31, 32, 33, 64, 1000])
    def test_keystream_block_boundaries(self, fixed_iv, size):
        key = bytes(range(16))
        plaintext = b"\xa5" * size
        assert (
            CtrStreamCipher(key, bulk=True).encrypt(plaintext)
            == CtrStreamCipher(key, bulk=False).encrypt(plaintext)
        )


# NIST/FIPS single-block DES vectors (ECB: one block, no chaining), from
# the variable-key / substitution-table tests; verified against OpenSSL.
_DES_KATS = [
    ("8000000000000000", "0000000000000000", "95a8d72813daa94d"),
    ("0000000000000000", "8000000000000000", "95f8a5e5dd31d900"),
    ("0123456789abcdef", "1111111111111111", "17668dfc7292532d"),
    ("1111111111111111", "0123456789abcdef", "8a5ae1f81ab8f2dd"),
    ("133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"),
    ("0101010101010101", "0101010101010101", "994d4dc157b96c52"),
    ("7ca110454a1a6e57", "01a1d6d039776742", "690f5b0d9a26939b"),
    ("0131d9619dc1376e", "5cd54ca83def57da", "7a389d10354bd271"),
    ("07a1133e4a0b2686", "0248d43806f67172", "868ebb51cab4599a"),
]


class TestKnownAnswers:
    @pytest.mark.parametrize("key_hex,pt_hex,ct_hex", _DES_KATS)
    def test_des_single_block(self, key_hex, pt_hex, ct_hex):
        des = Des(bytes.fromhex(key_hex))
        assert des.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex
        assert des.decrypt_block(bytes.fromhex(ct_hex)).hex() == pt_hex

    def test_3des_three_key_ecb(self):
        key = bytes.fromhex(
            "0123456789abcdef23456789abcdef01456789abcdef0123"
        )
        tdes = TripleDes(key)
        plaintext = b"The quick brown fox jump"
        expected = "1ccf23869d09333ecce21c8112256fe668d5c05dd9b6b900"
        ct = b"".join(
            tdes.encrypt_block(plaintext[i : i + 8]) for i in range(0, 24, 8)
        )
        assert ct.hex() == expected
        assert (
            b"".join(tdes.decrypt_block(ct[i : i + 8]) for i in range(0, 24, 8))
            == plaintext
        )

    def test_3des_two_key_ecb(self):
        key = bytes.fromhex("0123456789abcdef23456789abcdef01")
        tdes = TripleDes(key)
        plaintext = b"TDB 2-key 3DES K"
        expected = "1f7922009770029c6bb46155352f1395"
        ct = b"".join(
            tdes.encrypt_block(plaintext[i : i + 8]) for i in range(0, 16, 8)
        )
        assert ct.hex() == expected
