"""Lightweight perf counters for the crypto layer.

Every :class:`~repro.crypto.cipher.Cipher` and
:class:`~repro.crypto.hashing.HashFunction` instance carries one of these
tally objects; the hot paths bump plain integer attributes (no locks, no
dict lookups), and :meth:`ChunkStore.stats` aggregates them per
cipher/hash *name* so operators can see where crypto bytes go.

The byte counts are payload bytes: plaintext in, plaintext out.  IVs,
nonces, and padding are excluded so the numbers line up with the
application data that crossed the layer.
"""

from __future__ import annotations

from typing import Dict


class CipherCounters:
    """Byte/call tallies for one cipher instance."""

    __slots__ = (
        "bytes_encrypted",
        "bytes_decrypted",
        "encrypt_calls",
        "decrypt_calls",
        "bulk_calls",
        "fallback_calls",
    )

    def __init__(self) -> None:
        self.bytes_encrypted = 0
        self.bytes_decrypted = 0
        self.encrypt_calls = 0
        self.decrypt_calls = 0
        #: calls served by a bulk fast path (CBC hook / big-int XOR)
        self.bulk_calls = 0
        #: calls served by the generic per-block/per-byte loop
        self.fallback_calls = 0

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}

    def add_into(self, agg: Dict[str, int]) -> None:
        """Accumulate this instance's tallies into ``agg`` (for merging
        several same-named cipher instances)."""
        for field in self.__slots__:
            agg[field] = agg.get(field, 0) + getattr(self, field)


class HashCounters:
    """Byte/digest tallies for one hash-function instance."""

    __slots__ = ("bytes_hashed", "digests")

    def __init__(self) -> None:
        self.bytes_hashed = 0
        self.digests = 0

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}

    def add_into(self, agg: Dict[str, int]) -> None:
        for field in self.__slots__:
            agg[field] = agg.get(field, 0) + getattr(self, field)
