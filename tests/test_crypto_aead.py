"""AEAD tier: RFC known-answer tests, tamper rejection, typed refusal.

The known answers pin the adapter to the published algorithms — a
registry wiring mistake (wrong primitive, swapped key, truncated tag)
cannot survive them:

* ChaCha20-Poly1305: RFC 7539 §2.8.2 (the "sunscreen" vector);
* AES-256-GCM: McGrew & Viega, "The Galois/Counter Mode of Operation",
  test case 16 (the RFC 5116-registered AEAD_AES_256_GCM algorithm).
"""

import pytest

from repro.crypto import aead
from repro.crypto.aead import AeadCipher
from repro.crypto.registry import (
    AEAD_CIPHER_NAMES,
    KEY_SIZES,
    cipher_available,
    make_cipher,
)
from repro.errors import CryptoUnavailableError

requires_backend = pytest.mark.skipif(
    not aead.available(),
    reason=f"AEAD backend unavailable: {aead.unavailable_reason()}",
)

# -- RFC 7539 §2.8.2 ----------------------------------------------------------

CHACHA_KEY = bytes(range(0x80, 0xA0))
CHACHA_NONCE = bytes.fromhex("070000004041424344454647")
CHACHA_AAD = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
CHACHA_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)
CHACHA_SEALED = bytes.fromhex(  # ciphertext ‖ tag
    "d31a8d34648e60db7b86afbc53ef7ec2"
    "a4aded51296e08fea9e2b5a736ee62d6"
    "3dbea45e8ca9671282fafb69da92728b"
    "1a71de0a9e060b2905d6a5b67ecd3b36"
    "92ddbd7f2d778b8c9803aee328091b58"
    "fab324e4fad675945585808b4831d7bc"
    "3ff4def08e4b7a9de576d26586cec64b"
    "6116"
    "1ae10b594f09e26a7e902ecbd0600691"
)

# -- McGrew & Viega test case 16 (AEAD_AES_256_GCM) ---------------------------

GCM_KEY = bytes.fromhex(
    "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308"
)
GCM_NONCE = bytes.fromhex("cafebabefacedbaddecaf888")
GCM_PLAINTEXT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a"
    "86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525"
    "b16aedf5aa0de657ba637b39"
)
GCM_AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
GCM_SEALED = bytes.fromhex(  # ciphertext ‖ tag
    "522dc1f099567d07f47f37a32a84427d"
    "643a8cdcbfe5c0c97598a2bd2555d1aa"
    "8cb08e48590dbb3da7b08b1056828838"
    "c5f61e6393ba7a0abcc9f662"
    "76fc6ece0f4e1768cddf8853bb2d551b"
)

VECTORS = [
    ("chacha20-poly1305", CHACHA_KEY, CHACHA_NONCE, CHACHA_AAD,
     CHACHA_PLAINTEXT, CHACHA_SEALED),
    ("aes-256-gcm", GCM_KEY, GCM_NONCE, GCM_AAD, GCM_PLAINTEXT, GCM_SEALED),
]


def wire_format(nonce: bytes, sealed: bytes) -> bytes:
    """The adapter's ciphertext layout: nonce ‖ ct ‖ tag."""
    return nonce + sealed


@requires_backend
class TestKnownAnswers:
    @pytest.mark.parametrize("name,key,nonce,aad,plaintext,sealed", VECTORS)
    def test_decrypt_known_answer(self, name, key, nonce, aad, plaintext, sealed):
        cipher = make_cipher(name, key)
        assert cipher.decrypt(wire_format(nonce, sealed), aad=aad) == plaintext

    @pytest.mark.parametrize("name,key,nonce,aad,plaintext,sealed", VECTORS)
    def test_encrypt_known_answer(
        self, name, key, nonce, aad, plaintext, sealed, monkeypatch
    ):
        # pin the otherwise-random nonce so encrypt is deterministic
        monkeypatch.setattr(aead, "random_iv", lambda size: nonce[:size])
        cipher = make_cipher(name, key)
        assert cipher.encrypt(plaintext, aad=aad) == wire_format(nonce, sealed)

    @pytest.mark.parametrize("name,key,nonce,aad,plaintext,sealed", VECTORS)
    def test_tag_of_matches_vector(self, name, key, nonce, aad, plaintext, sealed):
        assert AeadCipher.tag_of(wire_format(nonce, sealed)) == sealed[-16:]


@requires_backend
class TestTamperRejection:
    @pytest.mark.parametrize("name,key,nonce,aad,plaintext,sealed", VECTORS)
    def test_every_byte_position_is_authenticated(
        self, name, key, nonce, aad, plaintext, sealed
    ):
        """Flipping any single byte — nonce, ciphertext, or tag — must be
        rejected; AEAD leaves no unauthenticated region in the layout."""
        cipher = make_cipher(name, key)
        wire = wire_format(nonce, sealed)
        for pos in range(len(wire)):
            tampered = bytearray(wire)
            tampered[pos] ^= 0x01
            with pytest.raises(ValueError, match="tag mismatch"):
                cipher.decrypt(bytes(tampered), aad=aad)

    @pytest.mark.parametrize("name,key,nonce,aad,plaintext,sealed", VECTORS)
    def test_aad_is_authenticated(self, name, key, nonce, aad, plaintext, sealed):
        cipher = make_cipher(name, key)
        wire = wire_format(nonce, sealed)
        for bad_aad in (b"", aad[:-1], aad + b"\x00", bytes(len(aad))):
            with pytest.raises(ValueError, match="tag mismatch"):
                cipher.decrypt(wire, aad=bad_aad)

    @pytest.mark.parametrize("name,key,nonce,aad,plaintext,sealed", VECTORS)
    def test_truncation_rejected(self, name, key, nonce, aad, plaintext, sealed):
        """Any truncation is rejected; cutting into the nonce+tag minimum
        is refused before the backend is even consulted."""
        cipher = make_cipher(name, key)
        wire = wire_format(nonce, sealed)
        for cut in (1, 16, len(plaintext), len(plaintext) + 16):
            with pytest.raises(ValueError):
                cipher.decrypt(wire[: len(wire) - cut], aad=aad)

    @pytest.mark.parametrize("name", AEAD_CIPHER_NAMES)
    def test_wrong_key_rejected(self, name):
        a = make_cipher(name, bytes([0x11]) * KEY_SIZES[name])
        b = make_cipher(name, bytes([0x22]) * KEY_SIZES[name])
        wire = a.encrypt(b"secret chunk body", aad=b"header")
        with pytest.raises(ValueError, match="tag mismatch"):
            b.decrypt(wire, aad=b"header")


@requires_backend
class TestAdapterContract:
    @pytest.mark.parametrize("name", AEAD_CIPHER_NAMES)
    def test_roundtrip_with_aad(self, name):
        cipher = make_cipher(name, bytes(KEY_SIZES[name]))
        for size in (0, 1, 15, 16, 17, 1000):
            plaintext = bytes(range(256)) * 4
            plaintext = plaintext[:size]
            wire = cipher.encrypt(plaintext, aad=b"bound header")
            assert cipher.decrypt(wire, aad=b"bound header") == plaintext
            assert len(wire) == cipher.ciphertext_size(size)

    @pytest.mark.parametrize("name", AEAD_CIPHER_NAMES)
    def test_authenticates_capability(self, name):
        cipher = make_cipher(name, bytes(KEY_SIZES[name]))
        assert cipher.authenticates is True
        assert cipher.ciphertext_size(100) == 12 + 100 + 16

    @pytest.mark.parametrize("name", AEAD_CIPHER_NAMES)
    def test_memoryview_decrypt(self, name):
        """The zero-copy read path hands AEAD ciphers memoryview spans."""
        cipher = make_cipher(name, bytes(KEY_SIZES[name]))
        wire = cipher.encrypt(b"span body", aad=b"hdr")
        padded = b"\xaa" * 7 + wire + b"\xbb" * 9
        span = memoryview(padded)[7 : 7 + len(wire)]
        assert cipher.decrypt(span, aad=b"hdr") == b"span body"

    @pytest.mark.parametrize("name", AEAD_CIPHER_NAMES)
    def test_wrong_key_size_rejected(self, name):
        with pytest.raises(ValueError, match="32-byte key"):
            make_cipher(name, b"short")


class TestTypedRefusal:
    """Backend missing ⇒ CryptoUnavailableError — never a silent downgrade.

    These run on *both* CI legs: on the fallback leg
    (``REPRO_NO_CRYPTO_ACCEL=1``) the backend is genuinely absent; on the
    accelerated leg its loss is simulated by monkeypatching.
    """

    @pytest.mark.parametrize("name", AEAD_CIPHER_NAMES)
    def test_factories_refuse_without_backend(self, name, monkeypatch):
        monkeypatch.setattr(aead, "_AesGcm", None)
        monkeypatch.setattr(aead, "_ChaCha", None)
        monkeypatch.setattr(aead, "_IMPORT_ERROR", "simulated: backend removed")
        with pytest.raises(CryptoUnavailableError, match="no pure-Python"):
            make_cipher(name, bytes(KEY_SIZES[name]))

    def test_availability_probe(self, monkeypatch):
        if aead.available():
            for name in AEAD_CIPHER_NAMES:
                assert cipher_available(name)
            monkeypatch.setattr(aead, "_AesGcm", None)
        else:
            assert aead.unavailable_reason() is not None
        assert not aead.available()
        for name in AEAD_CIPHER_NAMES:
            assert not cipher_available(name)

    def test_names_stay_registered_without_backend(self, monkeypatch):
        """The names (and key sizes) must survive backend loss so stores
        formatted with AEAD suites refuse loudly instead of failing with
        an unknown-cipher error."""
        from repro.crypto.registry import CIPHER_NAMES

        monkeypatch.setattr(aead, "_AesGcm", None)
        for name in AEAD_CIPHER_NAMES:
            assert name in CIPHER_NAMES
            assert KEY_SIZES[name] == aead.KEY_SIZE
