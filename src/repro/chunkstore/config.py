"""Chunk-store configuration and key derivation.

The system partition is protected "using a fixed cipher and hash function
that are considered secure, such as 3DES and SHA-1" (§5.2), keyed from the
secret store.  We derive independent keys for the system cipher and the
commit-chunk MAC from the 16-byte platform secret with SHA-256 in a simple
KDF arrangement (domain-separated by label).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.registry import KEY_SIZES
from repro.platform.retry import RetryPolicy


@dataclass
class StoreConfig:
    """Static parameters fixed when the store is formatted.

    These are persisted (in plaintext) in the superblock; they are *hints*
    for reopening — all security-relevant checks derive from the
    tamper-resistant store, never from superblock contents.
    """

    #: log segment size in bytes (paper: ~100 KB for disk; smaller default
    #: keeps tests and in-memory stores nimble)
    segment_size: int = 64 * 1024
    #: descriptor fanout of map chunks (paper: 64)
    fanout: int = 64
    #: "direct" (§4.8.2.1) or "counter" (§4.8.2.2)
    validation_mode: str = "counter"
    #: cipher and hash protecting the system partition and chunk headers
    system_cipher: str = "3des-cbc"
    system_hash: str = "sha1"
    #: counter mode: how far the TR counter may lag the log (Δut, §4.8.2.2)
    delta_ut: int = 5
    #: counter mode: how far the TR counter may lead the log (Δtu)
    delta_tu: int = 0
    #: auto-checkpoint when this many descriptors are dirty in cache
    checkpoint_dirty_threshold: int = 1024
    #: maximum clean descriptor-cache entries before LRU eviction
    cache_size: int = 4096
    #: byte budget for the validated-payload cache (decrypted, verified
    #: data-chunk bodies); 0 disables it (runtime-only, like retry_policy)
    payload_cache_bytes: int = 2 * 1024 * 1024
    #: sequential-read prefetch: after two consecutive ranks, batch-fetch
    #: up to this many following ranks; 0 disables prefetch (runtime-only)
    prefetch_window: int = 0
    #: bytes reserved at offset 0 for the superblock
    superblock_size: int = 4096
    #: auto-clean when free segments drop below this count
    clean_low_water: int = 2
    #: flush the untrusted store on every commit (paper's configuration)
    flush_every_commit: bool = True
    #: how untrusted-store I/O retries transient faults (runtime-only:
    #: not persisted in the superblock, so it may differ per open)
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.validation_mode not in ("direct", "counter"):
            raise ValueError(f"unknown validation mode {self.validation_mode!r}")
        if self.fanout < 2:
            raise ValueError("fanout must be at least 2")
        if self.segment_size < 1024:
            raise ValueError("segment size must be at least 1 KiB")
        if self.delta_ut < 1:
            raise ValueError("delta_ut must be >= 1 (1 = flush TR every commit)")
        if self.delta_tu < 0:
            raise ValueError("delta_tu must be >= 0")
        if self.payload_cache_bytes < 0:
            raise ValueError("payload_cache_bytes must be >= 0")
        if self.prefetch_window < 0:
            raise ValueError("prefetch_window must be >= 0")


def derive_key(secret: bytes, label: str, size: int) -> bytes:
    """Derive a ``size``-byte key from the platform secret for ``label``."""
    out = b""
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(
            secret + label.encode("utf-8") + counter.to_bytes(4, "big")
        ).digest()
        counter += 1
    return out[:size]


def system_cipher_key(secret: bytes, cipher_name: str) -> bytes:
    return derive_key(secret, "tdb.system.cipher", KEY_SIZES[cipher_name])


def mac_key(secret: bytes) -> bytes:
    return derive_key(secret, "tdb.mac", 32)


def backup_key(secret: bytes) -> bytes:
    return derive_key(secret, "tdb.backup", 32)
