"""Exception hierarchy for the TDB reproduction.

The one exception that carries the paper's security semantics is
:class:`TamperDetectedError`: it is raised whenever validation of data read
from the untrusted store fails, i.e. whenever an untrusted program has
modified (or replayed) state that a trusted program later reads.
"""

from __future__ import annotations


class TDBError(Exception):
    """Base class for all errors raised by the TDB reproduction."""


class TamperDetectedError(TDBError):
    """Validation of untrusted data failed.

    Raised on hash mismatches, signature failures, residual-log sequence
    violations, replay detection, or any other evidence that the untrusted
    store no longer reflects the state written by the trusted program.
    """


class SecrecyError(TDBError):
    """An operation would violate the secrecy contract (e.g. reading the
    secret store from an untrusted context in the simulated platform)."""


class ChunkStoreError(TDBError):
    """Base class for chunk-store usage errors."""


class ChunkNotAllocatedError(ChunkStoreError):
    """A chunk id was used that is not currently allocated."""


class ChunkNotWrittenError(ChunkStoreError):
    """A chunk id was read before it was ever written (committed)."""


class PartitionError(ChunkStoreError):
    """Base class for partition-level usage errors."""


class PartitionNotFoundError(PartitionError):
    """A partition id was used that is not currently written."""


class StorageFullError(TDBError):
    """The untrusted store has no free segments left (even after cleaning)."""


class CrashError(TDBError):
    """Raised by the crash-injection machinery to simulate a fail-stop crash.

    Test harnesses install a crash point, run an operation, catch
    :class:`CrashError`, then re-open the store to exercise recovery.
    """


class BackupError(TDBError):
    """Base class for backup-store errors."""


class BackupIntegrityError(BackupError, TamperDetectedError):
    """A backup stream failed signature or checksum validation."""


class BackupOrderingError(BackupError):
    """A restore violated ordering constraints (missing base snapshot,
    incomplete backup set, or out-of-order incremental restore)."""


class ObjectStoreError(TDBError):
    """Base class for object-store usage errors."""


class ObjectNotFoundError(ObjectStoreError):
    """An object id was used that does not name a stored object."""


class TransactionError(ObjectStoreError):
    """Transaction misuse (commit after abort, use outside scope, ...)."""


class DeadlockError(TransactionError):
    """Lock acquisition timed out; the transaction was chosen as the victim
    and must abort (the paper breaks deadlocks with timeouts, §7)."""


class PicklingError(ObjectStoreError):
    """An object could not be pickled or unpickled."""


class IndexError_(TDBError):
    """Collection-store index misuse (named with a trailing underscore to
    avoid shadowing the builtin)."""


class XDBError(TDBError):
    """Base class for errors from the XDB baseline system."""
