"""Lock-manager concurrency suite: timeout/notify interleavings.

The centerpiece is the spurious-deadlock regression: an exclusive waiter
that times out must wake shared requesters blocked solely on the
writer-fairness gate (``waiters > 0``), or they sleep until their own
deadline and raise :class:`DeadlockError` on a lock that is actually
grantable.  Two legs cover it:

* a single-threaded white-box test that counts the ``notify_all`` the
  timeout path must issue — deterministic, no scheduling involved;
* multi-threaded liveness/interleaving tests driven by
  :class:`~repro.platform.clock.VirtualClock`: waiters really block, and
  only explicit ``advance`` calls move their deadlines (poll ticks
  surface as spurious wake-ups, which the ``Clock`` contract allows, so
  a waiter is never stranded by a lost notification).
"""

import threading
import time

import pytest

from repro.errors import DeadlockError
from repro.objectstore.locks import LockManager
from repro.platform.clock import FakeClock, VirtualClock


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestSpuriousDeadlockRegression:
    def test_exclusive_timeout_issues_wakeup(self):
        """Regression (white-box, deterministic): the timeout path of
        ``acquire_exclusive`` must ``notify_all`` when it abandons its
        request.  Before the fix it notified nobody, so a shared
        requester blocked solely on the writer-fairness gate slept to
        its own deadline and raised a spurious :class:`DeadlockError`."""
        clock = FakeClock()
        locks = LockManager(timeout=2.0, clock=clock)
        locks.acquire_shared(1, "r")
        notifications = []
        original_notify_all = locks._condition.notify_all

        def counting_notify_all():
            notifications.append(True)
            original_notify_all()

        locks._condition.notify_all = counting_notify_all
        with pytest.raises(DeadlockError):
            locks.acquire_exclusive(2, "r")
        assert notifications, (
            "timed-out exclusive waiter failed to notify: shared "
            "requesters blocked on the fairness gate would sleep to "
            "their own deadline and raise a spurious DeadlockError"
        )

    def test_exclusive_timeout_wakes_blocked_shared_requester(self):
        """Regression: tx1 holds S; tx2's X request times out; tx3's S
        request — blocked solely on ``waiters > 0`` — must be granted as
        soon as the X waiter abandons, not deadlock at its own deadline."""
        clock = VirtualClock()
        locks = LockManager(timeout=10.0, clock=clock)
        locks.acquire_shared(1, "r")  # held for the whole test

        results = {}

        def writer():
            try:
                locks.acquire_exclusive(2, "r")
                results["writer"] = "granted"
            except DeadlockError:
                results["writer"] = "deadlock"

        def reader():
            try:
                locks.acquire_shared(3, "r")
                results["reader"] = "granted"
            except DeadlockError:
                results["reader"] = "deadlock"

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert _wait_for(lambda: locks.stats()["waits"] == 1)
        clock.advance(5.0)  # writer deadline at vt=10, reader's will be 15

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        assert _wait_for(lambda: locks.stats()["waits"] == 2)

        clock.advance(5.0)  # vt=10: the writer times out — and must notify
        writer_thread.join(timeout=5.0)
        assert results.get("writer") == "deadlock"
        # The fix: the reader is granted promptly (vt is still < its
        # deadline of 15, so this cannot be the reader's own timeout).
        # Before the fix it slept here until vt=15 — i.e. forever, since
        # nothing advances the clock again — and the join times out.
        reader_thread.join(timeout=5.0)
        assert not reader_thread.is_alive(), (
            "shared requester still asleep after the exclusive waiter "
            "abandoned — timeout path failed to notify"
        )
        assert results.get("reader") == "granted"
        assert locks.holds(3, "r")
        assert locks.stats()["deadlocks_broken"] == 1

    def test_timeout_with_surviving_waiter_keeps_fairness_gate_closed(self):
        """When one of two X waiters times out, the notify must not let a
        shared requester jump the surviving waiter's queue position."""
        clock = VirtualClock()
        locks = LockManager(timeout=10.0, clock=clock)
        locks.acquire_shared(1, "r")

        outcomes = {}

        def writer(tx_id):
            try:
                locks.acquire_exclusive(tx_id, "r")
                outcomes[tx_id] = "granted"
                locks.release_all(tx_id)
            except DeadlockError:
                outcomes[tx_id] = "deadlock"

        def reader():
            locks.acquire_shared(4, "r")
            outcomes["reader"] = "granted"

        first = threading.Thread(target=writer, args=(2,))
        first.start()
        assert _wait_for(lambda: locks.stats()["waits"] == 1)
        clock.advance(6.0)  # tx2 deadline vt=10; tx3's will be 16

        second = threading.Thread(target=writer, args=(3,))
        second.start()
        assert _wait_for(lambda: locks.stats()["waits"] == 2)

        shared = threading.Thread(target=reader)
        shared.start()
        assert _wait_for(lambda: locks.stats()["waits"] == 3)

        clock.advance(4.0)  # vt=10: tx2 times out, tx3 still waiting
        first.join(timeout=5.0)
        assert outcomes.get(2) == "deadlock"
        time.sleep(0.05)  # give the reader every chance to misbehave
        assert outcomes.get("reader") is None  # gate still closed: tx3 waits

        locks.release_all(1)  # tx3 gets X, then the reader follows
        second.join(timeout=5.0)
        shared.join(timeout=5.0)
        assert outcomes.get(3) == "granted"
        assert outcomes.get("reader") == "granted"

    def test_fakeclock_timeout_leaves_waiter_count_clean(self):
        """Single-threaded FakeClock leg: a timed-out X request must not
        leave a stale ``waiters`` registration behind."""
        clock = FakeClock()
        locks = LockManager(timeout=2.0, clock=clock)
        locks.acquire_shared(1, "r")
        with pytest.raises(DeadlockError):
            locks.acquire_exclusive(2, "r")
        # the gate is open again: a new shared grant must not block
        locks.acquire_shared(3, "r")
        assert locks.holds(3, "r")


class TestNotifyInterleavings:
    def test_release_during_exclusive_wait_grants_before_deadline(self):
        clock = VirtualClock()
        locks = LockManager(timeout=10.0, clock=clock)
        locks.acquire_shared(1, "r")
        granted = threading.Event()

        def writer():
            locks.acquire_exclusive(2, "r")
            granted.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert _wait_for(lambda: locks.stats()["waits"] == 1)
        locks.release_all(1)  # real notify, virtual clock untouched
        assert granted.wait(timeout=5.0)
        thread.join(timeout=5.0)
        assert locks.holds(2, "r", exclusive=True)

    def test_virtual_deadline_applies_without_notification(self):
        clock = VirtualClock()
        locks = LockManager(timeout=3.0, clock=clock)
        locks.acquire_exclusive(1, "r")
        outcome = {}

        def contender():
            try:
                locks.acquire_exclusive(2, "r")
                outcome["result"] = "granted"
            except DeadlockError:
                outcome["result"] = "deadlock"

        thread = threading.Thread(target=contender)
        thread.start()
        assert _wait_for(lambda: locks.stats()["waits"] == 1)
        time.sleep(0.05)  # real time passes; virtual deadline untouched
        assert thread.is_alive()
        clock.advance(3.0)
        thread.join(timeout=5.0)
        assert outcome.get("result") == "deadlock"

    def test_mixed_mode_hammer_mutual_exclusion(self):
        """Threads hammer one ref in mixed S/X modes; a writer inside the
        critical section must never overlap any other holder."""
        locks = LockManager(timeout=10.0)
        guard = threading.Lock()
        readers_in = [0]
        writers_in = [0]
        violations = []

        def worker(tx_id):
            for round_no in range(40):
                if (tx_id + round_no) % 3 == 0:
                    locks.acquire_exclusive(tx_id, "hot")
                    with guard:
                        if readers_in[0] or writers_in[0]:
                            violations.append((tx_id, "x-overlap"))
                        writers_in[0] += 1
                    with guard:
                        writers_in[0] -= 1
                else:
                    locks.acquire_shared(tx_id, "hot")
                    with guard:
                        if writers_in[0]:
                            violations.append((tx_id, "s-under-x"))
                        readers_in[0] += 1
                    with guard:
                        readers_in[0] -= 1
                locks.release_all(tx_id)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(1, 6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not violations
        stats = locks.stats()
        assert stats["held_refs"] == 0
        assert stats["active_transactions"] == 0
