"""Optional OpenSSL-backed bulk CBC for DES and 3DES.

When the host Python already ships the ``cryptography`` package (many
distributions do), its OpenSSL bindings compute the exact same FIPS 46-3
byte stream as our from-scratch implementation, only at C speed.  This
module probes for it at import time and, when present, hands the DES/3DES
``encrypt_cbc``/``decrypt_cbc`` bulk hooks an OpenSSL backend.

Scope is deliberately narrow:

* only the raw CBC core is delegated — IV generation, PKCS#7 padding, and
  the IV-prefixed ciphertext layout stay in :mod:`repro.crypto.modes`, so
  the on-disk format is byte-for-byte identical whichever backend runs;
* XTEA and ctr-sha256 never route here (XTEA is not in OpenSSL; the
  counter stream is already hashlib-speed);
* nothing is installed or required: if the package is missing, or the
  ``REPRO_NO_CRYPTO_ACCEL`` environment variable is set, every cipher
  falls back to the int-native pure-Python bulk path with no loss of
  functionality.

Single DES is driven through OpenSSL's TripleDES with the key repeated
three times (EDE with K1=K2=K3 *is* single DES); 16-byte two-key 3DES is
normalized to 24 bytes (K1 ‖ K2 ‖ K1) before it reaches OpenSSL.
"""

from __future__ import annotations

import os
from typing import Optional

_IMPORT_ERROR: Optional[str] = None

try:
    if os.environ.get("REPRO_NO_CRYPTO_ACCEL"):
        raise ImportError("disabled by REPRO_NO_CRYPTO_ACCEL")
    from cryptography.hazmat.primitives.ciphers import Cipher as _OsslCipher
    from cryptography.hazmat.primitives.ciphers import modes as _ossl_modes

    try:
        # modern home of legacy algorithms (cryptography >= 43)
        from cryptography.hazmat.decrepit.ciphers.algorithms import (
            TripleDES as _OsslTripleDES,
        )
    except ImportError:
        from cryptography.hazmat.primitives.ciphers.algorithms import (
            TripleDES as _OsslTripleDES,
        )
except ImportError as exc:  # pragma: no cover - environment-dependent
    _OsslCipher = None
    _ossl_modes = None
    _OsslTripleDES = None
    _IMPORT_ERROR = str(exc)


def available() -> bool:
    """True when the OpenSSL backend can serve DES/3DES bulk CBC."""
    return _OsslCipher is not None


def unavailable_reason() -> Optional[str]:
    return _IMPORT_ERROR


class _OsslCbc:
    """``encrypt_cbc``/``decrypt_cbc`` provider over one 24-byte 3DES key.

    A fresh OpenSSL cipher context is built per call: CBC chaining state
    must restart at the caller's IV each time, and context setup is a few
    microseconds against a C-speed bulk pass.
    """

    def __init__(self, key24: bytes) -> None:
        self._algorithm = _OsslTripleDES(key24)

    def encrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        enc = _OsslCipher(self._algorithm, _ossl_modes.CBC(iv)).encryptor()
        return enc.update(data) + enc.finalize()

    def decrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        dec = _OsslCipher(self._algorithm, _ossl_modes.CBC(iv)).decryptor()
        return dec.update(data) + dec.finalize()


def cbc_backend(kind: str, key: bytes):
    """An OpenSSL CBC backend for ``kind`` in {"des", "3des"}, or ``None``
    when the backend is unavailable (caller keeps its Python bulk path)."""
    if _OsslCipher is None:
        return None
    if kind == "des":
        full = key * 3
    elif kind == "3des":
        if len(key) == 8:
            full = key * 3
        elif len(key) == 16:
            full = key + key[:8]
        else:
            full = key
    else:
        return None
    return _OsslCbc(full)
