"""Model-based tests for XDB's page B-tree (the baseline must be a
correct database, or the Figure 11 comparison is meaningless)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.platform import MemoryUntrustedStore
from repro.xdb import BTree, Pager


def keys():
    return st.binary(min_size=1, max_size=24)


def values():
    return st.binary(max_size=64)


class TestBtreeModel:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get"]), keys(), values()
            ),
            max_size=150,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_against_dict(self, ops):
        pager = Pager(MemoryUntrustedStore(8 << 20))
        pager.format()
        tree = BTree.create(pager)
        model = {}
        for op, key, value in ops:
            if op == "put":
                tree.put(key, value)
                model[key] = value
            elif op == "delete":
                existed = tree.delete(key)
                assert existed == (key in model)
                model.pop(key, None)
            else:
                assert tree.get(key) == model.get(key)
        assert dict(tree.scan()) == model
        got_keys = [key for key, _ in tree.scan()]
        assert got_keys == sorted(model)

    @given(
        entries=st.dictionaries(keys(), values(), min_size=1, max_size=60),
        low=keys(),
        high=keys(),
    )
    @settings(max_examples=30, deadline=None)
    def test_range_scan_agrees(self, entries, low, high):
        if low > high:
            low, high = high, low
        pager = Pager(MemoryUntrustedStore(8 << 20))
        pager.format()
        tree = BTree.create(pager)
        for key, value in entries.items():
            tree.put(key, value)
        got = dict(tree.scan(low, high))
        expected = {k: v for k, v in entries.items() if low <= k <= high}
        assert got == expected

    @given(entries=st.dictionaries(keys(), values(), min_size=30, max_size=120))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_persistence_through_commit(self, entries):
        store = MemoryUntrustedStore(8 << 20)
        pager = Pager(store)
        pager.format()
        tree = BTree.create(pager)
        for key, value in entries.items():
            tree.put(key, value)
        pager.commit()
        store.simulate_crash()
        pager2 = Pager(store)
        pager2.open()
        tree2 = BTree(pager2, tree.root)
        assert dict(tree2.scan()) == entries
