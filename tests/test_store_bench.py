"""Smoke test for the read-path benchmark driver (tiny in-process run)."""

import pytest

from repro.bench.store_bench import (
    UNCACHED_OPS_FLOOR,
    WARM_SPEEDUP_FLOOR,
    check,
    resolve_cipher,
    run,
)
from repro.crypto import aead


def test_store_bench_tiny_run_meets_floors():
    results = run(chunks=8, chunk_size=1024, repeats=2)

    for section in ("write", "recovery", "cold_read", "warm_read",
                    "uncached_read", "scan", "payload_cache", "walk"):
        assert section in results, section
    for section in ("write", "cold_read", "warm_read", "uncached_read"):
        assert results[section]["ops_per_sec"] > 0

    # the acceptance floors the CI smoke job enforces
    assert results["warm_speedup_vs_uncached"] >= WARM_SPEEDUP_FLOOR
    assert (
        results["warm_read"]["round_trips"]
        < results["cold_read"]["round_trips"]
    )
    # a batched scan beats one device read per chunk
    assert (
        results["scan"]["batched_round_trips"]
        < results["scan"]["single_round_trips"]
    )
    assert check(results) == 0


@pytest.mark.skipif(not aead.available(), reason="AEAD backend unavailable")
def test_store_bench_aead_default_tier_meets_floor():
    """The one-pass AEAD tier: uncached reads clear the 3×-baseline ops
    floor, and the composite check enforces it."""
    slow = run(chunks=8, chunk_size=1024, repeats=2)
    tier = run(chunks=8, chunk_size=1024, repeats=2, cipher="aes-256-gcm")
    assert tier["partition_cipher"] == "aes-256-gcm"
    assert tier["uncached_read"]["ops_per_sec"] >= UNCACHED_OPS_FLOOR
    # one-pass beats the slow two-pass tier outright on every cold path
    assert (
        tier["uncached_read"]["ops_per_sec"]
        > slow["uncached_read"]["ops_per_sec"]
    )
    slow["default_tier"] = tier
    assert check(slow) == 0


def test_resolve_cipher():
    assert resolve_cipher("xtea-cbc") == "xtea-cbc"
    expected = "aes-256-gcm" if aead.available() else None
    assert resolve_cipher("auto") == expected
