"""Bounded retry with exponential backoff for untrusted-store I/O.

Transient faults (:class:`~repro.errors.TransientIOError`) are retried up
to :attr:`RetryPolicy.max_attempts` times with exponential backoff and
seeded jitter, subject to a per-operation deadline.  Permanent faults and
every non-I/O error propagate immediately — retrying a bad sector or a
hash mismatch cannot help.

The delay sequence is deterministic given ``(policy, seed)``, and all
waiting goes through the injectable :class:`~repro.platform.clock.Clock`,
so tests exercise the full backoff schedule without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

import random

from repro import obs
from repro.errors import TransientIOError
from repro.platform.clock import Clock, SystemClock
from repro.platform.untrusted import IOStats

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on an untrusted-store operation."""

    #: total attempts, including the first (1 = no retries)
    max_attempts: int = 4
    #: backoff before the first retry, in seconds
    base_delay: float = 0.005
    #: multiplier applied per retry (exponential backoff)
    multiplier: float = 2.0
    #: ceiling on any single backoff delay
    max_delay: float = 0.25
    #: overall per-operation deadline in seconds (None = unbounded)
    deadline: Optional[float] = 2.0
    #: jitter as a +/- fraction of each delay (0 disables)
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    def delay_for(self, retry_index: int, rng: random.Random) -> float:
        """Backoff before the ``retry_index``-th retry (0-based), jittered."""
        delay = min(
            self.base_delay * (self.multiplier**retry_index), self.max_delay
        )
        if self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class Retrier:
    """Applies a :class:`RetryPolicy` to callables, tallying into
    :class:`~repro.platform.untrusted.IOStats`."""

    def __init__(
        self,
        policy: RetryPolicy,
        clock: Optional[Clock] = None,
        stats: Optional[IOStats] = None,
        seed: int = 0,
    ) -> None:
        self.policy = policy
        self.clock = clock or SystemClock()
        self.stats = stats
        self.rng = random.Random(seed)

    def call(self, fn: Callable[[], T], op: str = "io") -> T:
        """Run ``fn``, retrying transient I/O faults per the policy.

        Raises the last :class:`~repro.errors.TransientIOError` once
        attempts or the deadline are exhausted (tallying ``gave_up``).
        """
        start = self.clock.now()
        retry_index = 0
        while True:
            try:
                return fn()
            except TransientIOError:
                retry_index += 1
                if retry_index >= self.policy.max_attempts:
                    self._give_up(op, retry_index)
                    raise
                delay = self.policy.delay_for(retry_index - 1, self.rng)
                if (
                    self.policy.deadline is not None
                    and self.clock.now() + delay - start > self.policy.deadline
                ):
                    self._give_up(op, retry_index)
                    raise
                if self.stats is not None:
                    self.stats.retries += 1
                obs.add("platform.retries")
                obs.observe("platform.retry_backoff", delay)
                self.clock.sleep(delay)

    def _give_up(self, op: str, attempts: int) -> None:
        if self.stats is not None:
            self.stats.gave_up += 1
        obs.add("platform.retries_exhausted")
        obs.emit("retry_exhausted", op=op, attempts=attempts)
