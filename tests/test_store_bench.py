"""Smoke test for the read-path benchmark driver (tiny in-process run)."""

from repro.bench.store_bench import WARM_SPEEDUP_FLOOR, check, run


def test_store_bench_tiny_run_meets_floors():
    results = run(chunks=8, chunk_size=1024, repeats=2)

    for section in ("write", "recovery", "cold_read", "warm_read",
                    "uncached_read", "scan", "payload_cache", "walk"):
        assert section in results, section
    for section in ("write", "cold_read", "warm_read", "uncached_read"):
        assert results[section]["ops_per_sec"] > 0

    # the acceptance floors the CI smoke job enforces
    assert results["warm_speedup_vs_uncached"] >= WARM_SPEEDUP_FLOOR
    assert (
        results["warm_read"]["round_trips"]
        < results["cold_read"]["round_trips"]
    )
    # a batched scan beats one device read per chunk
    assert (
        results["scan"]["batched_round_trips"]
        < results["scan"]["single_round_trips"]
    )
    assert check(results) == 0
