"""``python -m repro.bench.report`` — regenerate the paper's headline
evaluation (Figures 10–12 and the stored-size comparison) as one
markdown report on stdout.

This is the one-command version of the pytest-benchmark suite for
readers who want the paper-shaped tables without the bench plumbing; the
full sweep (micro-benchmarks, regressions, ablations) lives in
``benchmarks/``.
"""

from __future__ import annotations

import sys
import time
from typing import Dict

from repro.bench.adapters import TdbAdapter, XdbAdapter
from repro.bench.profiler import Profiler
from repro.bench.workload import FIGURE_10, Workload
from repro.platform import DiskModel

_PAPER_FIG12 = {
    "collection store": 4,
    "object store": 2,
    "chunk store": 1,
    "encryption": 4,
    "hashing": 2,
    "untrusted store read": 0,
    "untrusted store write": 81,
    "tamper-resistant store": 5,
}


def _run(adapter_cls, kind: str, profile: bool = False):
    adapter = adapter_cls()
    workload = Workload(adapter)
    workload.setup()
    if hasattr(adapter, "platform"):
        untrusted = adapter.platform.untrusted
        tr = lambda: (
            adapter.platform.counter.write_count
            + adapter.platform.tamper_resistant.write_count
        )
    else:
        untrusted = adapter.store
        tr = lambda: adapter.tr.write_count
    io_before = untrusted.stats.snapshot()
    tr_before = tr()
    profiler = Profiler()
    start = time.perf_counter()
    if profile:
        with profiler:
            counts = workload.run_experiment(kind)
    else:
        counts = workload.run_experiment(kind)
    cpu = time.perf_counter() - start
    io = untrusted.stats.delta(io_before)
    model = DiskModel()
    return {
        "counts": counts,
        "cpu": cpu,
        "io": io,
        "tr_writes": tr() - tr_before,
        "write_io": model.write_time(io),
        "read_io": model.read_time(io),
        "tr_io": model.tamper_resistant_time(tr() - tr_before),
        "stored": adapter.stored_bytes(),
        "profiler": profiler,
        "adapter": adapter,
    }


def _figure10(result: Dict, kind: str, out) -> None:
    print(f"\n### Figure 10 — {kind} operation counts\n", file=out)
    print("| op | measured | paper |", file=out)
    print("|---|---|---|", file=out)
    for op in ("read", "update", "delete", "add", "commit"):
        print(
            f"| {op} | {result['counts'][op]} | {FIGURE_10[kind][op]} |",
            file=out,
        )


def main(out=None) -> int:
    """Run the headline experiments and print the markdown report."""
    out = out or sys.stdout
    print("# TDB reproduction — headline evaluation report", file=out)
    print(
        "\nIdentical Figure-10 workloads driven through TDB and the "
        "layered-crypto XDB baseline; I/O modeled with the paper's disk "
        "constants (see DESIGN.md).",
        file=out,
    )

    results = {}
    for kind in ("release", "bind"):
        results[(kind, "TDB")] = _run(TdbAdapter, kind, profile=(kind == "release"))
        results[(kind, "XDB")] = _run(XdbAdapter, kind)

    _figure10(results[("release", "TDB")], "release", out)
    _figure10(results[("bind", "TDB")], "bind", out)

    print("\n### Figure 11 — runtime comparison\n", file=out)
    print("| experiment | TDB | XDB | winner |", file=out)
    print("|---|---|---|---|", file=out)
    for kind in ("release", "bind"):
        tdb = results[(kind, "TDB")]
        xdb = results[(kind, "XDB")]
        tdb_total = tdb["cpu"] + tdb["write_io"] + tdb["read_io"] + tdb["tr_io"]
        xdb_total = xdb["cpu"] + xdb["write_io"] + xdb["read_io"] + xdb["tr_io"]
        print(
            f"| {kind} | {tdb_total*1000:.0f} ms | {xdb_total*1000:.0f} ms "
            f"| TDB {xdb_total/tdb_total:.1f}× |",
            file=out,
        )

    release = results[("release", "TDB")]
    cpu = release["profiler"].report()
    components = {
        "collection store": cpu.get("collection store", 0.0),
        "object store": cpu.get("object store", 0.0),
        "chunk store": cpu.get("chunk store", 0.0),
        "encryption": cpu.get("encryption", 0.0),
        "hashing": cpu.get("hashing", 0.0),
        "untrusted store read": release["read_io"],
        "untrusted store write": release["write_io"],
        "tamper-resistant store": release["tr_io"],
    }
    total = sum(components.values())
    print("\n### Figure 12 — release runtime analysis\n", file=out)
    print("| module | measured | paper |", file=out)
    print("|---|---|---|", file=out)
    print(f"| DB TOTAL | {total*1000:.0f} ms | 4209 ms |", file=out)
    for module, seconds in components.items():
        print(
            f"| {module} | {seconds/total*100:.0f}% | {_PAPER_FIG12[module]}% |",
            file=out,
        )

    print("\n### §9.5.2 — stored size\n", file=out)
    tdb_rel = results[("release", "TDB")]
    xdb_rel = results[("release", "XDB")]
    chunks = tdb_rel["adapter"].chunks
    print("| system | measured | paper |", file=out)
    print("|---|---|---|", file=out)
    print(
        f"| TDB (live/0.6 util) | {chunks.live_bytes()/0.6/1e6:.2f} MB | 4.0 MB |",
        file=out,
    )
    print(f"| XDB | {xdb_rel['stored']/1e6:.2f} MB | 3.8 MB |", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
