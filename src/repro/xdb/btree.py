"""Page-based B-tree for XDB (bytes keys → bytes values).

One node per 4 KiB page.  Like SQLite, XDB represents *tables* as B-trees
keyed by record id and *indexes* as B-trees keyed by (key bytes): this
keeps the baseline small without changing its I/O shape — every record
touch dirties O(depth) pages that are then WAL-logged and forced in place
at commit.

Node wire format (within a page)::

    [u8 leaf][u16 n]
    leaf:     n × ( [u16 klen][key][u16 vlen][value] )
    interior: n × ( [u16 klen][key] )  then  (n+1) × [u32 child]

Split threshold is byte-based (¾ page), so large values still fit.
Values larger than a page are rejected — the crypto layer keeps records
under that (the workload's objects are small).
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.errors import XDBError
from repro.xdb.pager import PAGE_SIZE, Pager

_SPLIT_BYTES = (PAGE_SIZE * 3) // 4
_MAX_VALUE = PAGE_SIZE // 2


def _encode_leaf(keys: List[bytes], vals: List[bytes]) -> bytes:
    out = bytearray()
    out += struct.pack(">BH", 1, len(keys))
    for key, val in zip(keys, vals):
        out += struct.pack(">H", len(key)) + key
        out += struct.pack(">H", len(val)) + val
    return bytes(out)


def _encode_interior(keys: List[bytes], children: List[int]) -> bytes:
    out = bytearray()
    out += struct.pack(">BH", 0, len(keys))
    for key in keys:
        out += struct.pack(">H", len(key)) + key
    for child in children:
        out += struct.pack(">I", child)
    return bytes(out)


def _decode(page: bytes) -> Tuple[bool, List[bytes], List[bytes], List[int]]:
    leaf, count = struct.unpack_from(">BH", page, 0)
    pos = 3
    keys: List[bytes] = []
    vals: List[bytes] = []
    children: List[int] = []
    if leaf:
        for _ in range(count):
            (klen,) = struct.unpack_from(">H", page, pos)
            pos += 2
            keys.append(bytes(page[pos : pos + klen]))
            pos += klen
            (vlen,) = struct.unpack_from(">H", page, pos)
            pos += 2
            vals.append(bytes(page[pos : pos + vlen]))
            pos += vlen
        return True, keys, vals, children
    for _ in range(count):
        (klen,) = struct.unpack_from(">H", page, pos)
        pos += 2
        keys.append(bytes(page[pos : pos + klen]))
        pos += klen
    for _ in range(count + 1):
        (child,) = struct.unpack_from(">I", page, pos)
        pos += 4
        children.append(child)
    return False, keys, vals, children


class BTree:
    """A B-tree rooted at a page; mutations go through the pager."""

    def __init__(self, pager: Pager, root: int) -> None:
        self.pager = pager
        self.root = root

    @classmethod
    def create(cls, pager: Pager) -> "BTree":
        root = pager.allocate_page()
        pager.write_page(root, _encode_leaf([], []))
        return cls(pager, root)

    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Exact lookup; ``None`` if absent."""
        page_no = self.root
        while True:
            leaf, keys, vals, children = _decode(self.pager.read_page(page_no))
            if leaf:
                index = _bisect(keys, key)
                if index < len(keys) and keys[index] == key:
                    return vals[index]
                return None
            page_no = children[_bisect_right(keys, key)]

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``; splits propagate up and the root
        page number stays stable for the catalog."""
        if len(value) > _MAX_VALUE:
            raise XDBError(f"value of {len(value)} bytes exceeds XDB record limit")
        split = self._put(self.root, key, value)
        if split is not None:
            # the root split: move its (left-half) content to a fresh page
            # and turn the root page into an interior node, so the root
            # page number stays stable for the catalog
            sep, right = split
            old = bytes(self.pager.read_page(self.root))
            left = self.pager.allocate_page()
            self.pager.write_page(left, old)
            self.pager.write_page(self.root, _encode_interior([sep], [left, right]))

    def _put(self, page_no: int, key: bytes, value: bytes) -> Optional[Tuple[bytes, int]]:
        leaf, keys, vals, children = _decode(self.pager.read_page(page_no))
        if leaf:
            index = _bisect(keys, key)
            if index < len(keys) and keys[index] == key:
                vals[index] = value
            else:
                keys.insert(index, key)
                vals.insert(index, value)
            encoded = _encode_leaf(keys, vals)
            if len(encoded) <= _SPLIT_BYTES or len(keys) < 2:
                self.pager.write_page(page_no, encoded)
                return None
            mid = len(keys) // 2
            right = self.pager.allocate_page()
            self.pager.write_page(right, _encode_leaf(keys[mid:], vals[mid:]))
            self.pager.write_page(page_no, _encode_leaf(keys[:mid], vals[:mid]))
            return keys[mid], right
        index = _bisect_right(keys, key)
        split = self._put(children[index], key, value)
        if split is None:
            return None
        sep, right_child = split
        keys.insert(index, sep)
        children.insert(index + 1, right_child)
        encoded = _encode_interior(keys, children)
        if len(encoded) <= _SPLIT_BYTES or len(keys) < 2:
            self.pager.write_page(page_no, encoded)
            return None
        mid = len(keys) // 2
        sep_up = keys[mid]
        right = self.pager.allocate_page()
        self.pager.write_page(
            right, _encode_interior(keys[mid + 1 :], children[mid + 1 :])
        )
        self.pager.write_page(
            page_no, _encode_interior(keys[:mid], children[: mid + 1])
        )
        return sep_up, right

    def delete(self, key: bytes) -> bool:
        """Lazy deletion (no rebalancing); returns True if the key existed."""
        return self._delete(self.root, key)

    def _delete(self, page_no: int, key: bytes) -> bool:
        leaf, keys, vals, children = _decode(self.pager.read_page(page_no))
        if leaf:
            index = _bisect(keys, key)
            if index >= len(keys) or keys[index] != key:
                return False
            del keys[index]
            del vals[index]
            self.pager.write_page(page_no, _encode_leaf(keys, vals))
            return True
        return self._delete(children[_bisect_right(keys, key)], key)

    def scan(
        self, low: Optional[bytes] = None, high: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """In-order iteration over [low, high] (inclusive bounds)."""

        def walk(page_no: int) -> Iterator[Tuple[bytes, bytes]]:
            leaf, keys, vals, children = _decode(self.pager.read_page(page_no))
            if leaf:
                for key, val in zip(keys, vals):
                    if low is not None and key < low:
                        continue
                    if high is not None and key > high:
                        return
                    yield key, val
                return
            wanted = []
            for index, child in enumerate(children):
                if low is not None and index < len(keys) and keys[index] < low:
                    continue
                if high is not None and index > 0 and keys[index - 1] > high:
                    break
                wanted.append(child)
            # warm the page cache with one batched round trip, then recurse
            self.pager.read_pages(wanted)
            for child in wanted:
                yield from walk(child)

        yield from walk(self.root)


def _bisect(keys: List[bytes], key: bytes) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_right(keys: List[bytes], key: bytes) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
