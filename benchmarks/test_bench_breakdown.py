"""Figure 12 — TDB runtime breakdown for the release experiment.

Paper (total 4209 ms): untrusted store write 81 %, tamper-resistant store
5 %, encryption 4 %, collection store 4 %, hashing 2 %, object store 2 %,
chunk store 1 %, untrusted store read ≈0 %.  "The overhead is dominated by
writes to the untrusted store"; "the overhead of encryption and hashing is
only 6 %".  The experiment flushed the untrusted store 96 times and the
tamper-resistant store 19 times.

We run the release experiment with the nested-exclusive module profiler
(CPU components) and the DiskModel (I/O components) and print the same
table.  The shape checks: untrusted-store writes dominate, crypto is a
small share.  (With paper-era DES the crypto share rises in pure Python;
the default fast cipher keeps the compute/IO ratio honest.)
"""

from benchmarks.conftest import report
from repro.bench.adapters import TdbAdapter
from repro.bench.profiler import Profiler
from repro.bench.workload import Workload
from repro.platform import DiskModel


def test_figure12_module_breakdown(benchmark):
    adapter = TdbAdapter()
    workload = Workload(adapter)
    workload.setup()
    platform = adapter.platform
    io_before = platform.untrusted.stats.snapshot()
    tr_before = platform.counter.write_count + platform.tamper_resistant.write_count
    profiler = Profiler()
    with profiler:
        workload.run_experiment("release")
    benchmark(lambda: None)  # the experiment above is the measurement
    io = platform.untrusted.stats.delta(io_before)
    tr_writes = (
        platform.counter.write_count
        + platform.tamper_resistant.write_count
        - tr_before
    )
    model = DiskModel()

    cpu = profiler.report()
    components = {
        "collection store": cpu.get("collection store", 0.0),
        "object store": cpu.get("object store", 0.0),
        "chunk store": cpu.get("chunk store", 0.0),
        "encryption": cpu.get("encryption", 0.0),
        "hashing": cpu.get("hashing", 0.0),
        "untrusted store read": model.read_time(io),
        "untrusted store write": model.write_time(io),
        "tamper-resistant store": model.tamper_resistant_time(tr_writes),
    }
    total = sum(components.values())
    paper_percent = {
        "collection store": 4,
        "object store": 2,
        "chunk store": 1,
        "encryption": 4,
        "hashing": 2,
        "untrusted store read": 0,
        "untrusted store write": 81,
        "tamper-resistant store": 5,
    }
    rows = [("DB TOTAL", f"{total*1000:.0f} ms", "4209 ms")]
    for module, seconds in components.items():
        rows.append(
            (
                module,
                f"{seconds*1000:.0f} ms ({seconds/total*100:.0f}%)",
                f"{paper_percent[module]}%",
            )
        )
    rows.append(("untrusted flushes", str(io.flushes), "96"))
    rows.append(("TR flushes", str(tr_writes), "19"))
    for label in sorted(profiler.metrics):
        rows.append((label, f"{profiler.metrics[label]:,.0f}", "n/a"))
    report("Figure 12 runtime analysis", rows)

    # the paper's headline shape claims:
    write_share = components["untrusted store write"] / total
    crypto_share = (components["encryption"] + components["hashing"]) / total
    assert write_share > 0.5, "untrusted-store writes must dominate"
    assert crypto_share < 0.25, "encryption+hashing must be a small share"
    assert components["untrusted store write"] > components["tamper-resistant store"]
