"""Collection store (§8): collections, functional indexes, automatic
maintenance, iterators, dynamic index add/drop."""

import pytest

from repro.chunkstore import ChunkStore
from repro.collection import (
    CollectionStore,
    KeyFunctionRegistry,
    field_key,
)
from repro.errors import IndexError_, TamperDetectedError
from repro.objectstore import ObjectStore
from tests.conftest import make_config, make_platform


@pytest.fixture
def env():
    platform = make_platform(size=16 * 1024 * 1024)
    chunks = ChunkStore.format(platform, make_config(segment_size=32 * 1024))
    objects = ObjectStore(chunks, cache_size=16384)
    pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
    registry = KeyFunctionRegistry()
    registry.register("price", field_key("price"))
    registry.register("title", field_key("title"))
    registry.register("owner", field_key("owner"))
    collections = CollectionStore(objects, pid, registry)
    return platform, chunks, objects, collections


def goods_collection(objects, collections, count=50):
    with objects.transaction() as tx:
        goods = collections.create_collection(tx, "goods")
        collections.add_index(tx, goods, "by_price", "price", sorted_index=True)
        collections.add_index(tx, goods, "by_title", "title", sorted_index=False)
        refs = [
            collections.insert(
                tx, goods, {"title": f"g{i}", "price": (i * 13) % 40}
            )
            for i in range(count)
        ]
    return goods, refs


class TestCollections:
    def test_create_open(self, env):
        _, _, objects, collections = env
        with objects.transaction() as tx:
            collections.create_collection(tx, "goods")
        with objects.transaction() as tx:
            coll = collections.open_collection(tx, "goods")
            assert coll.size(tx) == 0

    def test_duplicate_name_rejected(self, env):
        _, _, objects, collections = env
        with objects.transaction() as tx:
            collections.create_collection(tx, "goods")
            with pytest.raises(IndexError_):
                collections.create_collection(tx, "goods")

    def test_missing_collection(self, env):
        _, _, objects, collections = env
        with objects.transaction() as tx:
            with pytest.raises(IndexError_):
                collections.open_collection(tx, "nope")

    def test_collection_names(self, env):
        _, _, objects, collections = env
        with objects.transaction() as tx:
            collections.create_collection(tx, "a")
            collections.create_collection(tx, "b")
            assert collections.collection_names(tx) == ["a", "b"]

    def test_drop_collection_keeps_objects(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections, 10)
        with objects.transaction() as tx:
            collections.drop_collection(tx, "goods")
            assert collections.collection_names(tx) == []
            # member objects survive (only membership/indexes dropped)
            assert tx.get(refs[0])["title"] == "g0"

    def test_scan(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections, 25)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            assert set(collections.scan(tx, goods)) == set(refs)

    def test_contains(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections, 5)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            assert collections.contains(tx, goods, refs[0])
            collections.remove(tx, goods, refs[0])
            assert not collections.contains(tx, goods, refs[0])


class TestIndexes:
    def test_exact_match_unsorted(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            hits = collections.exact(tx, goods, "by_title", "g7")
            assert [tx.get(h)["title"] for h in hits] == ["g7"]

    def test_exact_match_sorted(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            hits = collections.exact(tx, goods, "by_price", 13)
            assert all(tx.get(h)["price"] == 13 for h in hits)
            assert hits

    def test_range_query(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            results = list(collections.range(tx, goods, "by_price", 10, 20))
            assert results == sorted(results, key=lambda pair: pair[0])
            assert all(10 <= key <= 20 for key, _ in results)
            expected = sum(1 for i in range(50) if 10 <= (i * 13) % 40 <= 20)
            assert len(results) == expected

    def test_range_on_unsorted_rejected(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            with pytest.raises(IndexError_):
                list(collections.range(tx, goods, "by_title", "a", "z"))

    def test_update_moves_index_entries(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            old = tx.get(refs[0])
            collections.update(tx, goods, refs[0], dict(old, price=777))
            assert refs[0] in collections.exact(tx, goods, "by_price", 777)
            assert refs[0] not in collections.exact(tx, goods, "by_price", old["price"])

    def test_update_unindexed_field_keeps_index(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            old = tx.get(refs[3])
            collections.update(tx, goods, refs[3], dict(old, extra="note"))
            assert refs[3] in collections.exact(tx, goods, "by_price", old["price"])

    def test_remove_purges_index_entries(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            price = tx.get(refs[5])["price"]
            collections.remove(tx, goods, refs[5])
            assert refs[5] not in collections.exact(tx, goods, "by_price", price)
            assert collections.exact(tx, goods, "by_title", "g5") == []

    def test_add_index_backfills_existing_members(self, env):
        """Indexes can be dynamically added (§8) — existing members get
        indexed immediately."""
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            collections.add_index(tx, goods, "by_owner", "owner", sorted_index=True)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            # owner is absent -> key None -> not indexed; add one with owner
            ref = collections.insert(
                tx, goods, {"title": "x", "price": 1, "owner": 9}
            )
            assert collections.exact(tx, goods, "by_owner", 9) == [ref]

    def test_drop_index(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            collections.drop_index(tx, goods, "by_price")
            with pytest.raises(IndexError_):
                collections.exact(tx, goods, "by_price", 13)

    def test_none_key_means_unindexed(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections, count=3)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            ref = collections.insert(tx, goods, {"title": "no-price"})
            # present in the collection, absent from the price index
            assert collections.contains(tx, goods, ref)
            assert ref not in [
                r for _k, r in collections.range(tx, goods, "by_price", None, None)
            ]


class TestDurabilityAndTrust:
    def test_everything_survives_reopen(self, env):
        platform, chunks, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        chunks.close()
        platform.reboot()
        chunks2 = ChunkStore.open(platform)
        objects2 = ObjectStore(chunks2, cache_size=16384)
        registry = KeyFunctionRegistry()
        registry.register("price", field_key("price"))
        registry.register("title", field_key("title"))
        collections2 = CollectionStore(objects2, collections.partition, registry)
        with objects2.transaction() as tx:
            goods = collections2.open_collection(tx, "goods")
            assert goods.size(tx) == 50
            assert len(collections2.exact(tx, goods, "by_title", "g9")) == 1
            results = list(collections2.range(tx, goods, "by_price", 0, 5))
            assert all(0 <= key <= 5 for key, _ in results)

    def test_index_tampering_detected(self, env):
        """§1.2's motivating attack — 'effectively delete an object by
        modifying the indexes' — is *detected* in TDB because index nodes
        are chunks like any other."""
        platform, chunks, objects, collections = env
        goods, refs = goods_collection(objects, collections)
        chunks.checkpoint()
        # find the chunk holding an index btree node and flip a bit in it:
        # walk live data descriptors of the partition and corrupt them all;
        # at least one holds index metadata, and every read must validate
        pid = collections.partition
        tampered = 0
        for rank in chunks.data_ranks(pid)[:80]:
            from repro.chunkstore.ids import data_id

            descriptor = chunks._get_descriptor(data_id(pid, rank))
            middle = descriptor.location + descriptor.length // 2
            byte = platform.untrusted.tamper_read(middle, 1)
            platform.untrusted.tamper_write(middle, bytes([byte[0] ^ 1]))
            tampered += 1
        assert tampered
        chunks.cache.clear()
        objects.cache.clear()
        with pytest.raises(TamperDetectedError):
            with objects.transaction() as tx:
                goods = collections.open_collection(tx, "goods")
                for hit in collections.exact(tx, goods, "by_title", "g7"):
                    tx.get(hit)


class TestBatchedScan:
    def test_scan_values_matches_scan_plus_get(self, env):
        _, _, objects, collections = env
        goods, refs = goods_collection(objects, collections, 30)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            expected = {ref: tx.get(ref) for ref in collections.scan(tx, goods)}
            got = dict(collections.scan_values(tx, goods, batch_size=8))
        assert got == expected
        assert set(got) == set(refs)

    def test_scan_values_batches_chunk_fetches(self, env):
        platform, chunks, objects, collections = env
        goods, refs = goods_collection(objects, collections, 24)
        chunks.checkpoint()

        # cold caches, batched: each 8-ref batch is one coalesced fetch
        chunks.cache.clear()
        chunks.payloads.clear()
        objects.cache.clear()
        before = platform.untrusted.stats.snapshot()
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            batched = dict(collections.scan_values(tx, goods, batch_size=8))
        batched_delta = platform.untrusted.stats.delta(before)

        # cold caches, one get per ref: the unbatched baseline
        chunks.cache.clear()
        chunks.payloads.clear()
        objects.cache.clear()
        before = platform.untrusted.stats.snapshot()
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            single = {
                ref: tx.get(ref) for ref in collections.scan(tx, goods)
            }
        single_delta = platform.untrusted.stats.delta(before)

        assert batched == single
        assert batched_delta.reads < single_delta.reads
        assert batched_delta.batched_reads > 0

    def test_scan_values_rejects_bad_batch_size(self, env):
        _, _, objects, collections = env
        goods, _ = goods_collection(objects, collections, 3)
        with objects.transaction() as tx:
            goods = collections.open_collection(tx, "goods")
            with pytest.raises(ValueError):
                list(collections.scan_values(tx, goods, batch_size=0))
