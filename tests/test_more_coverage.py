"""Coverage for remaining corner paths: direct-mode multi-segment
recovery, full-stack value roundtrips, docs link integrity, misc APIs."""

import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunkstore import ChunkStore, ops
from tests.conftest import make_config, make_platform


class TestDirectModeSegmentJumps:
    def test_residual_log_spanning_segments_recovers(self):
        """Direct mode: the chained hash must survive segment jumps in the
        residual log (jump versions are part of the chain)."""
        platform = make_platform(size=4 * 1024 * 1024)
        store = ChunkStore.format(
            platform,
            make_config(validation_mode="direct", segment_size=8 * 1024),
        )
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        # enough data per commit to force several segment jumps without
        # a checkpoint (residual log only)
        ranks = []
        for i in range(12):
            rank = store.allocate_chunk(pid)
            ranks.append(rank)
            store.commit([ops.WriteChunk(pid, rank, bytes([i]) * 3000)])
        assert len(store.segman.residual_segments) > 3
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for i, rank in enumerate(ranks):
            assert reopened.read_chunk(pid, rank) == bytes([i]) * 3000


class TestFullStackRoundtripProperty:
    @given(
        values=st.lists(
            st.recursive(
                st.one_of(
                    st.none(),
                    st.booleans(),
                    st.integers(-(2**40), 2**40),
                    st.text(max_size=20),
                    st.binary(max_size=50),
                ),
                lambda children: st.one_of(
                    st.lists(children, max_size=3),
                    st.dictionaries(st.text(max_size=5), children, max_size=3),
                ),
                max_leaves=10,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_objects_roundtrip_through_crypto_and_log(self, values):
        from repro.objectstore import ObjectStore

        platform = make_platform(size=8 * 1024 * 1024)
        chunks = ChunkStore.format(platform, make_config())
        objects = ObjectStore(chunks)
        pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
        with objects.transaction() as tx:
            refs = [tx.create(pid, value) for value in values]
        chunks.checkpoint()  # persist descriptors before dropping caches
        objects.cache.clear()
        chunks.cache.clear()
        for ref, value in zip(refs, values):
            assert objects.read_committed(ref) == value


class TestDocsIntegrity:
    _ROOT = pathlib.Path(__file__).resolve().parent.parent

    def _referenced_paths(self, text):
        import re

        # backticked repo-relative paths like `benchmarks/test_x.py` or
        # `repro/chunkstore/store.py`
        for match in re.finditer(r"`([A-Za-z0-9_./]+\.(?:py|md))(?:::[^`]+)?`", text):
            yield match.group(1)

    @pytest.mark.parametrize(
        "doc", ["DESIGN.md", "EXPERIMENTS.md", "README.md", "docs/INTERNALS.md"]
    )
    def test_referenced_files_exist(self, doc):
        text = (self._ROOT / doc).read_text()
        missing = []
        for path in self._referenced_paths(text):
            candidates = [
                self._ROOT / path,
                self._ROOT / "src" / path,
                self._ROOT / "src" / "repro" / path,
                self._ROOT / "src" / "repro" / "chunkstore" / path,
                self._ROOT / "benchmarks" / path,
                self._ROOT / "tests" / path,
            ]
            if not any(c.exists() for c in candidates):
                missing.append(path)
        assert not missing, f"{doc} references missing files: {missing}"

    def test_design_lists_every_bench_file(self):
        text = (self._ROOT / "DESIGN.md").read_text()
        bench_dir = self._ROOT / "benchmarks"
        unmentioned = [
            p.name
            for p in bench_dir.glob("test_bench_*.py")
            if p.name not in text
        ]
        # comparison/breakdown/workload are referenced via their file names
        assert not unmentioned, f"DESIGN.md misses benches: {unmentioned}"


class TestMiscApis:
    def test_partition_info_fields(self, store):
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="des-cbc", hash_name="sha256")]
        )
        info = store.partition_info(pid)
        assert set(info) == {"cipher", "hash", "chunk_count", "copies", "copy_of"}
        assert info["chunk_count"] == 0

    def test_data_ranks_excludes_free(self, store):
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        ranks = [store.allocate_chunk(pid) for _ in range(4)]
        store.commit([ops.WriteChunk(pid, r, b"x") for r in ranks])
        store.commit([ops.DeallocateChunk(pid, ranks[1])])
        assert store.data_ranks(pid) == [ranks[0], ranks[2], ranks[3]]

    def test_stored_and_live_bytes_relationship(self, store):
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        for i in range(10):
            store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"d" * 100)])
        assert 0 < store.live_bytes() <= store.stored_bytes()
