"""Cryptographic substrate for TDB.

The paper (§2.2) lets each partition choose its own cryptographic
parameters: a secret key, a cipher, and a collision-resistant hash function.
This package provides those building blocks:

* block ciphers implemented from scratch: :mod:`repro.crypto.des` (DES),
  3DES (EDE), and :mod:`repro.crypto.xtea` (XTEA), all wrapped in CBC mode
  with PKCS#7 padding and a random IV;
* a fast keystream cipher (``ctr-sha256``) built on SHA-256 in counter mode,
  standing in for the paper's remark that "there are other, more secure,
  algorithms that run faster than DES";
* hash functions (SHA-1, SHA-256) and a null hasher for partitions that do
  not need validation;
* a null cipher for partitions that do not need secrecy;
* a symmetric-key MAC (HMAC, written out explicitly) used to sign commit
  chunks and backup signatures;
* a registry that maps the names stored in partition leaders back to
  factories.
"""

from repro.crypto.cipher import Cipher, NullCipher
from repro.crypto.hashing import HashFunction, NullHash, Sha1Hash, Sha256Hash
from repro.crypto.mac import Mac
from repro.crypto.registry import (
    CIPHER_NAMES,
    HASH_NAMES,
    make_cipher,
    make_hash,
)

__all__ = [
    "Cipher",
    "NullCipher",
    "HashFunction",
    "NullHash",
    "Sha1Hash",
    "Sha256Hash",
    "Mac",
    "make_cipher",
    "make_hash",
    "CIPHER_NAMES",
    "HASH_NAMES",
]
