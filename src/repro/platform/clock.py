"""Injectable time source for retry backoff and lock timeouts.

Retry backoff (:mod:`repro.platform.retry`) and deadlock timeouts
(:class:`repro.objectstore.locks.LockManager`) both need a notion of
elapsed time.  Production code uses :class:`SystemClock`; tests inject a
:class:`FakeClock` so that exponential backoff and two-second lock
timeouts complete instantly — no test ever sleeps on the wall clock.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Monotonic time source with sleep and condition-wait primitives."""

    @abstractmethod
    def now(self) -> float:
        """Current monotonic time in seconds."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (backoff delays)."""

    @abstractmethod
    def wait_on(self, condition: "threading.Condition", timeout: float) -> bool:
        """Wait on ``condition`` (held) for up to ``timeout`` seconds.

        Returns ``True`` on a (possibly spurious) wake-up, ``False`` once
        the timeout has elapsed.  Like any condition variable, callers
        must re-check their predicate in a loop on ``True`` — a wake-up
        is permission to re-check, not a statement that the predicate
        holds.
        """


class SystemClock(Clock):
    """Real wall-clock time (monotonic)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait_on(self, condition: "threading.Condition", timeout: float) -> bool:
        return condition.wait(timeout=timeout)


class VirtualClock(Clock):
    """Deterministic clock for *multi-threaded* tests.

    :class:`FakeClock` burns a waiter's whole timeout instantly, which is
    right for single-threaded deadlock-timeout tests but useless for
    interleaving tests where one thread must genuinely block until another
    notifies it (or until the test advances time past its deadline).

    Here ``wait_on`` really blocks on the condition, but the *deadline* is
    measured in virtual time that only :meth:`advance` moves.  A real
    ``notify_all`` on the condition wakes the waiter immediately;
    advancing virtual time past the waiter's deadline makes it report a
    timeout.  Each real-time poll tick also returns ``True`` (a spurious
    wake-up, which the :class:`Clock` contract allows): CPython's timed
    ``Condition.wait`` can consume a ``notify_all`` that lands exactly as
    a poll tick expires, and a waiter that kept sleeping after that lost
    notification would sleep forever, since virtual time never moves on
    its own.  Returning to the caller's predicate loop instead makes
    every waiter re-check within one poll interval, so lost notifications
    cannot hang a test — outcomes still depend solely on virtual time and
    the shared-state predicates, so tests stay deterministic.
    """

    #: real seconds between deadline re-checks while blocked
    POLL_INTERVAL = 0.005

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._mutex = threading.Lock()

    def now(self) -> float:
        with self._mutex:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            with self._mutex:
                self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move virtual time forward (waiters re-check within one poll)."""
        with self._mutex:
            self._now += seconds

    def wait_on(self, condition: "threading.Condition", timeout: float) -> bool:
        deadline = self.now() + max(timeout, 0.0)
        condition.wait(timeout=self.POLL_INTERVAL)
        return self.now() < deadline


class FakeClock(Clock):
    """Deterministic clock for tests: sleeping just advances ``now``.

    ``wait_on`` advances time by the full timeout and reports a timeout
    (``False``) — exactly what a deadlock-timeout test wants: the waiter
    "waits" its whole budget without notification, instantly.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds
            self.sleeps.append(seconds)

    def advance(self, seconds: float) -> None:
        self._now += seconds

    def wait_on(self, condition: "threading.Condition", timeout: float) -> bool:
        self._now += max(timeout, 0.0)
        return False
