"""The offline inspection tool (attacker view vs trusted view)."""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.tools.inspect import attacker_view, render, trusted_view
from tests.conftest import make_config, make_platform


@pytest.fixture
def populated():
    platform = make_platform()
    store = ChunkStore.format(platform, make_config())
    pid = store.allocate_partition()
    store.commit(
        [
            ops.WritePartition(
                pid, cipher_name="ctr-sha256", hash_name="sha1", name="appdata"
            )
        ]
    )
    for i in range(10):
        store.commit([ops.WriteChunk(pid, store.allocate_chunk(pid), b"v" * 100)])
    store.checkpoint()
    return platform, store, pid


class TestAttackerView:
    def test_sees_only_plaintext_metadata(self, populated):
        platform, store, pid = populated
        view = attacker_view(platform.untrusted)
        assert view["format"] == "TDB v1"
        assert view["segment_size"] == store.config.segment_size
        assert view["validation_mode"] == "counter"
        # nothing about partitions, chunk counts, or contents
        assert "partitions" not in view
        assert "live_bytes" not in view

    def test_non_tdb_image(self):
        platform = make_platform(size=64 * 1024)
        view = attacker_view(platform.untrusted)
        assert "not a TDB store" in view["format"]

    def test_written_regions_look_random(self, populated):
        platform, store, pid = populated
        view = attacker_view(platform.untrusted)
        assert len(view["nonzero_density_samples"]) == 3
        # check the actually-written log head directly: ciphertext has
        # almost no zero bytes
        start = store.config.superblock_size
        blob = platform.untrusted.tamper_read(start, 2048)
        density = sum(1 for b in blob if b) / len(blob)
        assert density > 0.9


class TestTrustedView:
    def test_reports_partitions_and_stats(self, populated):
        platform, store, pid = populated
        view = trusted_view(store)
        named = [p for p in view["partitions"] if p["pid"] == pid]
        assert named and named[0]["name"] == "appdata"
        assert named[0]["chunks"] == 10
        assert view["stored_bytes"] > 0
        assert 0 < view["utilization"] <= 1.0
        assert view["segments"]["free"] > 0

    def test_render_is_stringy(self, populated):
        platform, store, pid = populated
        text = render(trusted_view(store))
        assert "partitions:" in text and "appdata" in text
        text2 = render(attacker_view(platform.untrusted))
        assert "TDB v1" in text2


class TestCli:
    def test_cli_on_file_store(self, tmp_path, capsys):
        from repro.platform import (
            CrashInjector,
            FileUntrustedStore,
            MemoryArchivalStore,
            SecretStore,
        )
        from repro.platform.tamper_resistant import (
            TamperResistantCounter,
            TamperResistantStore,
        )
        from repro.platform.trusted_platform import TrustedPlatform
        from repro.tools.inspect import main

        path = str(tmp_path / "store.img")
        injector = CrashInjector()
        file_store = FileUntrustedStore(path, 1 << 20, injector)
        platform = TrustedPlatform(
            secret_store=SecretStore.generate(),
            tamper_resistant=TamperResistantStore(),
            counter=TamperResistantCounter(),
            untrusted=file_store,
            archival=MemoryArchivalStore(),
            injector=injector,
        )
        store = ChunkStore.format(platform, make_config())
        store.close()
        file_store.close()
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "TDB v1" in out

    def test_cli_usage(self, capsys):
        from repro.tools.inspect import main

        assert main([]) == 2
