"""Crash recovery: roll-forward of the residual log (§4.8).

A crash loses buffered chunk-map updates; recovery reconstructs them by
reading the residual log sequentially from the leader and recomputing each
version's descriptor from its location and hash.  Validation differs by
mode:

* **direct hash** — the tamper-resistant store names the leader location
  and the log tail, and holds the chained hash of every version in
  between.  Recovery recomputes the chain as it reads; any divergence (or
  inability to read exactly up to the recorded tail) is tampering.
* **counter** — the (untrusted) superblock names the leader; the recovery
  procedure checks that the chunk at that location really is the leader
  (§4.9.2), then verifies each commit set against its signed commit chunk:
  the MAC must verify, the set hash must match, and the counts must form
  an exact sequence starting from the count recorded in the leader.  A
  trailing commit set that fails its checksum is a torn commit and is
  discarded (§4.9.3); a count-sequence violation is tampering.  Finally
  the last count is compared against the tamper-resistant counter within
  the configured Δut/Δtu windows.

Effects are applied through the same helpers normal commits use, so the
reconstructed volatile state (descriptor cache, allocation state, segment
accounting) is identical to what a non-crashed instance would hold.  In
counter mode, effects buffer per commit set and apply only after the
commit chunk verifies.

A system-leader version encountered *mid-log* is inert: it means the
superblock write that would have completed a checkpoint was lost in a
crash.  Rolling forward from the previous leader reconstructs exactly the
state the new leader describes, so recovery simply continues past it
(the next checkpoint will write a fresh leader).
"""

from __future__ import annotations

import logging
from typing import Callable, List, Optional, Tuple

from repro.chunkstore.descriptor import ChunkDescriptor, ChunkStatus
from repro.chunkstore.ids import (
    SYSTEM_PARTITION,
    ChunkId,
    data_id,
    leader_id,
    rank_to_partition,
)
from repro.chunkstore.leader import LeaderPayload
from repro.chunkstore.log import (
    CleanerRecord,
    CommitRecord,
    DeallocateRecord,
    NextSegmentRecord,
    VersionHeader,
    VersionKind,
)
from repro import obs
from repro.chunkstore.partition import PartitionState
from repro.errors import IOFaultError, TamperDetectedError


logger = logging.getLogger("repro.chunkstore.recovery")


class _TornTail(Exception):
    """Internal: the log ends in an incomplete (torn) commit set."""


def recover(store) -> None:
    """Reopen ``store`` from its platform: validate and roll forward."""
    with obs.span("recovery"), obs.time_block("chunkstore.recovery"):
        _Recovery(store).run()


class _Recovery:
    def __init__(self, store) -> None:
        self.store = store
        self.config = store.config
        self.codec = store.codec
        self.segman = store.segman
        self.untrusted = store.platform.untrusted
        self.direct = self.config.validation_mode == "direct"
        #: whole-segment spans buffered for the roll-forward, keyed by
        #: segment index; ``None`` marks a span whose batched read faulted
        #: (those segments fall back to the per-version read path so
        #: retries and quarantine semantics stay byte-for-byte identical)
        self._spans: dict = {}

    # -- plumbing -------------------------------------------------------------

    def _segment_bytes(self, segment: int) -> Optional[memoryview]:
        """The segment's whole span, fetched in one round trip on first
        touch and held as a ``memoryview`` so per-version header/body
        slices are views into the one buffer, not copies.  Recovery never
        writes the log, so the buffer cannot go stale; a fault disables
        buffering for that segment only."""
        if segment not in self._spans:
            start = self.segman.segment_start(segment)
            try:
                (blob,) = self.store._io_read_many(
                    [(start, self.config.segment_size)]
                )
                self._spans[segment] = memoryview(blob)
            except IOFaultError:
                self._spans[segment] = None
        return self._spans[segment]

    def _read_version(self, location: int) -> Tuple[VersionHeader, bytes, bytes]:
        """Read one version; returns (header, header_ct, body_ct).

        Served from the segment-span buffer (one round trip per residual
        segment instead of two per version); raises TamperDetectedError if
        the bytes do not parse as a version (in counter mode the caller
        converts a failure at the log tail into a torn-commit truncation).
        """
        header_size = self.codec.header_cipher_size
        segment = self.segman.segment_of(location)
        segment_start = self.segman.segment_start(segment)
        segment_end = segment_start + self.config.segment_size
        if location + header_size > segment_end:
            raise TamperDetectedError("version header crosses a segment boundary")
        span = self._segment_bytes(segment)
        if span is None:  # the span read faulted: per-version fallback
            header_ct = self.store._io_read(location, header_size)
            header = self.codec.parse_header(header_ct)
            if location + header_size + header.body_cipher_size > segment_end:
                raise TamperDetectedError(
                    "version body crosses a segment boundary"
                )
            body_ct = self.store._io_read(
                location + header_size, header.body_cipher_size
            )
            return header, header_ct, body_ct
        offset = location - segment_start
        header_ct = span[offset : offset + header_size]
        header = self.codec.parse_header(header_ct)
        if location + header_size + header.body_cipher_size > segment_end:
            raise TamperDetectedError("version body crosses a segment boundary")
        body_start = offset + header_size
        body_ct = span[body_start : body_start + header.body_cipher_size]
        return header, header_ct, body_ct

    # -- main ----------------------------------------------------------------

    def run(self) -> None:
        """Execute recovery (see the module docstring for the protocol)."""
        store = self.store
        if self.direct:
            expected_chain, tr_tail, leader_loc = store.validator.read_tr()
        else:
            stored = type(store)._read_superblock(store.platform)
            leader_loc = getattr(stored, "stored_leader_location", 0)
            expected_chain, tr_tail = b"", None

        # --- load and check the leader -------------------------------------
        try:
            header, header_ct, body_ct = self._read_version(leader_loc)
        except TamperDetectedError as exc:
            raise TamperDetectedError(f"cannot read leader: {exc}") from exc
        if header.kind != VersionKind.NAMED or header.chunk_id != leader_id(
            SYSTEM_PARTITION
        ):
            raise TamperDetectedError(
                "the chunk at the stored leader location is not the leader"
            )
        body = self.codec.decrypt_body(header, body_ct, self.codec.system_cipher)
        try:
            payload = LeaderPayload.decode(body)
        except ValueError as exc:
            raise TamperDetectedError(f"undecodable leader payload: {exc}") from exc
        if payload.system is None:
            raise TamperDetectedError("leader payload lacks system extras")
        store.partitions.clear()
        store.cache.clear()
        # crash recovery invalidates every cached payload: the committed
        # state is being reconstructed from the durable log
        store.payloads.clear()
        obs.emit("cache_invalidation", cache="payload", reason="recovery")
        store._read_cursor.clear()
        store.partitions[SYSTEM_PARTITION] = PartitionState.open(
            SYSTEM_PARTITION, payload, key_override=store._system_key
        )
        self.segman.load_table(payload.system.segments)
        store._leader_location = leader_loc

        leader_size = len(header_ct) + len(body_ct)
        validator = store.validator
        if self.direct:
            validator.reset_chain()
        else:
            validator.begin_commit()
        validator.note_parts(header_ct, body_ct)

        leader_segment = self.segman.segment_of(leader_loc)
        cursor = leader_loc + leader_size
        self._set_tail(cursor, leader_segment)
        if leader_segment not in self.segman.residual_segments:
            self.segman.residual_segments = [leader_segment]

        # --- roll forward ----------------------------------------------------
        expected_count = payload.system.checkpoint_count
        pending: List[Callable[[], None]] = []
        #: pre-announced cleaner targets: (height, rank, pids), in order
        cleaner_queue: List[Tuple[int, int, List[int]]] = []
        last_good = cursor
        claims_since_good: List[int] = []

        try:
            while True:
                if self.direct:
                    if cursor == tr_tail:
                        break
                    if tr_tail is not None and cursor > tr_tail:
                        raise TamperDetectedError(
                            "residual log overran the recorded tail"
                        )
                try:
                    header, header_ct, body_ct = self._read_version(cursor)
                except TamperDetectedError:
                    if self.direct:
                        raise TamperDetectedError(
                            "residual log unreadable before the recorded tail"
                        )
                    raise _TornTail()
                version_len = len(header_ct) + len(body_ct)
                kind = header.kind

                if kind == VersionKind.NEXT_SEGMENT:
                    if self.direct:
                        validator.note_parts(header_ct, body_ct)
                    try:
                        record = NextSegmentRecord.decode(
                            self.codec.decrypt_body(
                                header, body_ct, self.codec.system_cipher
                            )
                        )
                        nxt = record.next_segment
                        if not 0 <= nxt < self.segman.segment_count:
                            raise TamperDetectedError(
                                "next-segment index out of range"
                            )
                        if nxt in self.segman.residual_segments:
                            raise TamperDetectedError("next-segment chain loops")
                    except TamperDetectedError:
                        if self.direct:
                            raise
                        # stale residue of a reclaimed segment: torn tail
                        raise _TornTail()
                    if nxt in self.segman.free_segments:
                        self.segman.free_segments.remove(nxt)
                    self.segman.residual_segments.append(nxt)
                    claims_since_good.append(nxt)
                    self._advance(cursor, version_len)
                    cursor = self.segman.segment_start(nxt)
                    self._set_tail(cursor, nxt)
                    continue

                if kind == VersionKind.COMMIT:
                    if self.direct:
                        raise TamperDetectedError(
                            "commit chunk found under direct hash validation"
                        )
                    set_hash = validator.current_set_hash()
                    try:
                        record = CommitRecord.decode(
                            self.codec.decrypt_body(
                                header, body_ct, self.codec.system_cipher
                            )
                        )
                    except (TamperDetectedError, ValueError):
                        raise _TornTail()
                    if not validator.verify_commit_record(record, set_hash):
                        raise _TornTail()
                    if record.count < expected_count:
                        # a validly-signed but *older* commit set can only be
                        # stale residue of a reclaimed segment beyond the true
                        # tail (or an attacker splicing old sets, which the
                        # final counter-window check bounds): torn tail
                        raise _TornTail()
                    if record.count > expected_count:
                        raise TamperDetectedError(
                            f"commit count sequence broken: expected "
                            f"{expected_count}, found {record.count}"
                        )
                    if cleaner_queue:
                        raise TamperDetectedError(
                            "cleaner record not fully consumed by its commit set"
                        )
                    for effect in pending:
                        effect()
                    pending.clear()
                    expected_count += 1
                    self._advance(cursor, version_len)
                    cursor += version_len
                    last_good = cursor
                    claims_since_good.clear()
                    validator.begin_commit()
                    continue

                # NAMED / DEALLOCATE / CLEANER all count into the set hash
                validator.note_parts(header_ct, body_ct)
                try:
                    effect = self._effect_for(header, body_ct, cursor, cleaner_queue)
                except TamperDetectedError:
                    if self.direct:
                        raise
                    raise _TornTail()  # undecodable stale residue
                if effect is not None:
                    if self.direct:
                        effect()
                    else:
                        pending.append(effect)
                self._advance(cursor, version_len)
                cursor += version_len
                if self.direct:
                    last_good = cursor
        except _TornTail:
            obs.emit(
                "torn_tail",
                at=cursor,
                discarded_segments=len(claims_since_good),
            )
            # Discard the incomplete suffix: un-claim segments the torn
            # region pulled in and truncate the tail.
            for segment in claims_since_good:
                if segment in self.segman.residual_segments:
                    self.segman.residual_segments.remove(segment)
                self.segman.used_bytes[segment] = 0
                self.segman.live_bytes[segment] = 0
                if segment not in self.segman.free_segments:
                    self.segman.free_segments.append(segment)
            pending.clear()
            cleaner_queue.clear()
            cursor = last_good

        if self.direct:
            if validator.chain != expected_chain:
                raise TamperDetectedError(
                    "residual log hash does not match the tamper-resistant store"
                )
        else:
            validator.check_final_count(expected_count - 1)
            validator.begin_commit()

        tail_segment = self.segman.segment_of(cursor)
        self._set_tail(cursor, tail_segment)
        self.segman.used_bytes[tail_segment] = (
            cursor - self.segman.segment_start(tail_segment)
        )

        for state in store.partitions.values():
            state.reset_allocator()
        obs.emit(
            "recovery_replay",
            mode=self.config.validation_mode,
            tail=cursor,
            commit_sets=(
                0 if self.direct
                else expected_count - payload.system.checkpoint_count
            ),
            partitions=len(store.partitions),
        )
        logger.info(
            "recovery complete: mode=%s, tail at %d, %d partition(s) open",
            self.config.validation_mode,
            cursor,
            len(store.partitions),
        )

    # -- helpers ----------------------------------------------------------------

    def _set_tail(self, cursor: int, segment: int) -> None:
        self.segman.tail_segment = segment
        self.segman.tail_offset = cursor - self.segman.segment_start(segment)
        self.segman.used_bytes[segment] = max(
            self.segman.used_bytes[segment], self.segman.tail_offset
        )

    def _advance(self, location: int, size: int) -> None:
        segment = self.segman.segment_of(location)
        offset = location - self.segman.segment_start(segment) + size
        self.segman.used_bytes[segment] = max(self.segman.used_bytes[segment], offset)
        self.segman.tail_segment = segment
        self.segman.tail_offset = offset

    def _effect_for(
        self,
        header: VersionHeader,
        body_ct: bytes,
        location: int,
        cleaner_queue: List[Tuple[int, int, List[int]]],
    ) -> Optional[Callable[[], None]]:
        store = self.store
        codec = self.codec
        kind = header.kind

        if kind == VersionKind.DEALLOCATE:
            record = DeallocateRecord.decode(
                codec.decrypt_body(header, body_ct, codec.system_cipher)
            )

            def dealloc_effect() -> None:
                for cid in record.chunk_ids:
                    store._apply_chunk_dealloc(cid)
                if record.partition_ids:
                    store._apply_partition_dealloc(record.partition_ids)

            return dealloc_effect

        if kind == VersionKind.CLEANER:
            record = CleanerRecord.decode(
                codec.decrypt_body(header, body_ct, codec.system_cipher)
            )
            cleaner_queue.extend(record.entries)
            return None

        if kind != VersionKind.NAMED:
            raise TamperDetectedError(f"unexpected version kind {kind}")

        cid = header.chunk_id
        if cid == leader_id(SYSTEM_PARTITION):
            return None  # inert: an unadopted checkpoint leader (see docstring)

        # Is this version a cleaner rewrite announced by a CLEANER record?
        targets: Optional[List[int]] = None
        if cleaner_queue and cleaner_queue[0][:2] == (header.height, header.rank):
            _height, _rank, targets = cleaner_queue.pop(0)

        if (
            cid.partition == SYSTEM_PARTITION
            and cid.height == 0
            and targets is None
        ):
            # a partition leader: decode now (system cipher), apply later
            body, digest = codec.validate_named(
                header, body_ct, codec.system_cipher,
                store.partitions[SYSTEM_PARTITION].hash,
            )
            try:
                payload = LeaderPayload.decode(body)
            except ValueError as exc:
                raise TamperDetectedError(
                    f"undecodable partition leader at {location}: {exc}"
                ) from exc
            descriptor = ChunkDescriptor(
                ChunkStatus.WRITTEN,
                location,
                codec.header_cipher_size + len(body_ct),
                digest,
            )
            pid = rank_to_partition(cid.rank)

            def leader_effect() -> None:
                store._apply_partition_leader(pid, payload, descriptor)

            return leader_effect

        def chunk_effect() -> None:
            state = store._state(header.partition)
            _body, digest = codec.validate_named(
                header, body_ct, state.cipher, state.hash
            )
            descriptor = ChunkDescriptor(
                ChunkStatus.WRITTEN,
                location,
                codec.header_cipher_size + len(body_ct),
                digest,
            )
            if targets is None:
                store._apply_chunk_write(cid, descriptor)
            else:
                for pid in targets:
                    store._apply_chunk_write(
                        ChunkId(pid, cid.height, cid.rank), descriptor.copy()
                    )

        return chunk_effect
