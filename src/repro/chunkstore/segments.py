"""Segment management (§4.9.4, §4.9.5).

The untrusted store is divided into fixed-size segments.  The log is a
sequence of potentially non-adjacent segments chained by next-segment
chunks.  This module tracks, per segment:

* ``used_bytes`` — how far the log wrote into the segment (the extent the
  cleaner and recovery may read sequentially);
* ``live_bytes`` — an *estimate* of current (non-obsolete) data, driving
  the cleaner's segment selection.  The estimate ignores sharing between
  partition copies (a version superseded in P may still be current in a
  copy of P), which can only make a segment look *emptier* than it is;
  the cleaner re-checks currency per version, so this costs efficiency,
  never correctness.

Layout: segment ``i`` occupies bytes
``[superblock_size + i·segment_size, superblock_size + (i+1)·segment_size)``
of the untrusted store.

Deviation from the paper, documented: each checkpoint starts a fresh
segment, so the residual log always begins at a segment boundary.  The
paper instead records an arbitrary leader location; starting a segment
costs a little space per checkpoint and simplifies the residual-chain
bookkeeping.
"""

from __future__ import annotations

from typing import List

from repro.bench.profiler import profiled, record_metric
from repro.chunkstore.leader import SegmentTable
from repro.errors import StorageFullError


class LogWriteBuffer:
    """Coalesces contiguous log appends into one ``untrusted.write`` per span.

    The commit path appends many small versions at strictly increasing,
    adjacent locations; issuing one untrusted-store write per version
    costs a syscall-shaped round trip each (and, in the paper's model, a
    device command each).  This buffer accumulates the bytes while appends
    stay contiguous and *seals* — issues the single combined write — when:

    * an append lands at a non-adjacent location (a segment jump),
    * the store is about to flush or read the device (``seal`` is called
      from ``_flush_untrusted``, ``_read_version_at``, and the cleaner),
    * a commit or checkpoint finishes.

    Sealing is transparent to crash semantics: buffered bytes have simply
    not reached the untrusted store yet, exactly like unflushed writes
    have not reached the durable image — nothing is durable before
    ``flush`` either way.  Every public chunk-store entry point leaves the
    buffer empty, so the attacker-visible image (``tamper_read`` /
    ``tamper_image``) never lags the log between operations.
    """

    def __init__(self, untrusted, retrier=None) -> None:
        self._untrusted = untrusted
        #: optional :class:`~repro.platform.retry.Retrier` for the issued write
        self._retrier = retrier
        self._start = 0
        self._length = 0
        self._chunks: List[bytes] = []
        #: appends accepted — what the write count would be without coalescing
        self.appends = 0
        #: untrusted.write calls actually issued
        self.writes_issued = 0
        #: total bytes appended through the buffer
        self.bytes_appended = 0

    @property
    def pending_bytes(self) -> int:
        return self._length

    def append(self, location: int, data: bytes) -> None:
        """Buffer ``data`` destined for ``location``; auto-seals first if
        the write is not adjacent to the pending span.  ``data`` may be
        any bytes-like span (``memoryview`` slices buffer without a
        copy); the single join happens at :meth:`seal`."""
        if self._chunks and location != self._start + self._length:
            self.seal()
        if not self._chunks:
            self._start = location
        self._chunks.append(data)
        self._length += len(data)
        self.appends += 1
        self.bytes_appended += len(data)

    def append_parts(self, location: int, parts) -> None:
        """Writev-style :meth:`append`: buffer several spans destined for
        consecutive locations starting at ``location`` without joining
        them first (they coalesce into the seal's single join)."""
        offset = location
        for part in parts:
            self.append(offset, part)
            offset += len(part)

    def seal(self) -> None:
        """Issue the pending span as one untrusted-store write.

        The buffer is cleared only after the write succeeds: a transient
        fault that escapes the retrier leaves the span pending, so the
        bytes are re-issued (not silently dropped) on the next seal."""
        if not self._chunks:
            return
        data = (
            bytes(self._chunks[0])
            if len(self._chunks) == 1
            else b"".join(self._chunks)
        )
        coalesced = len(self._chunks) - 1

        def issue() -> None:
            with profiled("untrusted store write"):
                self._untrusted.write(self._start, data)

        if self._retrier is not None:
            self._retrier.call(issue, "log write")
        else:
            issue()
        self._chunks = []
        self._length = 0
        self.writes_issued += 1
        record_metric("log writes coalesced", coalesced)


class SegmentManager:
    """Allocation, tail tracking, and utilization accounting for segments."""

    def __init__(
        self, superblock_size: int, segment_size: int, store_size: int
    ) -> None:
        self.superblock_size = superblock_size
        self.segment_size = segment_size
        self.segment_count = (store_size - superblock_size) // segment_size
        if self.segment_count < 2:
            raise ValueError(
                "untrusted store too small: need at least 2 segments"
            )
        self.used_bytes: List[int] = [0] * self.segment_count
        self.live_bytes: List[int] = [0] * self.segment_count
        self.free_segments: List[int] = list(range(self.segment_count - 1, -1, -1))
        self.tail_segment: int = 0
        self.tail_offset: int = 0
        self.residual_segments: List[int] = []

    # -- geometry ------------------------------------------------------------

    def segment_start(self, segment: int) -> int:
        return self.superblock_size + segment * self.segment_size

    def segment_of(self, location: int) -> int:
        return (location - self.superblock_size) // self.segment_size

    @property
    def tail_location(self) -> int:
        return self.segment_start(self.tail_segment) + self.tail_offset

    def remaining_in_tail(self) -> int:
        return self.segment_size - self.tail_offset

    # -- allocation ----------------------------------------------------------

    def claim_free_segment(self) -> int:
        """Take a free segment for the log chain."""
        if not self.free_segments:
            raise StorageFullError(
                "no free segments; the log is full (clean or grow the store)"
            )
        segment = self.free_segments.pop()
        self.used_bytes[segment] = 0
        self.live_bytes[segment] = 0
        return segment

    def free_segment_count(self) -> int:
        return len(self.free_segments)

    def jump_to(self, segment: int) -> None:
        """Move the tail to the start of ``segment`` (already claimed)."""
        self.tail_segment = segment
        self.tail_offset = 0
        self.residual_segments.append(segment)

    def begin_residual(self, segment: int) -> None:
        """A checkpoint starts: the residual log restarts at ``segment``."""
        self.residual_segments = [segment]
        self.tail_segment = segment
        self.tail_offset = 0

    def advance(self, nbytes: int) -> None:
        self.tail_offset += nbytes
        if self.tail_offset > self.segment_size:
            raise AssertionError("log tail overran its segment")
        self.used_bytes[self.tail_segment] = max(
            self.used_bytes[self.tail_segment], self.tail_offset
        )

    def release_segment(self, segment: int) -> None:
        """Mark a cleaned segment free (volatile until next checkpoint)."""
        if segment in self.residual_segments:
            raise AssertionError("must not release a residual-log segment")
        self.used_bytes[segment] = 0
        self.live_bytes[segment] = 0
        self.free_segments.append(segment)

    # -- utilization ---------------------------------------------------------

    def add_live(self, location: int, nbytes: int) -> None:
        self.live_bytes[self.segment_of(location)] += nbytes

    def sub_live(self, location: int, nbytes: int) -> None:
        segment = self.segment_of(location)
        self.live_bytes[segment] = max(0, self.live_bytes[segment] - nbytes)

    def cleanable_segments(self) -> List[int]:
        """Checkpointed-log segments, emptiest first (§4.9.5)."""
        residual = set(self.residual_segments)
        free = set(self.free_segments)
        candidates = [
            seg
            for seg in range(self.segment_count)
            if seg not in residual and seg not in free and self.used_bytes[seg] > 0
        ]
        candidates.sort(key=lambda seg: self.live_bytes[seg])
        return candidates

    def stored_bytes(self) -> int:
        """Total bytes the log currently occupies (for §9.3/§9.5.2)."""
        return sum(self.used_bytes)

    def live_total(self) -> int:
        return sum(self.live_bytes)

    # -- persistence ---------------------------------------------------------

    def to_table(self) -> SegmentTable:
        return SegmentTable(
            tail_segment=self.tail_segment,
            free_segments=list(self.free_segments),
            used_bytes=list(self.used_bytes),
            live_bytes=list(self.live_bytes),
            residual_segments=list(self.residual_segments),
        )

    def load_table(self, table: SegmentTable) -> None:
        if len(table.used_bytes) != self.segment_count:
            raise ValueError(
                "segment table size mismatch: store geometry changed?"
            )
        self.tail_segment = table.tail_segment
        self.free_segments = list(table.free_segments)
        self.used_bytes = list(table.used_bytes)
        self.live_bytes = list(table.live_bytes)
        self.residual_segments = list(table.residual_segments)
        self.tail_offset = table.used_bytes[table.tail_segment]
