"""Wire formats: descriptors, leader payloads, log versions, unnamed
chunk records (§4.3, §4.9, §5.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.chunkstore.descriptor import (
    ChunkDescriptor,
    ChunkStatus,
    decode_descriptor_vector,
    encode_descriptor_vector,
)
from repro.chunkstore.ids import ChunkId
from repro.chunkstore.leader import LeaderPayload, SegmentTable, SystemExtras
from repro.chunkstore.log import (
    CleanerRecord,
    CommitRecord,
    DeallocateRecord,
    LogCodec,
    NextSegmentRecord,
    VersionHeader,
    VersionKind,
)
from repro.crypto.hashing import Sha1Hash
from repro.crypto.modes import CtrStreamCipher
from repro.errors import TamperDetectedError


def descriptors_strategy():
    return st.one_of(
        st.just(ChunkDescriptor()),
        st.just(ChunkDescriptor(ChunkStatus.FREE)),
        st.builds(
            ChunkDescriptor,
            st.just(ChunkStatus.WRITTEN),
            st.integers(0, 2**40),
            st.integers(0, 2**20),
            st.binary(min_size=20, max_size=20),
        ),
    )


class TestDescriptors:
    @given(st.lists(descriptors_strategy(), min_size=1, max_size=64))
    def test_vector_roundtrip(self, descriptors):
        data = encode_descriptor_vector(descriptors)
        decoded = decode_descriptor_vector(data)
        assert len(decoded) == len(descriptors)
        for a, b in zip(descriptors, decoded):
            assert a.status == b.status
            if a.is_written():
                assert (a.location, a.length, a.body_hash) == (
                    b.location,
                    b.length,
                    b.body_hash,
                )

    def test_same_version_semantics(self):
        a = ChunkDescriptor(ChunkStatus.WRITTEN, 100, 10, b"h" * 20)
        relocated = ChunkDescriptor(ChunkStatus.WRITTEN, 999, 10, b"h" * 20)
        changed = ChunkDescriptor(ChunkStatus.WRITTEN, 100, 10, b"x" * 20)
        assert a.same_version(relocated)  # cleaner moved it: same content
        assert not a.same_version(changed)
        assert not a.same_version(ChunkDescriptor(ChunkStatus.FREE))

    def test_same_version_null_hash_falls_back_to_location(self):
        a = ChunkDescriptor(ChunkStatus.WRITTEN, 100, 10, b"")
        b = ChunkDescriptor(ChunkStatus.WRITTEN, 100, 10, b"")
        c = ChunkDescriptor(ChunkStatus.WRITTEN, 200, 10, b"")
        assert a.same_version(b)
        assert not a.same_version(c)


class TestLeaderPayload:
    def test_roundtrip_full(self):
        payload = LeaderPayload(
            cipher_name="des-cbc",
            hash_name="sha1",
            key=b"k" * 8,
            name="my-partition",
            tree_height=3,
            root=ChunkDescriptor(ChunkStatus.WRITTEN, 4096, 100, b"r" * 20),
            next_rank=1000,
            free_ranks={3, 77, 500},
            copies=[5, 9],
            copy_of=2,
        )
        decoded = LeaderPayload.decode(payload.encode())
        assert decoded.cipher_name == "des-cbc"
        assert decoded.name == "my-partition"
        assert decoded.free_ranks == {3, 77, 500}
        assert decoded.copies == [5, 9]
        assert decoded.copy_of == 2
        assert decoded.root.location == 4096
        assert decoded.system is None

    def test_roundtrip_system(self):
        payload = LeaderPayload(
            cipher_name="3des-cbc",
            hash_name="sha1",
            system=SystemExtras(
                segments=SegmentTable(
                    tail_segment=2,
                    free_segments=[5, 6],
                    used_bytes=[10, 20, 30, 0, 0, 0, 0],
                    live_bytes=[5, 10, 30, 0, 0, 0, 0],
                    residual_segments=[2],
                ),
                checkpoint_count=42,
                restore_history={1: 7},
                backup_bases={1: 9},
            ),
        )
        decoded = LeaderPayload.decode(payload.encode())
        assert decoded.system.checkpoint_count == 42
        assert decoded.system.segments.used_bytes == [10, 20, 30, 0, 0, 0, 0]
        assert decoded.system.restore_history == {1: 7}
        assert decoded.system.backup_bases == {1: 9}

    def test_snapshot_copy_shares_root_but_not_name(self):
        payload = LeaderPayload(
            cipher_name="des-cbc",
            hash_name="sha1",
            key=b"k" * 8,
            name="source",
            tree_height=1,
            root=ChunkDescriptor(ChunkStatus.WRITTEN, 10, 10, b"h" * 20),
            next_rank=5,
            free_ranks={2},
            copies=[4],
        )
        snap = payload.copy_for_snapshot()
        assert snap.root.location == 10
        assert snap.key == payload.key
        assert snap.name == ""  # names are not inherited
        assert snap.copies == []
        assert snap.free_ranks == {2}
        snap.free_ranks.add(99)
        assert 99 not in payload.free_ranks  # deep enough copy


class TestLogCodec:
    def codec(self):
        return LogCodec(CtrStreamCipher(b"k" * 16), Sha1Hash())

    def test_named_version_roundtrip(self):
        codec = self.codec()
        cid = ChunkId(3, 0, 17)
        body_cipher = CtrStreamCipher(b"p" * 16)
        version, digest = codec.build_named(cid, b"hello body", body_cipher, Sha1Hash())
        header = codec.parse_header(version[: codec.header_cipher_size])
        assert header.kind == VersionKind.NAMED
        assert header.chunk_id == cid
        assert header.body_plain_size == 10
        body = codec.decrypt_body(
            header, version[codec.header_cipher_size :], body_cipher
        )
        assert body == b"hello body"
        assert codec.descriptor_hash(header, body, Sha1Hash()) == digest

    def test_version_size_prediction(self):
        codec = self.codec()
        body_cipher = CtrStreamCipher(b"p" * 16)
        version, _ = codec.build_named(
            ChunkId(1, 0, 0), b"x" * 100, body_cipher, Sha1Hash()
        )
        assert len(version) == codec.version_size(100, body_cipher)

    def test_unnamed_version(self):
        codec = self.codec()
        version = codec.build_unnamed(VersionKind.DEALLOCATE, b"payload")
        header = codec.parse_header(version[: codec.header_cipher_size])
        assert header.kind == VersionKind.DEALLOCATE
        assert (
            codec.decrypt_body(header, version[codec.header_cipher_size :], codec.system_cipher)
            == b"payload"
        )

    def test_garbage_header_raises_tamper(self):
        codec = self.codec()
        with pytest.raises(TamperDetectedError):
            codec.parse_header(b"\x00" * codec.header_cipher_size)

    def test_wrong_body_size_raises_tamper(self):
        codec = self.codec()
        body_cipher = CtrStreamCipher(b"p" * 16)
        version, _ = codec.build_named(
            ChunkId(1, 0, 0), b"body", body_cipher, Sha1Hash()
        )
        header = codec.parse_header(version[: codec.header_cipher_size])
        with pytest.raises(TamperDetectedError):
            codec.decrypt_body(header, b"", body_cipher)

    def test_descriptor_hash_binds_identity(self):
        """Same body at a different position hashes differently —
        defeating version-swap attacks."""
        codec = self.codec()
        body_cipher = CtrStreamCipher(b"p" * 16)
        _, digest1 = codec.build_named(
            ChunkId(1, 0, 1), b"same", body_cipher, Sha1Hash()
        )
        _, digest2 = codec.build_named(
            ChunkId(1, 0, 2), b"same", body_cipher, Sha1Hash()
        )
        assert digest1 != digest2


class TestUnnamedRecords:
    def test_deallocate_roundtrip(self):
        record = DeallocateRecord(
            [ChunkId(1, 0, 5), ChunkId(2, 1, 0)], [3, 4]
        )
        decoded = DeallocateRecord.decode(record.encode())
        assert decoded.chunk_ids == record.chunk_ids
        assert decoded.partition_ids == [3, 4]

    def test_commit_record_roundtrip(self):
        record = CommitRecord(99, b"h" * 20, b"m" * 20)
        decoded = CommitRecord.decode(record.encode())
        assert (decoded.count, decoded.set_hash, decoded.mac_tag) == (
            99,
            b"h" * 20,
            b"m" * 20,
        )

    def test_next_segment_fixed_width(self):
        assert len(NextSegmentRecord(0).encode()) == len(
            NextSegmentRecord(2**31).encode()
        )
        assert NextSegmentRecord.decode(NextSegmentRecord(7).encode()).next_segment == 7

    def test_next_segment_malformed(self):
        with pytest.raises(TamperDetectedError):
            NextSegmentRecord.decode(b"xx")

    def test_cleaner_record_roundtrip(self):
        record = CleanerRecord([(0, 5, [1, 2]), (1, 0, [3])])
        decoded = CleanerRecord.decode(record.encode())
        assert decoded.entries == [(0, 5, [1, 2]), (1, 0, [3])]


class TestPaperSizeFidelity:
    def test_map_chunk_size_matches_paper_ballpark(self):
        """§9.2.2: 'each map chunk has 64 descriptors and has a size of
        1.5 KB' — our fanout-64 map chunk must be the same kind of size."""
        from repro.chunkstore.descriptor import (
            ChunkDescriptor,
            ChunkStatus,
            encode_descriptor_vector,
        )

        descriptors = [
            ChunkDescriptor(
                ChunkStatus.WRITTEN,
                location=4096 + i * 600,
                length=560,
                body_hash=bytes(20),
            )
            for i in range(64)
        ]
        body = encode_descriptor_vector(descriptors)
        assert 1200 <= len(body) <= 2500, len(body)

    def test_per_chunk_descriptor_overhead(self):
        """§9.3: the descriptor contributes a couple dozen bytes to the
        ~52 B/chunk overhead."""
        from repro.chunkstore.descriptor import ChunkDescriptor, ChunkStatus
        from repro.util.codec import Encoder

        enc = Encoder()
        ChunkDescriptor(
            ChunkStatus.WRITTEN, location=10**7, length=560, body_hash=bytes(20)
        ).encode(enc)
        assert 20 <= len(enc.finish()) <= 40
