"""Seeded adversarial mutation engine (the tentpole of `repro.testing`).

TDB's core claim (§1–2) is universal, not statistical: *any* modification
or replay of untrusted bytes is detected on the hash-link path.  The
:class:`Adversary` turns that claim into an executable oracle.  Given a
populated multi-partition store, it applies one seeded attack per trial —
drawn from the mutation-class taxonomy below — and then judges every
subsequent trusted read against:

    every read either returns the correct committed bytes or raises
    :class:`TamperDetectedError` — never silent corruption, never a
    non-TDB exception.

Mutation classes
================

``bit_flip``
    flip 1–8 random bits anywhere in the device image;
``extent_zero``
    zero a random extent (half the time a known chunk version's extent);
``extent_garbage``
    overwrite a random extent with seeded random bytes;
``extent_swap``
    swap the stored bytes of two chunk versions (same partition or not);
``stale_extent_replay``
    copy an extent from an *older authentic image* of the same device
    over the current image — a targeted replay (§4.8.1);
``cross_partition_splice``
    write one partition's version bytes at another partition's version
    location — splicing across cipher/hash domains;
``image_replay``
    replace the whole device with a stale-but-authentic image — the §2.1
    replay attack.  Detection is *mandatory* for this class (the scenario
    keeps every snapshot more than Δut commits stale);
``torn_race``
    crash the store between the untrusted flush and the tamper-resistant
    update (sites shared with the crash sweep via
    :mod:`repro.testing.sweep`), tamper while the system is down, then
    recover.  The raced commit may atomically appear or vanish; everything
    older must survive exactly.

Every trial is reproducible from its integer seed: the scenario is rebuilt
from scratch and the attack parameters are drawn from
``random.Random(seed)``.  Chunk placement is deterministic, so a seed
names the same structural attack on every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chunkstore import ChunkStore, StoreConfig, ops
from repro.chunkstore.ids import data_id
from repro.errors import CrashError, TamperDetectedError, TDBError
from repro.platform.trusted_platform import TrustedPlatform
from repro.platform.untrusted import UntrustedStore
from repro.testing.snapshot import PlatformSnapshot

# -- outcomes -----------------------------------------------------------------

HARMLESS = "harmless"  # store opened, every read returned committed bytes
DETECTED = "detected"  # TamperDetectedError (or a TDB refusal at open)
SILENT_CORRUPTION = "silent-corruption"  # wrong bytes, or state lost quietly
FOREIGN_ERROR = "foreign-error"  # a non-TDB exception escaped

#: crash sites between "operation issued" and "tamper-resistant update
#: done" — the window the torn_race class races (shared with the crash
#: sweep's discovered points)
RACE_POINTS = (
    "commit.write",
    "commit.before_flush",
    "commit.after_flush",
    "commit.after_tr",
)


@dataclass(frozen=True)
class TrialReport:
    """Outcome of one seeded mutation trial."""

    seed: int
    attack: str
    outcome: str
    detail: str

    @property
    def failed(self) -> bool:
        return self.outcome in (SILENT_CORRUPTION, FOREIGN_ERROR)

    def repro_line(self, mode: str) -> str:
        return f"make adversary MODE={mode} SEED={self.seed} CLASS={self.attack}"


@dataclass
class SweepResult:
    """Aggregate of an adversary sweep."""

    mode: str
    reports: List[TrialReport] = field(default_factory=list)

    @property
    def failures(self) -> List[TrialReport]:
        return [r for r in self.reports if r.failed]

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for report in self.reports:
            counts[report.outcome] = counts.get(report.outcome, 0) + 1
        return counts

    def classes_exercised(self) -> List[str]:
        return sorted({r.attack for r in self.reports})

    def by_class(self) -> Dict[str, Dict[str, int]]:
        table: Dict[str, Dict[str, int]] = {}
        for report in self.reports:
            row = table.setdefault(report.attack, {})
            row[report.outcome] = row.get(report.outcome, 0) + 1
        return table


# -- scenario ------------------------------------------------------------------


@dataclass
class Scenario:
    """A populated store, frozen for repeated adversary trials."""

    mode: str
    final: PlatformSnapshot
    #: committed bytes of every written data chunk: (pid, rank) -> bytes
    expected: Dict[Tuple[int, int], bytes]
    #: on-device extent of every chunk's current version: (pid, rank) ->
    #: (location, length)
    extents: Dict[Tuple[int, int], Tuple[int, int]]
    #: authentic images captured > Δut commits before the final state,
    #: oldest first (fodder for replay attacks)
    stale_images: List[bytes]
    pids: List[int]
    #: the system cipher the scenario was built (and must be reopened) with
    system_cipher: str = "ctr-sha256"


#: (cipher, hash) per scenario partition — spanning the null cipher, the
#: keystream cipher, and a block cipher, with both hash widths
PARTITION_SPECS = (
    ("null", "sha1"),
    ("ctr-sha256", "sha1"),
    ("xtea-cbc", "sha256"),
)

#: the AEAD sweep's partitions: both authenticating suites (where the
#: descriptor stores the auth tag and validation is the one-pass AEAD
#: decrypt) plus one legacy partition so cross-partition splices cross
#: the AEAD/legacy cipher-domain boundary in both directions
AEAD_PARTITION_SPECS = (
    ("aes-256-gcm", "sha1"),
    ("chacha20-poly1305", "sha256"),
    ("xtea-cbc", "sha256"),
)


def scenario_config(
    mode: str,
    payload_cache: bool = True,
    system_cipher: str = "ctr-sha256",
) -> StoreConfig:
    """The sweep's store configuration: the strictest windows (Δut=1,
    Δtu=0), so *any* rollback of a committed state must be detected.
    ``payload_cache=False`` judges with the validated-payload cache off
    (the runtime-only knob; the attack surface is identical either way).
    An authenticating ``system_cipher`` additionally exercises the
    MAC-skip commit-record path in counter mode."""
    return StoreConfig(
        segment_size=8 * 1024,
        system_cipher=system_cipher,
        system_hash="sha1",
        validation_mode=mode,
        delta_ut=1,
        delta_tu=0,
        payload_cache_bytes=StoreConfig.payload_cache_bytes if payload_cache else 0,
    )


def build_scenario(
    mode: str = "counter",
    partition_specs: Sequence[Tuple[str, str]] = PARTITION_SPECS,
    system_cipher: str = "ctr-sha256",
) -> Scenario:
    """Populate a multi-partition store and freeze it for trials.

    The history deliberately leaves every kind of log content in place:
    checkpointed segments, a non-empty residual log, a deallocation
    record, and two stale snapshots each more than Δut commits behind the
    final state.
    """
    platform = TrustedPlatform.create_in_memory(untrusted_size=512 * 1024)
    store = ChunkStore.format(
        platform, scenario_config(mode, system_cipher=system_cipher)
    )
    pids: List[int] = []
    for cipher_name, hash_name in partition_specs:
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name=cipher_name, hash_name=hash_name)]
        )
        pids.append(pid)

    def write(pid: int, rank: int, tag: str) -> None:
        data = f"p{pid}r{rank}:{tag}:".encode() * 4
        state = store.partitions[pid]
        if not (rank in state.pending_ranks or state.is_committed_written(rank)):
            state.allocate_specific(rank)
        store.commit([ops.WriteChunk(pid, rank, data)])

    stale_images: List[bytes] = []
    for rank in range(3):
        for pid in pids:
            write(pid, rank, "base")
    stale_images.append(platform.untrusted.tamper_image())

    store.checkpoint()
    for pid in pids:
        write(pid, 3, "post-checkpoint")
    write(pids[0], 1, "rewritten")
    stale_images.append(platform.untrusted.tamper_image())

    # push the final state > Δut commits past both snapshots, and leave a
    # deallocation in the residual log (§4.8.1 un-deallocation attacks)
    store.commit([ops.DeallocateChunk(pids[1], 2)])
    for pid in pids:
        write(pid, 4, "tail")

    expected: Dict[Tuple[int, int], bytes] = {}
    extents: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for pid in pids:
        for rank in store.data_ranks(pid):
            expected[(pid, rank)] = store.read_chunk(pid, rank)
            descriptor = store._get_descriptor(data_id(pid, rank))
            extents[(pid, rank)] = (descriptor.location, descriptor.length)
    store.close(checkpoint=False)  # keep the residual log populated
    return Scenario(
        mode=mode,
        final=PlatformSnapshot.capture(platform),
        expected=expected,
        extents=extents,
        stale_images=stale_images,
        pids=pids,
        system_cipher=system_cipher,
    )


# -- scenario-independent mutations -------------------------------------------


def apply_random_mutation(
    untrusted: UntrustedStore, rng: random.Random
) -> str:
    """One seeded mutation needing no scenario context (bit flips, extent
    zeroing, garbage) — reusable by any test that owns a live platform.
    Returns a description of what was mutated."""
    size = untrusted.size
    kind = rng.choice(("bit_flip", "extent_zero", "extent_garbage"))
    if kind == "bit_flip":
        flips = rng.randint(1, 8)
        offsets = []
        for _ in range(flips):
            offset = rng.randrange(size)
            byte = untrusted.tamper_read(offset, 1)[0]
            untrusted.tamper_write(
                offset, bytes([byte ^ (1 << rng.randrange(8))])
            )
            offsets.append(offset)
        return f"bit_flip at {offsets}"
    length = rng.randint(16, 2048)
    offset = rng.randrange(max(1, size - length))
    if kind == "extent_zero":
        untrusted.tamper_write(offset, bytes(length))
        return f"extent_zero [{offset}, {offset + length})"
    untrusted.tamper_write(offset, rng.randbytes(length))
    return f"extent_garbage [{offset}, {offset + length})"


# -- the adversary ------------------------------------------------------------


class Adversary:
    """Runs seeded mutation trials against a frozen scenario and enforces
    the detect-or-correct oracle on every subsequent trusted read."""

    CLASSES: Tuple[str, ...] = (
        "bit_flip",
        "extent_zero",
        "extent_garbage",
        "extent_swap",
        "stale_extent_replay",
        "cross_partition_splice",
        "image_replay",
        "torn_race",
    )

    def __init__(
        self,
        mode: str = "counter",
        classes: Optional[Sequence[str]] = None,
        scenario: Optional[Scenario] = None,
        payload_cache: bool = True,
    ) -> None:
        self.mode = mode
        self.classes: Tuple[str, ...] = tuple(classes or self.CLASSES)
        for name in self.classes:
            if name not in self.CLASSES:
                raise ValueError(f"unknown attack class {name!r}")
        self.payload_cache = payload_cache
        self.scenario = scenario or build_scenario(mode)

    def _open_config(self) -> StoreConfig:
        return scenario_config(
            self.mode,
            payload_cache=self.payload_cache,
            system_cipher=self.scenario.system_cipher,
        )

    # -- public API ------------------------------------------------------------

    def run(self, trials: int, base_seed: int = 0) -> SweepResult:
        """Run ``trials`` seeded mutations, cycling through the enabled
        attack classes so every class is exercised evenly."""
        result = SweepResult(mode=self.mode)
        for i in range(trials):
            result.reports.append(self.run_trial(base_seed + i))
        return result

    def run_trial(self, seed: int, attack: Optional[str] = None) -> TrialReport:
        """One reproducible trial: the class is derived from the seed
        (round-robin) unless pinned explicitly."""
        attack = attack or self.classes[seed % len(self.classes)]
        rng = random.Random(seed)
        if attack == "torn_race":
            outcome, detail = self._torn_race_trial(rng)
        else:
            platform = self.scenario.final.restore()
            detail_prefix = self._apply_attack(attack, rng, platform.untrusted)
            acceptable = {
                key: (value,) for key, value in self.scenario.expected.items()
            }
            outcome, detail = self._judge(platform, acceptable)
            detail = f"{detail_prefix} -> {detail}"
        return TrialReport(seed=seed, attack=attack, outcome=outcome, detail=detail)

    # -- attack application ----------------------------------------------------

    def _apply_attack(
        self, attack: str, rng: random.Random, untrusted: UntrustedStore
    ) -> str:
        scenario = self.scenario
        size = untrusted.size
        if attack == "bit_flip":
            flips = rng.randint(1, 8)
            offsets = []
            for _ in range(flips):
                offset = rng.randrange(size)
                byte = untrusted.tamper_read(offset, 1)[0]
                untrusted.tamper_write(
                    offset, bytes([byte ^ (1 << rng.randrange(8))])
                )
                offsets.append(offset)
            return f"flipped bits at {offsets}"
        if attack in ("extent_zero", "extent_garbage"):
            if rng.random() < 0.5 and scenario.extents:
                key = rng.choice(sorted(scenario.extents))
                offset, length = scenario.extents[key]
                where = f"chunk {key[0]}:{key[1]}'s version"
            else:
                length = rng.randint(16, 2048)
                offset = rng.randrange(max(1, size - length))
                where = "random extent"
            payload = (
                bytes(length) if attack == "extent_zero" else rng.randbytes(length)
            )
            untrusted.tamper_write(offset, payload)
            return f"{attack} over {where} [{offset}, {offset + length})"
        if attack == "extent_swap":
            (key_a, key_b) = rng.sample(sorted(scenario.extents), 2)
            loc_a, len_a = scenario.extents[key_a]
            loc_b, len_b = scenario.extents[key_b]
            span = min(len_a, len_b)
            bytes_a = untrusted.tamper_read(loc_a, span)
            bytes_b = untrusted.tamper_read(loc_b, span)
            untrusted.tamper_write(loc_a, bytes_b)
            untrusted.tamper_write(loc_b, bytes_a)
            return f"swapped versions of {key_a} and {key_b} ({span} bytes)"
        if attack == "stale_extent_replay":
            stale = rng.choice(scenario.stale_images)
            if rng.random() < 0.5 and scenario.extents:
                key = rng.choice(sorted(scenario.extents))
                offset, length = scenario.extents[key]
                where = f"chunk {key[0]}:{key[1]}'s extent"
            else:
                length = rng.randint(64, 4096)
                offset = rng.randrange(max(1, size - length))
                where = "random extent"
            untrusted.tamper_write(offset, stale[offset : offset + length])
            return f"replayed stale bytes over {where} [{offset}, {offset + length})"
        if attack == "cross_partition_splice":
            foreign_pairs = [
                (a, b)
                for a in sorted(scenario.extents)
                for b in sorted(scenario.extents)
                if a[0] != b[0]
            ]
            src, dst = rng.choice(foreign_pairs)
            src_loc, src_len = scenario.extents[src]
            dst_loc, dst_len = scenario.extents[dst]
            span = min(src_len, dst_len)
            untrusted.tamper_write(
                dst_loc, untrusted.tamper_read(src_loc, span)
            )
            return f"spliced {src}'s version over {dst}'s location ({span} bytes)"
        if attack == "image_replay":
            index = rng.randrange(len(scenario.stale_images))
            untrusted.tamper_replay(scenario.stale_images[index])
            return f"replayed whole stale image #{index}"
        raise ValueError(f"unknown attack class {attack!r}")

    # -- the crash-raced class -------------------------------------------------

    def _torn_race_trial(self, rng: random.Random) -> Tuple[str, str]:
        """Crash between flush and TR update, tamper while down, recover.

        Oracle: the raced commit is atomic (its chunk reads old *or* new
        bytes, or the read detects tampering); every older commit is exact
        or detected."""
        platform = self.scenario.final.restore()
        try:
            store = ChunkStore.open(platform, self._open_config())
        except TDBError as exc:  # pragma: no cover - scenario must open clean
            return FOREIGN_ERROR, f"pristine scenario failed to open: {exc}"
        key = rng.choice(sorted(self.scenario.expected))
        pid, rank = key
        new_value = f"raced-p{pid}r{rank}-{rng.randrange(1 << 16)}".encode() * 2
        point = rng.choice(RACE_POINTS)
        platform.injector.arm(point, countdown=0)
        try:
            store.commit([ops.WriteChunk(pid, rank, new_value)])
            crashed = False
        except CrashError:
            crashed = True
        finally:
            platform.injector.disarm()
        detail_prefix = f"raced write to {pid}:{rank} crashed at {point}"
        if not crashed:  # pragma: no cover - all RACE_POINTS fire in commit
            detail_prefix = f"raced write to {pid}:{rank} did not crash"
        mutation = apply_random_mutation(platform.untrusted, rng)
        platform.reboot()
        acceptable: Dict[Tuple[int, int], Tuple[bytes, ...]] = {
            k: (v,) for k, v in self.scenario.expected.items()
        }
        acceptable[key] = (self.scenario.expected[key], new_value)
        outcome, detail = self._judge(platform, acceptable)
        return outcome, f"{detail_prefix}; {mutation} -> {detail}"

    # -- the oracle ------------------------------------------------------------

    def _judge(
        self,
        platform: TrustedPlatform,
        acceptable: Dict[Tuple[int, int], Tuple[bytes, ...]],
    ) -> Tuple[str, str]:
        """Open the (possibly mutated) store and read everything back.

        The only legal outcomes are exact committed bytes or
        :class:`TamperDetectedError`; committed state quietly vanishing,
        wrong bytes, and non-TDB exceptions are harness failures.  Every
        chunk is read *twice*: the second read exercises the warm
        validated-payload cache, which must never serve bytes the first
        (device-validating) read did not."""
        try:
            store = ChunkStore.open(platform, self._open_config())
        except TamperDetectedError as exc:
            return DETECTED, f"open: {exc}"
        except TDBError as exc:
            # e.g. a destroyed superblock: the store refuses to open, which
            # is fail-stop — never silent
            return DETECTED, f"open refused: {exc}"
        except Exception as exc:
            return FOREIGN_ERROR, f"open raised {type(exc).__name__}: {exc}"
        detections = 0
        problems: List[str] = []
        for (pid, rank), values in sorted(acceptable.items()):
            try:
                got = store.read_chunk(pid, rank)
            except TamperDetectedError:
                detections += 1
                continue
            except TDBError as exc:
                problems.append(
                    f"chunk {pid}:{rank} lost without detection "
                    f"({type(exc).__name__}: {exc})"
                )
                continue
            except Exception as exc:
                return (
                    FOREIGN_ERROR,
                    f"read {pid}:{rank} raised {type(exc).__name__}: {exc}",
                )
            if got not in values:
                problems.append(
                    f"chunk {pid}:{rank} silently corrupted "
                    f"(got {got[:32]!r}...)"
                )
                continue
            try:
                again = store.read_chunk(pid, rank)
            except TDBError as exc:
                problems.append(
                    f"chunk {pid}:{rank} warm re-read failed after a clean "
                    f"read ({type(exc).__name__}: {exc})"
                )
                continue
            except Exception as exc:
                return (
                    FOREIGN_ERROR,
                    f"warm re-read {pid}:{rank} raised {type(exc).__name__}: {exc}",
                )
            if again != got:
                problems.append(
                    f"chunk {pid}:{rank} warm re-read served different bytes "
                    f"(cache incoherence)"
                )
        if problems:
            return SILENT_CORRUPTION, "; ".join(problems)
        if detections:
            return DETECTED, f"{detections} read(s) detected tampering"
        return HARMLESS, "all reads returned committed bytes"
