"""The two validation disciplines (§4.8.2).

**Direct hash validation** (§4.8.2.1).  The tamper-resistant store holds a
chained hash of the residual log, updated after *every* commit, together
with the log tail location and the leader location.  The chain is defined
per version: ``chain₀ = H(ε)``, then ``chainᵢ = H(chainᵢ₋₁ ‖ versionᵢ)``
for every version appended since the leader (the leader itself is
version 1).  The TR write is the real commit point: a crash before it
leaves the previous TR value, and recovery ignores everything beyond the
recorded tail.

**Counter-based validation** (§4.8.2.2).  Each commit set is followed by a
*commit chunk* carrying a monotonically increasing commit count and the
hash of the commit set, signed with a symmetric-key MAC.  The TR device is
only a monotonic counter, updated lazily: the counter may lag the log by
up to Δut commits (one TR write per Δut commits) and, if the untrusted
store is flushed lazily, lead it by up to Δtu.  The security cost is
precisely that an attacker may delete up to Δut commit sets from the log
tail (or, with Δtu > 0, benefit from the tolerated lead) — a measured
trade of security for TR-write latency.

Commit-set hashes exclude NEXT_SEGMENT versions.  Rationale: a checkpoint
is recovered from two different starting points (the new leader when the
superblock write completed; the previous leader when it did not), and the
segment-jump version sits between the two paths.  Jumps only affect where
data is *read from*; the data itself is authenticated by the count-
sequenced MACs, so excluding jumps sacrifices nothing.
"""

from __future__ import annotations

from typing import Tuple

from repro.chunkstore.log import CommitRecord
from repro.crypto.hashing import HashFunction
from repro.crypto.mac import Mac
from repro.errors import TamperDetectedError
from repro.platform.tamper_resistant import (
    TamperResistantCounter,
    TamperResistantStore,
)
from repro.util.codec import Decoder, Encoder


class DirectValidation:
    """Maintains the residual-log chain hash in the TR store."""

    mode = "direct"

    def __init__(
        self, tr_store: TamperResistantStore, system_hash: HashFunction
    ) -> None:
        self._tr = tr_store
        self._hash = system_hash
        self.chain: bytes = system_hash.hash(b"")

    def reset_chain(self) -> None:
        """A checkpoint restarts the residual log (before noting the leader)."""
        self.chain = self._hash.hash(b"")

    def note_version(self, version_bytes: bytes) -> None:
        self.note_parts(version_bytes)

    def note_parts(self, *parts: bytes) -> None:
        """Chain one version given as separate spans (header ct, body ct)
        — the zero-copy recovery path feeds ``memoryview`` slices of a
        whole-segment read without joining them first."""
        hasher = self._hash.new()
        hasher.update(self.chain)
        for part in parts:
            hasher.update(part)
        self.chain = hasher.digest()

    def commit_point(self, tail_location: int, leader_location: int) -> None:
        """The real commit point: atomically publish chain + tail + leader."""
        enc = Encoder()
        enc.bytes(self.chain)
        enc.uint(tail_location)
        enc.uint(leader_location)
        self._tr.write(enc.finish())

    def read_tr(self) -> Tuple[bytes, int, int]:
        """Recovery: the authoritative (chain, tail, leader) triple."""
        data = self._tr.read()
        if not data:
            raise TamperDetectedError(
                "tamper-resistant store is empty; store was never formatted"
            )
        dec = Decoder(data)
        chain = dec.bytes()
        tail = dec.uint()
        leader = dec.uint()
        dec.expect_exhausted()
        return chain, tail, leader


class CounterValidation:
    """Signed commit chunks sequenced by a tamper-resistant counter."""

    mode = "counter"

    def __init__(
        self,
        counter: TamperResistantCounter,
        system_hash: HashFunction,
        mac: Mac,
        delta_ut: int,
        delta_tu: int,
        mac_optional: bool = False,
    ) -> None:
        self._counter = counter
        self._hash = system_hash
        self._mac = mac
        self.delta_ut = delta_ut
        self.delta_tu = delta_tu
        #: True when the system cipher authenticates (AEAD): commit
        #: chunks then arrive transport-authenticated — header bound as
        #: associated data, body unforgeable without the system key — so
        #: the explicit HMAC pass is skipped (empty tag).  MAC'd records
        #: written before a config change still verify (see
        #: :meth:`verify_commit_record`).
        self.mac_optional = mac_optional
        #: count the next commit chunk will carry
        self.next_count = 1
        #: count of the last commit chunk known durable in the untrusted store
        self.flushed_count = 0
        self._set_hasher = system_hash.new()

    # -- runtime commit path ---------------------------------------------------

    def begin_commit(self) -> None:
        self._set_hasher = self._hash.new()

    def note_version(self, version_bytes: bytes) -> None:
        self._set_hasher.update(version_bytes)

    def note_parts(self, *parts: bytes) -> None:
        """Span-wise :meth:`note_version` (zero-copy recovery path)."""
        for part in parts:
            self._set_hasher.update(part)

    def current_set_hash(self) -> bytes:
        """Digest of the versions noted since :meth:`begin_commit`."""
        return self._set_hasher.digest()

    def build_commit_record(self) -> CommitRecord:
        set_hash = self._set_hasher.digest()
        record = CommitRecord(self.next_count, set_hash, b"")
        if not self.mac_optional:
            record.mac_tag = self._mac.sign(record.signed_message())
        return record

    def verify_commit_record(self, record: CommitRecord, set_hash: bytes) -> bool:
        """Recovery: check MAC and set hash of one commit chunk.

        An empty MAC tag is accepted only under ``mac_optional`` — i.e.
        when the commit chunk could not have been forged in the first
        place because decrypting it already verified an AEAD tag over
        header and body.  A present tag is always verified, so logs
        written with MACs stay valid after a system-cipher upgrade."""
        if record.set_hash != set_hash:
            return False
        if not record.mac_tag:
            return self.mac_optional
        return self._mac.verify(record.signed_message(), record.mac_tag)

    def committed(self) -> None:
        """Bookkeeping after the commit chunk was appended."""
        self.next_count += 1

    def note_flushed(self) -> None:
        """The untrusted store was flushed: every appended commit chunk is
        now durable."""
        self.flushed_count = self.next_count - 1

    def tr_lag(self) -> int:
        return (self.next_count - 1) - self._counter.read()

    def needs_tr_update(self) -> bool:
        return self.tr_lag() >= self.delta_ut

    def tr_update_target(self) -> int:
        """How far the counter may advance without violating Δtu."""
        return min(self.next_count - 1, self.flushed_count + self.delta_tu)

    def advance_tr(self, target: int) -> None:
        self._counter.advance_to(target)

    # -- recovery ----------------------------------------------------------------

    def check_final_count(self, last_log_count: int) -> None:
        """Compare the log's last count with the TR counter (§4.8.2.2)."""
        tr_count = self._counter.read()
        if tr_count - last_log_count > self.delta_tu:
            raise TamperDetectedError(
                f"commit sets deleted from log tail: log count {last_log_count}, "
                f"tamper-resistant counter {tr_count}, allowed lead Δtu="
                f"{self.delta_tu}"
            )
        # Upper bound: the log should not lead the counter by more than
        # Δut — plus 2, because a checkpoint appends two commit chunks
        # (map phase + leader phase) before its single TR advance, and a
        # crash inside that window is legitimate.  This check is a
        # consistency guard, not a security property: an attacker cannot
        # forge the MAC'd commit chunks that make the log "ahead".
        if last_log_count - tr_count > self.delta_ut + 2:
            raise TamperDetectedError(
                f"log is ahead of the tamper-resistant counter beyond Δut: "
                f"log count {last_log_count}, counter {tr_count}"
            )
        # Close the window: future replays of this state must now fail.
        if last_log_count > tr_count:
            self._counter.advance_to(last_log_count)
        self.next_count = last_log_count + 1
        self.flushed_count = last_log_count
