"""Functional indexes (§8).

"The collection store supports *functional indexes* that use keys
extracted from objects by deterministic functions [Hwa94].  The use of
functional indexes allows us to avoid a separate data definition language
for the database schema."

A key function is registered under a name; the index object persists the
*name*, and extraction happens on the decrypted, unpickled object.  A key
function returning ``None`` means "do not index this object" (partial
indexes for free).

Two index kinds:

* **sorted** — a persistent B-tree (:mod:`repro.collection.btree`);
  supports scan, exact-match, and range iterators;
* **unsorted** — a bucketed hash index; supports scan and exact-match.
  Keys are hashed *deterministically* (CRC-32 of their pickled form), not
  with Python's randomised ``hash()``, so the structure is stable across
  processes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.collection import btree
from repro.errors import IndexError_
from repro.objectstore.pickling import ObjectRef, pickle_value
from repro.objectstore.store import Transaction
from repro.util.checksum import crc32_bytes

#: number of buckets in an unsorted index
HASH_BUCKETS = 32


class KeyFunctionRegistry:
    """Named, deterministic key-extraction functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, Callable[[Any], Any]] = {}

    def register(
        self, name: str, function: Callable[[Any], Any], replace: bool = False
    ) -> None:
        existing = self._functions.get(name)
        if existing is not None and existing is not function and not replace:
            raise IndexError_(f"key function {name!r} already registered")
        self._functions[name] = function

    def get(self, name: str) -> Callable[[Any], Any]:
        try:
            return self._functions[name]
        except KeyError:
            raise IndexError_(
                f"key function {name!r} is not registered in this process"
            ) from None


DEFAULT_KEY_FUNCTIONS = KeyFunctionRegistry()


def register_key_function(
    name: str,
    function: Callable[[Any], Any],
    registry: KeyFunctionRegistry = DEFAULT_KEY_FUNCTIONS,
) -> None:
    registry.register(name, function)


def field_key(field: str) -> Callable[[Any], Any]:
    """Convenience key function: extract ``obj[field]`` (None if absent)."""

    def extract(obj: Any) -> Any:
        try:
            return obj[field]
        except (KeyError, TypeError):
            return None

    return extract


def _bucket_of(key: Any) -> int:
    return crc32_bytes(pickle_value(key)) % HASH_BUCKETS


class Index:
    """Handle on one persistent index (state lives in an object).

    Index object state::

        {"name": str, "keyfunc": str, "sorted": bool,
         "root": ObjectRef | None,          # sorted
         "buckets": [ObjectRef | None]*32}  # unsorted
    """

    def __init__(
        self,
        ref: ObjectRef,
        partition: int,
        key_functions: KeyFunctionRegistry = DEFAULT_KEY_FUNCTIONS,
    ) -> None:
        self.ref = ref
        self.partition = partition
        self._key_functions = key_functions

    # -- creation -------------------------------------------------------------

    @classmethod
    def create(
        cls,
        tx: Transaction,
        partition: int,
        name: str,
        keyfunc_name: str,
        sorted_index: bool,
        key_functions: KeyFunctionRegistry = DEFAULT_KEY_FUNCTIONS,
    ) -> "Index":
        key_functions.get(keyfunc_name)  # fail fast on unknown functions
        state: Dict[str, Any] = {
            "name": name,
            "keyfunc": keyfunc_name,
            "sorted": sorted_index,
        }
        if sorted_index:
            state["root"] = btree.create(tx, partition)
        else:
            state["buckets"] = [None] * HASH_BUCKETS
        ref = tx.create(partition, state)
        return cls(ref, partition, key_functions)

    # -- key extraction ---------------------------------------------------------

    def key_of(self, tx: Transaction, obj: Any) -> Any:
        state = tx.get(self.ref)
        return self._key_functions.get(state["keyfunc"])(obj)

    def is_sorted(self, tx: Transaction) -> bool:
        return tx.get(self.ref)["sorted"]

    def name(self, tx: Transaction) -> str:
        return tx.get(self.ref)["name"]

    # -- maintenance ------------------------------------------------------------

    def add(self, tx: Transaction, key: Any, ref: ObjectRef) -> None:
        if key is None:
            return
        state = dict(tx.get(self.ref))
        if state["sorted"]:
            new_root = btree.insert(tx, self.partition, state["root"], key, ref)
            if new_root != state["root"]:
                state["root"] = new_root
                tx.update(self.ref, state)
        else:
            bucket_index = _bucket_of(key)
            buckets = list(state["buckets"])
            if buckets[bucket_index] is None:
                bucket_ref = tx.create(self.partition, {})
                buckets[bucket_index] = bucket_ref
                state["buckets"] = buckets
                tx.update(self.ref, state)
            else:
                bucket_ref = buckets[bucket_index]
            bucket = dict(tx.get(bucket_ref))
            entry_key = pickle_value(key)
            refs = list(bucket.get(entry_key, []))
            if ref not in refs:
                refs.append(ref)
            bucket[entry_key] = refs
            tx.update(bucket_ref, bucket)

    def remove(self, tx: Transaction, key: Any, ref: ObjectRef) -> None:
        if key is None:
            return
        state = tx.get(self.ref)
        if state["sorted"]:
            btree.remove(tx, self.partition, state["root"], key, ref)
        else:
            bucket_ref = state["buckets"][_bucket_of(key)]
            if bucket_ref is None:
                raise IndexError_(f"index entry ({key!r}, {ref}) not found")
            bucket = dict(tx.get(bucket_ref))
            entry_key = pickle_value(key)
            refs = list(bucket.get(entry_key, []))
            if ref not in refs:
                raise IndexError_(f"index entry ({key!r}, {ref}) not found")
            refs.remove(ref)
            if refs:
                bucket[entry_key] = refs
            else:
                bucket.pop(entry_key, None)
            tx.update(bucket_ref, bucket)

    # -- queries ---------------------------------------------------------------

    def exact(self, tx: Transaction, key: Any) -> List[ObjectRef]:
        state = tx.get(self.ref)
        if state["sorted"]:
            return btree.lookup(tx, state["root"], key)
        bucket_ref = state["buckets"][_bucket_of(key)]
        if bucket_ref is None:
            return []
        bucket = tx.get(bucket_ref)
        return list(bucket.get(pickle_value(key), []))

    def range(
        self,
        tx: Transaction,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[Any, ObjectRef]]:
        state = tx.get(self.ref)
        if not state["sorted"]:
            raise IndexError_(
                f"index {state['name']!r} is unsorted; range queries need a "
                f"sorted index"
            )
        return btree.iterate(
            tx, state["root"], low, high, low_inclusive, high_inclusive
        )

    def scan(self, tx: Transaction) -> Iterator[Tuple[Any, ObjectRef]]:
        state = tx.get(self.ref)
        if state["sorted"]:
            yield from btree.iterate(tx, state["root"])
            return
        from repro.objectstore.pickling import unpickle_value

        for bucket_ref in state["buckets"]:
            if bucket_ref is None:
                continue
            bucket = tx.get(bucket_ref)
            for entry_key, refs in bucket.items():
                key = unpickle_value(entry_key)
                for ref in refs:
                    yield key, ref

    def destroy(self, tx: Transaction) -> None:
        state = tx.get(self.ref)
        if state["sorted"]:
            btree.destroy(tx, state["root"])
        else:
            for bucket_ref in state["buckets"]:
                if bucket_ref is not None:
                    tx.delete(bucket_ref)
        tx.delete(self.ref)
