"""The XDB baseline (§9.5): pager/WAL, B-tree, crypto layer — and the
metadata-protection asymmetry the paper's architecture argument hinges on."""

import pytest

from repro.errors import TamperDetectedError, XDBError
from repro.platform import (
    MemoryUntrustedStore,
    SecretStore,
    TamperResistantStore,
)
from repro.xdb import XDB, BTree, Pager, SecureXDB
from repro.xdb.pager import PAGE_SIZE


def make_stores(size=8 * 1024 * 1024):
    return MemoryUntrustedStore(size), SecretStore.generate(), TamperResistantStore()


class TestPager:
    def test_format_open(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        pager2 = Pager(store)
        pager2.open()
        assert pager2.next_page == pager.next_page

    def test_page_roundtrip(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        page = pager.allocate_page()
        pager.write_page(page, b"page contents")
        pager.commit()
        assert bytes(pager.read_page(page)[:13]) == b"page contents"

    def test_commit_persists_across_crash(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        page = pager.allocate_page()
        pager.write_page(page, b"durable")
        pager.commit()
        store.simulate_crash()
        pager2 = Pager(store)
        pager2.open()
        assert bytes(pager2.read_page(page)[:7]) == b"durable"

    def test_uncommitted_lost_on_crash(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        page = pager.allocate_page()
        pager.write_page(page, b"first")
        pager.commit()
        pager.write_page(page, b"never")
        store.simulate_crash()
        pager2 = Pager(store)
        pager2.open()
        assert bytes(pager2.read_page(page)[:5]) == b"first"

    def test_free_page_reuse(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        page = pager.allocate_page()
        pager.free_page(page)
        assert pager.allocate_page() == page

    def test_commit_issues_two_flushes(self):
        """The baseline's cost signature: WAL flush + data flush (§9.5.2)."""
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        page = pager.allocate_page()
        pager.write_page(page, b"x")
        before = store.stats.flushes
        pager.commit()
        assert store.stats.flushes - before == 2


class TestXdbBtree:
    def test_put_get_delete(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        tree = BTree.create(pager)
        for i in range(500):
            tree.put(f"key{i:05d}".encode(), f"val{i}".encode())
        assert tree.get(b"key00123") == b"val123"
        assert tree.get(b"missing") is None
        assert tree.delete(b"key00123")
        assert tree.get(b"key00123") is None
        assert not tree.delete(b"key00123")

    def test_scan_ordered(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        tree = BTree.create(pager)
        keys = [f"{(i * 37) % 200:05d}".encode() for i in range(200)]
        for key in keys:
            tree.put(key, b"v")
        got = [key for key, _ in tree.scan()]
        assert got == sorted(set(keys))

    def test_scan_range(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        tree = BTree.create(pager)
        for i in range(100):
            tree.put(f"{i:04d}".encode(), b"v")
        got = [key for key, _ in tree.scan(b"0010", b"0015")]
        assert got == [f"{i:04d}".encode() for i in range(10, 16)]

    def test_overwrite(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        tree = BTree.create(pager)
        tree.put(b"k", b"v1")
        tree.put(b"k", b"v2")
        assert tree.get(b"k") == b"v2"

    def test_oversized_value_rejected(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        tree = BTree.create(pager)
        with pytest.raises(XDBError):
            tree.put(b"k", b"v" * PAGE_SIZE)

    def test_root_page_stable_across_splits(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        tree = BTree.create(pager)
        root_before = tree.root
        for i in range(2000):
            tree.put(f"{i:06d}".encode(), b"x" * 20)
        assert tree.root == root_before
        assert tree.get(b"001999") == b"x" * 20


class TestXdbTables:
    def test_records(self):
        store, _, _ = make_stores()
        db = XDB.format(store)
        table = db.create_table("t")
        rid = db.insert(table, b"record")
        db.commit()
        assert db.read(table, rid) == b"record"
        db.update(table, rid, b"record2")
        assert db.read(table, rid) == b"record2"
        db.delete(table, rid)
        with pytest.raises(XDBError):
            db.read(table, rid)

    def test_tables_persist(self):
        store, _, _ = make_stores()
        db = XDB.format(store)
        table = db.create_table("t")
        rid = db.insert(table, b"record")
        db.commit()
        db2 = XDB.open(store)
        table2 = db2.table("t")
        assert db2.read(table2, rid) == b"record"
        assert table2.next_rid == table.next_rid

    def test_secondary_index(self):
        store, _, _ = make_stores()
        db = XDB.format(store)
        table = db.create_table("t")
        db.create_index(table, "by_key")
        r1 = db.insert(table, b"a")
        r2 = db.insert(table, b"b")
        db.index_put(table, "by_key", b"same", r1)
        db.index_put(table, "by_key", b"same", r2)
        assert set(db.index_exact(table, "by_key", b"same")) == {r1, r2}
        db.index_delete(table, "by_key", b"same", r1)
        assert db.index_exact(table, "by_key", b"same") == [r2]


class TestSecureXdb:
    def build(self):
        store, secret, tr = make_stores()
        secure = SecureXDB.format(store, secret, tr, cipher_name="ctr-sha256")
        table = secure.create_collection("goods", {"by_title": lambda o: o["title"]})
        return store, secret, tr, secure, table

    def test_object_roundtrip(self):
        _, _, _, secure, table = self.build()
        rid = secure.insert(table, {"title": "song", "price": 5})
        secure.commit()
        assert secure.read(table, rid) == {"title": "song", "price": 5}

    def test_values_encrypted_on_disk(self):
        store, _, _, secure, table = self.build()
        secure.insert(table, {"title": "FINDME-TITLE"})
        secure.commit()
        assert b"FINDME-TITLE" not in store.tamper_image()

    def test_record_tamper_detected(self):
        store, _, _, secure, table = self.build()
        rid = secure.insert(table, {"title": "x", "blob": b"A" * 600})
        secure.commit()
        # locate the ciphertext in the data region and flip a byte
        image = store.tamper_image()
        target = None
        for offset in range(PAGE_SIZE, len(image) - 1):
            if image[offset] != 0:
                target = offset + 200
                break
        store.tamper_write(target, bytes([image[target] ^ 0xFF]))
        secure.db.pager._cache.clear()
        try:
            value = secure.read(table, rid)
            # flip may have hit an obsolete byte; then the read is intact
            assert value["title"] == "x"
        except (TamperDetectedError, XDBError):
            pass

    def test_replay_detected_via_anchor(self):
        store, secret, tr, secure, table = self.build()
        rid = secure.insert(table, {"title": "v1"})
        secure.commit()
        image = store.tamper_image()
        secure.update(table, rid, {"title": "v2"})
        secure.commit()
        store.tamper_replay(image)
        with pytest.raises(TamperDetectedError):
            SecureXDB.open(store, secret, tr, cipher_name="ctr-sha256")

    def test_index_metadata_tampering_is_silent(self):
        """The paper's core architectural point (§1.2): the layered design
        CANNOT protect the database's own metadata.  Overwrite the index
        B-tree region: lookups silently return wrong results instead of
        raising TamperDetectedError — unlike TDB (see
        test_collection_store.py::test_index_tampering_detected)."""
        store, secret, tr, secure, table = self.build()
        rids = [secure.insert(table, {"title": f"t{i}"}) for i in range(50)]
        secure.commit()
        index_root = table.indexes["by_title"].root
        # zero out the index root page: a targeted metadata attack
        page = store.tamper_read(index_root * PAGE_SIZE, PAGE_SIZE)
        import struct

        empty_leaf = struct.pack(">BH", 1, 0).ljust(PAGE_SIZE, b"\x00")
        store.tamper_write(index_root * PAGE_SIZE, empty_leaf)
        secure.db.pager._cache.clear()
        # the object is still there and validates...
        assert secure.read(table, rids[7])["title"] == "t7"
        # ...but the index lookup silently claims it does not exist:
        # an undetected effective deletion
        assert secure.exact(table, "by_title", "t7") == []

    def test_exact_match_works_but_range_impossible(self):
        """Deterministic key encryption gives exact match; order is
        destroyed, so the layered design cannot do range queries (§1.2)."""
        _, _, _, secure, table = self.build()
        rid = secure.insert(table, {"title": "needle"})
        secure.commit()
        assert secure.exact(table, "by_title", "needle") == [rid]
        key_bytes = [secure._index_key_bytes(f"k{i}") for i in range(10)]
        assert key_bytes != sorted(key_bytes)  # order not preserved

    def test_deleted_record_dropped_from_hash_tree(self):
        _, _, _, secure, table = self.build()
        rid = secure.insert(table, {"title": "bye"})
        secure.commit()
        secure.delete(table, rid)
        secure.commit()
        with pytest.raises(XDBError):
            secure.read(table, rid)

    def test_reopen_validates(self):
        store, secret, tr, secure, table = self.build()
        rid = secure.insert(table, {"title": "persist"})
        secure.close()
        secure2 = SecureXDB.open(store, secret, tr, cipher_name="ctr-sha256")
        table2 = secure2.open_collection("goods", {"by_title": lambda o: o["title"]})
        assert secure2.read(table2, rid) == {"title": "persist"}


class TestBatchedPageReads:
    def test_read_pages_matches_read_page(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        pages = [pager.allocate_page() for _ in range(6)]
        for i, page in enumerate(pages):
            pager.write_page(page, bytes([i]) * 32)
        pager.commit()

        fresh = Pager(store)
        fresh.open()
        got = fresh.read_pages(pages)
        assert [bytes(p[:32]) for p in got] == [
            bytes(fresh.read_page(page)[:32]) for page in pages
        ]

    def test_read_pages_is_one_round_trip(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        pages = [pager.allocate_page() for _ in range(8)]
        for i, page in enumerate(pages):
            pager.write_page(page, bytes([0x40 + i]) * 16)
        pager.commit()

        fresh = Pager(store)
        fresh.open()
        before = store.stats.snapshot()
        fresh.read_pages(pages)
        delta = store.stats.delta(before)
        assert delta.batched_reads == 1
        assert delta.reads == 1

        # a second call is fully cache-served: zero device traffic
        before = store.stats.snapshot()
        fresh.read_pages(pages)
        delta = store.stats.delta(before)
        assert delta.reads == 0

    def test_read_pages_handles_duplicates_and_cached(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        pages = [pager.allocate_page() for _ in range(4)]
        for i, page in enumerate(pages):
            pager.write_page(page, bytes([i]) * 8)
        pager.commit()

        fresh = Pager(store)
        fresh.open()
        fresh.read_page(pages[0])  # cache one page ahead of the batch
        got = fresh.read_pages([pages[0], pages[2], pages[0], pages[3]])
        assert [bytes(p[:8]) for p in got] == [
            bytes([0]) * 8, bytes([2]) * 8, bytes([0]) * 8, bytes([3]) * 8
        ]

    def test_read_pages_range_checked(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        with pytest.raises(XDBError):
            pager.read_pages([10**6])

    def test_btree_scan_uses_batched_reads(self):
        store, _, _ = make_stores()
        pager = Pager(store)
        pager.format()
        tree = BTree.create(pager)
        for i in range(300):
            tree.put(f"{i:04d}".encode(), b"payload")
        pager.commit()

        fresh = Pager(store)
        fresh.open()
        fresh_tree = BTree(fresh, tree.root)
        before = store.stats.snapshot()
        got = [key for key, _ in fresh_tree.scan()]
        delta = store.stats.delta(before)
        assert got == [f"{i:04d}".encode() for i in range(300)]
        # interior nodes batch their in-range children: far fewer device
        # round trips than one per leaf
        assert delta.batched_reads > 0
        assert delta.reads < 300
