"""The simulated trusted platform: stores, crash semantics, attacker API."""

import pytest

from repro.errors import CrashError
from repro.platform import (
    CrashInjector,
    DiskModel,
    FileArchivalStore,
    FileUntrustedStore,
    MemoryArchivalStore,
    MemoryUntrustedStore,
    SecretStore,
    TamperResistantCounter,
    TamperResistantStore,
    TrustedPlatform,
)


class TestSecretStore:
    def test_generate_and_read(self):
        store = SecretStore.generate()
        assert len(store.read()) == SecretStore.SIZE
        assert store.read() == store.read()

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            SecretStore(b"short")


class TestTamperResistant:
    def test_store_roundtrip(self):
        tr = TamperResistantStore()
        tr.write(b"hash-and-tail")
        assert tr.read() == b"hash-and-tail"
        assert tr.write_count == 1

    def test_store_size_limit(self):
        tr = TamperResistantStore()
        with pytest.raises(ValueError):
            tr.write(b"x" * (TamperResistantStore.SIZE + 1))

    def test_counter_monotonic(self):
        counter = TamperResistantCounter()
        assert counter.increment() == 1
        counter.advance_to(10)
        assert counter.read() == 10

    def test_counter_cannot_decrement(self):
        counter = TamperResistantCounter(5)
        with pytest.raises(ValueError):
            counter.advance_to(4)

    def test_counter_advance_to_same_is_free(self):
        counter = TamperResistantCounter(5)
        counter.advance_to(5)
        assert counter.write_count == 0

    def test_counter_negative_initial(self):
        with pytest.raises(ValueError):
            TamperResistantCounter(-1)


class TestUntrustedStore:
    def test_write_read(self):
        store = MemoryUntrustedStore(1024)
        store.write(10, b"hello")
        assert store.read(10, 5) == b"hello"

    def test_out_of_range(self):
        store = MemoryUntrustedStore(100)
        with pytest.raises(ValueError):
            store.read(90, 20)
        with pytest.raises(ValueError):
            store.write(99, b"ab")

    def test_crash_reverts_unflushed(self):
        store = MemoryUntrustedStore(1024)
        store.write(0, b"durable")
        store.flush()
        store.write(0, b"lost!!!")
        store.simulate_crash()
        assert store.read(0, 7) == b"durable"

    def test_crash_after_flush_keeps_data(self):
        store = MemoryUntrustedStore(1024)
        store.write(0, b"data")
        store.flush()
        store.simulate_crash()
        assert store.read(0, 4) == b"data"

    def test_overlapping_writes_revert_in_order(self):
        store = MemoryUntrustedStore(64)
        store.write(0, b"AAAA")
        store.flush()
        store.write(0, b"BBBB")
        store.write(2, b"CC")
        store.simulate_crash()
        assert store.read(0, 4) == b"AAAA"

    def test_partial_flush_crash(self):
        injector = CrashInjector()
        store = MemoryUntrustedStore(1024, injector)
        store.write(0, b"first")
        store.write(100, b"second")
        injector.arm("untrusted.flush.partial", 1)
        with pytest.raises(CrashError):
            store.flush()
        store.simulate_crash()
        # the first write became durable, the second did not
        assert store.read(0, 5) == b"first"
        assert store.read(100, 6) == b"\x00" * 6

    def test_io_stats(self):
        store = MemoryUntrustedStore(1024)
        store.write(0, b"abc")
        store.read(0, 3)
        store.flush()
        assert store.stats.writes == 1
        assert store.stats.bytes_written == 3
        assert store.stats.reads == 1
        assert store.stats.flushes == 1

    def test_stats_delta(self):
        store = MemoryUntrustedStore(1024)
        store.write(0, b"abc")
        snap = store.stats.snapshot()
        store.write(3, b"de")
        delta = store.stats.delta(snap)
        assert delta.writes == 1 and delta.bytes_written == 2

    def test_tamper_api(self):
        store = MemoryUntrustedStore(1024)
        store.write(0, b"secret-ish")
        store.flush()
        assert store.tamper_read(0, 6) == b"secret"
        store.tamper_write(0, b"HACKED")
        assert store.read(0, 6) == b"HACKED"

    def test_replay(self):
        store = MemoryUntrustedStore(64)
        store.write(0, b"v1")
        store.flush()
        image = store.tamper_image()
        store.write(0, b"v2")
        store.flush()
        store.tamper_replay(image)
        assert store.read(0, 2) == b"v1"

    def test_replay_size_check(self):
        store = MemoryUntrustedStore(64)
        with pytest.raises(ValueError):
            store.tamper_replay(b"short")

    def test_read_many(self):
        store = MemoryUntrustedStore(64)
        store.write(0, b"ab")
        store.write(10, b"cd")
        assert store.read_many([(0, 2), (10, 2)]) == [b"ab", b"cd"]

    def test_file_backed(self, tmp_path):
        path = str(tmp_path / "store.bin")
        store = FileUntrustedStore(path, 4096)
        store.write(100, b"persists")
        store.flush()
        store.close()
        store2 = FileUntrustedStore(path, 4096)
        assert store2.read(100, 8) == b"persists"
        store2.close()


class TestCrashInjector:
    def test_countdown(self):
        injector = CrashInjector()
        injector.arm("point", countdown=2)
        injector.point("point")
        injector.point("point")
        with pytest.raises(CrashError):
            injector.point("point")

    def test_other_points_unaffected(self):
        injector = CrashInjector()
        injector.arm("a")
        injector.point("b")
        with pytest.raises(CrashError):
            injector.point("a")

    def test_disarm(self):
        injector = CrashInjector()
        injector.arm("a")
        injector.disarm()
        injector.point("a")

    def test_history_and_counts(self):
        injector = CrashInjector()
        injector.point("x")
        injector.point("x")
        assert injector.counts["x"] == 2
        assert injector.history == ["x", "x"]


class TestArchival:
    @pytest.fixture(params=["memory", "file"])
    def archival(self, request, tmp_path):
        if request.param == "memory":
            return MemoryArchivalStore()
        return FileArchivalStore(str(tmp_path / "archive"))

    def test_stream_roundtrip(self, archival):
        writer = archival.create_stream("backup-1")
        writer.write(b"hello ")
        writer.write(b"world")
        archival.commit_stream("backup-1", writer)
        reader = archival.open_stream("backup-1")
        assert reader.read_exact(11) == b"hello world"
        assert reader.exhausted()

    def test_missing_stream(self, archival):
        with pytest.raises(KeyError):
            archival.open_stream("nope")

    def test_list_and_delete(self, archival):
        writer = archival.create_stream("s1")
        writer.write(b"x")
        archival.commit_stream("s1", writer)
        assert "s1" in archival.list_streams()
        archival.delete_stream("s1")
        assert "s1" not in archival.list_streams()

    def test_truncated_read(self, archival):
        writer = archival.create_stream("s")
        writer.write(b"ab")
        archival.commit_stream("s", writer)
        reader = archival.open_stream("s")
        with pytest.raises(ValueError):
            reader.read_exact(5)

    def test_tamper_stream(self, archival):
        writer = archival.create_stream("s")
        writer.write(b"aaaa")
        archival.commit_stream("s", writer)
        archival.tamper_stream("s", 1, b"XX")
        assert archival.open_stream("s").read_exact(4) == b"aXXa"


class TestDiskModel:
    def test_commit_formula(self):
        model = DiskModel(
            untrusted_flush_latency=0.01,
            untrusted_bandwidth=1e6,
            tamper_resistant_latency=0.005,
        )
        # l_u + bytes/b_u + l_t
        assert model.commit_io_time(1, 1_000_000, 1) == pytest.approx(1.015)

    def test_write_time_counts_flushes_and_bytes(self):
        from repro.platform.untrusted import IOStats

        model = DiskModel(untrusted_flush_latency=0.02, untrusted_bandwidth=2e6)
        stats = IOStats(flushes=3, bytes_written=4_000_000)
        assert model.write_time(stats) == pytest.approx(0.06 + 2.0)


class TestTrustedPlatform:
    def test_create_in_memory(self):
        platform = TrustedPlatform.create_in_memory(untrusted_size=1 << 20)
        assert platform.untrusted.size == 1 << 20
        assert len(platform.secret_store.read()) == 16

    def test_reboot_loses_unflushed(self):
        platform = TrustedPlatform.create_in_memory(untrusted_size=1 << 16)
        platform.untrusted.write(0, b"gone")
        platform.reboot()
        assert platform.untrusted.read(0, 4) == b"\x00" * 4
