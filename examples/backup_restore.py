#!/usr/bin/env python
"""Backups and restores (§6): incremental backups to an untrusted
archive, and recovery from a total media failure.

Shows:
  * consistent snapshots via copy-on-write partition copies;
  * incremental backups whose size tracks the amount of change;
  * restore onto a brand-new untrusted store (only the 16-byte platform
    secret survives the "disk fire");
  * the ordering constraints: incrementals restore in order with no
    missing links, and tampered archives are rejected;
  * the restore approval hook that limits rollback attacks (§1.2).

Run:  python examples/backup_restore.py
"""

from repro import (
    BackupStore,
    ChunkStore,
    ObjectStore,
    StoreConfig,
    TrustedPlatform,
)
from repro.errors import BackupIntegrityError, BackupOrderingError

CONFIG = StoreConfig(system_cipher="ctr-sha256")


def main() -> None:
    platform = TrustedPlatform.create_in_memory(untrusted_size=8 * 1024 * 1024)
    chunks = ChunkStore.format(platform, CONFIG)
    objects = ObjectStore(chunks)
    pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
    backup = BackupStore(chunks)

    # day 0: initial state + full backup
    refs = {}
    with objects.transaction() as tx:
        for i in range(50):
            refs[i] = tx.create(pid, {"doc": i, "rev": 0})
    info = backup.create_backup([pid], "monday")
    print(f"monday:  full backup, {info.bytes_written} bytes")

    # day 1: small change + incremental backup
    with objects.transaction() as tx:
        tx.update(refs[7], {"doc": 7, "rev": 1})
    info = backup.create_backup([pid], "tuesday")
    print(f"tuesday: incremental backup, {info.bytes_written} bytes "
          f"(incremental={info.incremental[pid]})")

    # day 2: more changes
    with objects.transaction() as tx:
        for i in range(10, 20):
            tx.update(refs[i], {"doc": i, "rev": 2})
        tx.delete(refs[49])
    info = backup.create_backup([pid], "wednesday")
    print(f"wednesday: incremental backup, {info.bytes_written} bytes")

    # --- total media failure ------------------------------------------------
    print("\n*** the disk dies ***  (only the platform secret and the "
          "archive survive)")
    replacement = TrustedPlatform.create_in_memory(
        untrusted_size=8 * 1024 * 1024, secret=platform.secret_store.read()
    )
    replacement.archival = platform.archival

    chunks2 = ChunkStore.format(replacement, CONFIG)
    backup2 = BackupStore(chunks2)

    # ordering is enforced: you cannot start from tuesday
    try:
        backup2.restore(["tuesday"])
    except BackupOrderingError as exc:
        print(f"restore ordering enforced: {exc}")

    # a trusted approval policy sees the descriptors before anything happens
    def approve(descriptors):
        for descriptor in descriptors:
            print(
                f"  approving restore of partition {descriptor.source_pid} "
                f"(snapshot {descriptor.snapshot_pid}, "
                f"incremental={descriptor.incremental})"
            )
        return True

    backup2.restore(["monday", "tuesday", "wednesday"], approve=approve)
    objects2 = ObjectStore(chunks2)
    print("restored doc 7:", objects2.read_committed(refs[7]))
    print("restored doc 15:", objects2.read_committed(refs[15]))
    assert objects2.read_committed(refs[7])["rev"] == 1
    assert objects2.read_committed(refs[15])["rev"] == 2

    # --- tampered archive ----------------------------------------------------
    platform.archival.tamper_stream("monday", 300, b"\xde\xad")
    third = TrustedPlatform.create_in_memory(
        untrusted_size=8 * 1024 * 1024, secret=platform.secret_store.read()
    )
    third.archival = platform.archival
    chunks3 = ChunkStore.format(third, CONFIG)
    try:
        BackupStore(chunks3).restore(["monday"])
        raise SystemExit("BUG: tampered backup accepted!")
    except BackupIntegrityError as exc:
        print(f"\ntampered archive rejected: {exc}")


if __name__ == "__main__":
    main()
