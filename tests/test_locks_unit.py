"""Lock manager unit tests (§7): modes, upgrades, release semantics,
and the stale-state regression that once broke mutual exclusion."""

import threading
import time

import pytest

from repro.errors import DeadlockError
from repro.objectstore.locks import LockManager


class TestModes:
    def test_shared_is_compatible_with_shared(self):
        locks = LockManager(timeout=0.1)
        locks.acquire_shared(1, "r")
        locks.acquire_shared(2, "r")
        assert locks.holds(1, "r") and locks.holds(2, "r")

    def test_exclusive_excludes_shared(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_exclusive(1, "r")
        with pytest.raises(DeadlockError):
            locks.acquire_shared(2, "r")

    def test_shared_excludes_exclusive(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_shared(1, "r")
        with pytest.raises(DeadlockError):
            locks.acquire_exclusive(2, "r")

    def test_exclusive_excludes_exclusive(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_exclusive(1, "r")
        with pytest.raises(DeadlockError):
            locks.acquire_exclusive(2, "r")

    def test_x_subsumes_s(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_exclusive(1, "r")
        locks.acquire_shared(1, "r")  # no self-deadlock
        assert locks.holds(1, "r", exclusive=True)

    def test_reentrant_exclusive(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_exclusive(1, "r")
        locks.acquire_exclusive(1, "r")

    def test_distinct_refs_independent(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_exclusive(1, "a")
        locks.acquire_exclusive(2, "b")  # no contention


class TestUpgrade:
    def test_sole_shared_holder_upgrades(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_shared(1, "r")
        locks.acquire_exclusive(1, "r")
        assert locks.holds(1, "r", exclusive=True)

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_shared(1, "r")
        locks.acquire_shared(2, "r")
        with pytest.raises(DeadlockError):
            locks.acquire_exclusive(1, "r")

    def test_upgrade_after_other_reader_leaves(self):
        locks = LockManager(timeout=0.5)
        locks.acquire_shared(1, "r")
        locks.acquire_shared(2, "r")

        def release_later():
            time.sleep(0.05)
            locks.release_all(2)

        thread = threading.Thread(target=release_later)
        thread.start()
        locks.acquire_exclusive(1, "r")  # succeeds once tx 2 releases
        thread.join()


class TestRelease:
    def test_release_all_frees_everything(self):
        locks = LockManager(timeout=0.05)
        locks.acquire_exclusive(1, "a")
        locks.acquire_shared(1, "b")
        locks.release_all(1)
        locks.acquire_exclusive(2, "a")
        locks.acquire_exclusive(2, "b")

    def test_release_unknown_tx_is_noop(self):
        locks = LockManager()
        locks.release_all(42)

    def test_holds_after_release(self):
        locks = LockManager()
        locks.acquire_exclusive(1, "r")
        locks.release_all(1)
        assert not locks.holds(1, "r")

    def test_deadlock_counter(self):
        locks = LockManager(timeout=0.02)
        locks.acquire_exclusive(1, "r")
        for _ in range(3):
            with pytest.raises(DeadlockError):
                locks.acquire_exclusive(2, "r")
        assert locks.deadlocks_broken == 3


class TestWriterFairness:
    def test_pending_writer_blocks_new_readers(self):
        """Regression: a stream of readers must not starve a waiting
        writer — while an X request waits, *new* S grants are refused, so
        the writer runs as soon as the current readers drain."""
        locks = LockManager(timeout=2.0)
        locks.acquire_shared(1, "r")
        order = []

        def writer():
            locks.acquire_exclusive(2, "r")
            order.append("writer")
            locks.release_all(2)

        def late_reader():
            locks.acquire_shared(3, "r")
            order.append("reader")
            locks.release_all(3)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        deadline = time.time() + 1.0
        while locks.stats()["waits"] < 1 and time.time() < deadline:
            time.sleep(0.005)  # until the writer is registered waiting
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        time.sleep(0.05)  # give the late reader every chance to jump the queue
        assert order == []  # neither ran: reader correctly held back
        locks.release_all(1)
        writer_thread.join(1.0)
        reader_thread.join(1.0)
        assert order == ["writer", "reader"]

    def test_holder_reentry_not_blocked_by_waiter(self):
        """A reader that already holds S must re-enter freely even while
        a writer waits — blocking it would deadlock both."""
        locks = LockManager(timeout=1.0)
        locks.acquire_shared(1, "r")

        def writer():
            try:
                locks.acquire_exclusive(2, "r")
            except DeadlockError:
                pass
            finally:
                locks.release_all(2)

        thread = threading.Thread(target=writer)
        thread.start()
        deadline = time.time() + 1.0
        while locks.stats()["waits"] < 1 and time.time() < deadline:
            time.sleep(0.005)
        locks.acquire_shared(1, "r")  # re-entry: must return immediately
        assert locks.holds(1, "r")
        locks.release_all(1)
        thread.join(2.0)

    def test_stats_counts_waits_and_deadlocks(self):
        locks = LockManager(timeout=0.02)
        stats = locks.stats()
        assert stats["waits"] == 0 and stats["deadlocks_broken"] == 0
        locks.acquire_exclusive(1, "r")
        with pytest.raises(DeadlockError):
            locks.acquire_exclusive(2, "r")
        stats = locks.stats()
        assert stats["waits"] == 1
        assert stats["deadlocks_broken"] == 1
        assert stats["held_refs"] == 1
        assert stats["active_transactions"] == 1


class TestStaleStateRegression:
    def test_waiter_does_not_grant_on_orphaned_state(self):
        """Regression: release_all pops empty state objects; a waiter
        woken afterwards must re-fetch the live object from the dict, or
        two transactions can both 'hold' X on different objects."""
        locks = LockManager(timeout=2.0)
        locks.acquire_exclusive(1, "r")
        order = []

        def waiter():
            locks.acquire_exclusive(2, "r")
            order.append("2-granted")
            time.sleep(0.05)
            order.append("2-releasing")
            locks.release_all(2)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        locks.release_all(1)  # pops nothing (waiter pending), wakes tx 2
        thread.join(0.5)
        # now acquire with tx 3: must see tx 2's release, not a stale state
        locks.acquire_exclusive(3, "r")
        order.append("3-granted")
        assert order == ["2-granted", "2-releasing", "3-granted"]

    def test_hammer_mutual_exclusion(self):
        """Three threads hammer one ref; at most one inside at any time."""
        locks = LockManager(timeout=5.0)
        inside = []
        errors = []

        def worker(tx_id):
            for _ in range(50):
                locks.acquire_exclusive(tx_id, "hot")
                inside.append(tx_id)
                if len(inside) > 1:
                    errors.append(list(inside))
                inside.remove(tx_id)
                locks.release_all(tx_id)

        threads = [threading.Thread(target=worker, args=(t,)) for t in (1, 2, 3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
