"""XTEA block cipher (Needham & Wheeler, 1997), implemented from scratch.

Included as a concrete instance of the paper's observation that "there are
other, more secure, algorithms that run faster than DES" (§9.2.1): XTEA has
a 128-bit key and a trivially small implementation.  It operates on 8-byte
blocks, so it composes with the same CBC wrapper as DES.
"""

from __future__ import annotations

from repro.crypto.cipher import BlockCipher

_DELTA = 0x9E3779B9
_MASK = 0xFFFFFFFF
_ROUNDS = 32


class Xtea(BlockCipher):
    """XTEA over 8-byte blocks with a 16-byte key."""

    block_size = 8

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"XTEA key must be 16 bytes, got {len(key)}")
        self._key = [int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4)]
        # Precompute the per-round key material for both directions.
        enc_sums = []
        total = 0
        for _ in range(_ROUNDS):
            enc_sums.append(total)
            total = (total + _DELTA) & _MASK
        self._enc_sums = enc_sums
        self._final_sum = total

    def encrypt_block(self, block: bytes) -> bytes:
        v0 = int.from_bytes(block[:4], "big")
        v1 = int.from_bytes(block[4:], "big")
        key = self._key
        for total in self._enc_sums:
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & _MASK
            total2 = (total + _DELTA) & _MASK
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total2 + key[(total2 >> 11) & 3]))) & _MASK
        return v0.to_bytes(4, "big") + v1.to_bytes(4, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        v0 = int.from_bytes(block[:4], "big")
        v1 = int.from_bytes(block[4:], "big")
        key = self._key
        total = self._final_sum
        for _ in range(_ROUNDS):
            v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + key[(total >> 11) & 3]))) & _MASK
            total = (total - _DELTA) & _MASK
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & _MASK
        return v0.to_bytes(4, "big") + v1.to_bytes(4, "big")
