"""TDB — a trusted database system on untrusted storage.

A from-scratch Python reproduction of Maheshwari, Vingralek & Shapiro,
"How to Build a Trusted Database System on Untrusted Storage" (OSDI 2000).

Layers (paper Figure 2)::

    CollectionStore   indexed collections, functional indexes      (§8)
    ObjectStore       typed objects, 2PL transactions, pickling    (§7)
    ChunkStore        log-structured trusted storage, Merkle map   (§4-5)
    BackupStore       full/incremental backup sets                 (§6)
    TrustedPlatform   secret store, TR store/counter, untrusted
                      store, archival store                        (§2.1)

Quickstart::

    from repro import (TrustedPlatform, ChunkStore, StoreConfig,
                       ObjectStore, CollectionStore)

    platform = TrustedPlatform.create_in_memory()
    chunks = ChunkStore.format(platform)
    objects = ObjectStore(chunks)
    pid = objects.create_partition(cipher_name="des-cbc", hash_name="sha1")
    with objects.transaction() as tx:
        ref = tx.create(pid, {"hello": "world"})
    print(objects.read_committed(ref))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from repro.backup import BackupStore
from repro.chunkstore import ChunkStore, StoreConfig, ops
from repro.collection import CollectionStore, field_key, register_key_function
from repro.errors import TamperDetectedError, TDBError
from repro.kv import TrustedKV
from repro.objectstore import ObjectRef, ObjectStore, register_class
from repro.platform import TrustedPlatform

__version__ = "1.0.0"

__all__ = [
    "TrustedPlatform",
    "ChunkStore",
    "StoreConfig",
    "ops",
    "ObjectStore",
    "ObjectRef",
    "register_class",
    "CollectionStore",
    "register_key_function",
    "field_key",
    "BackupStore",
    "TrustedKV",
    "TDBError",
    "TamperDetectedError",
    "__version__",
]
