"""Crypto layered on top of XDB — the architecture §1.2 argues against.

``SecureXDB`` does what a developer would do with an off-the-shelf
embedded database and a crypto library:

* objects are pickled, then **encrypted before insertion**, so the
  database only ever sees ciphertext records;
* tamper detection comes from a **Merkle tree maintained as ordinary
  records**: per-record hashes grouped into fanout-64 nodes, the root
  anchored in the tamper-resistant store.  Every object update therefore
  performs 2–3 *extra* record updates (leaf node + path to root) inside
  XDB — which turn into extra dirty pages, WAL volume, and forced page
  writes at commit;
* index keys are encrypted **deterministically** (truncated MAC), so
  exact-match lookups work but *ordered* indexes and range queries are
  impossible — the metadata/functionality gap the paper calls out.

And crucially, the layer cannot protect XDB's own metadata: flipping bits
in an index page or in the table catalog silently corrupts query results
(an attack could "effectively delete an object by modifying the indexes",
§1.2).  The test suite demonstrates exactly that asymmetry against TDB.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional

from repro.chunkstore.config import derive_key, mac_key
from repro.crypto.mac import Mac
from repro.crypto.registry import KEY_SIZES, make_cipher, make_hash
from repro.errors import TamperDetectedError
from repro.objectstore.pickling import pickle_value, unpickle_value
from repro.platform.secret_store import SecretStore
from repro.platform.tamper_resistant import TamperResistantStore
from repro.platform.untrusted import UntrustedStore
from repro.xdb.btree import BTree
from repro.xdb.db import XDB, Table

_FANOUT = 64


class SecureXDB:
    """Encryption + Merkle validation layered over :class:`XDB`."""

    def __init__(
        self,
        db: XDB,
        secret_store: SecretStore,
        tamper_resistant: TamperResistantStore,
        cipher_name: str = "des-cbc",
        hash_name: str = "sha1",
        tr_period: int = 1,
    ) -> None:
        self.db = db
        #: update the TR anchor once every ``tr_period`` commits — matching
        #: the paper's "same frequency of flushing the tamper-resistant
        #: store" configuration (Δut analog; the unanchored window carries
        #: the same bounded-rollback risk as TDB's counter lag)
        self.tr_period = tr_period
        self._commits_since_anchor = 0
        secret = secret_store.read()
        self.cipher = make_cipher(
            cipher_name, derive_key(secret, "xdb.cipher", KEY_SIZES[cipher_name])
        )
        self.hash = make_hash(hash_name)
        self.mac = Mac(mac_key(secret), self.hash)
        self.tr = tamper_resistant
        self._trust: Optional[BTree] = None
        #: index name -> key extraction function (in-memory, like the
        #: collection store's functional-index registry)
        self.key_functions: Dict[str, Callable[[Any], Any]] = {}

    # ------------------------------------------------------------------

    @classmethod
    def format(
        cls,
        store: UntrustedStore,
        secret_store: SecretStore,
        tamper_resistant: TamperResistantStore,
        cipher_name: str = "des-cbc",
        hash_name: str = "sha1",
        cache_pages: int = 1024,
        tr_period: int = 1,
    ) -> "SecureXDB":
        db = XDB.format(store, cache_pages)
        secure = cls(
            db, secret_store, tamper_resistant, cipher_name, hash_name, tr_period
        )
        secure._trust = secure.db.create_kv("__trust__")
        secure._update_root_anchor()
        db.commit()
        return secure

    @classmethod
    def open(
        cls,
        store: UntrustedStore,
        secret_store: SecretStore,
        tamper_resistant: TamperResistantStore,
        cipher_name: str = "des-cbc",
        hash_name: str = "sha1",
        cache_pages: int = 1024,
        tr_period: int = 1,
    ) -> "SecureXDB":
        db = XDB.open(store, cache_pages)
        secure = cls(
            db, secret_store, tamper_resistant, cipher_name, hash_name, tr_period
        )
        secure._trust = secure.db.kv("__trust__")
        secure._check_root_anchor()
        return secure

    def close(self) -> None:
        """Flush and anchor (required before reopen when tr_period > 1)."""
        self.db.commit()
        self._update_root_anchor()
        self._commits_since_anchor = 0

    def commit(self) -> None:
        self.db.commit()
        self._commits_since_anchor += 1
        if self._commits_since_anchor >= self.tr_period:
            self._update_root_anchor()
            self._commits_since_anchor = 0

    # ------------------------------------------------------------------
    # Merkle tree over records, stored as ordinary kv entries
    # ------------------------------------------------------------------

    def _node_key(self, table: str, level: int, index: int) -> bytes:
        return f"{table}:{level}:{index}".encode()

    def _get_node(self, table: str, level: int, index: int) -> Dict[int, bytes]:
        raw = self._trust.get(self._node_key(table, level, index))
        if raw is None:
            return {}
        node: Dict[int, bytes] = {}
        pos = 0
        size = self.hash.digest_size
        while pos < len(raw):
            (slot,) = struct.unpack_from(">H", raw, pos)
            pos += 2
            node[slot] = raw[pos : pos + size]
            pos += size
        return node

    def _put_node(self, table: str, level: int, index: int, node: Dict[int, bytes]) -> None:
        out = bytearray()
        for slot in sorted(node):
            out += struct.pack(">H", slot) + node[slot]
        self._trust.put(self._node_key(table, level, index), bytes(out))

    def _node_hash(self, node: Dict[int, bytes]) -> bytes:
        hasher = self.hash.new()
        for slot in sorted(node):
            hasher.update(struct.pack(">H", slot))
            hasher.update(node[slot])
        return hasher.digest()

    def _set_leaf_hash(self, table: str, rid: int, digest: Optional[bytes]) -> None:
        """Install (or clear) a record hash and propagate to the root."""
        level, index, slot = 0, rid // _FANOUT, rid % _FANOUT
        current = digest
        # table root lives at a fixed high level; propagate 3 levels, which
        # addresses 64^3 ≈ 262k records per table — plenty for the workload
        for level in range(3):
            node = self._get_node(table, level, index)
            if current is None and level == 0:
                node.pop(slot, None)
            else:
                node[slot] = current if current is not None else self._node_hash({})
            self._put_node(table, level, index, node)
            current = self._node_hash(node)
            slot = index % _FANOUT
            index //= _FANOUT

    def _table_root_hash(self, table: str) -> bytes:
        return self._node_hash(self._get_node(table, 2, 0))

    def _master_hash(self) -> bytes:
        hasher = self.hash.new()
        for name in sorted(self.db.table_names()):
            hasher.update(name.encode())
            hasher.update(self._table_root_hash(name))
        return hasher.digest()

    def _update_root_anchor(self) -> None:
        from repro.bench.profiler import profiled

        with profiled("tamper-resistant store"):
            self.tr.write(self._master_hash())

    def _check_root_anchor(self) -> None:
        if self.tr.read() != self._master_hash():
            raise TamperDetectedError("XDB master hash mismatch (replay or tamper)")

    # ------------------------------------------------------------------
    # collections (tables + deterministic-key indexes)
    # ------------------------------------------------------------------

    def create_collection(
        self, name: str, indexes: Dict[str, Callable[[Any], Any]]
    ) -> Table:
        table = self.db.create_table(name)
        for index_name, key_function in indexes.items():
            self.db.create_index(table, index_name)
            self.key_functions[f"{name}:{index_name}"] = key_function
        return table

    def open_collection(
        self, name: str, indexes: Dict[str, Callable[[Any], Any]]
    ) -> Table:
        table = self.db.table(name)
        for index_name, key_function in indexes.items():
            self.key_functions[f"{name}:{index_name}"] = key_function
        return table

    def _index_key_bytes(self, key: Any) -> bytes:
        # deterministic encryption: equal keys collide (enabling exact
        # match), order is destroyed (disabling ranges) — the layered
        # design's documented functionality gap
        return self.mac.sign(pickle_value(key))[:16]

    # ------------------------------------------------------------------
    # object operations
    # ------------------------------------------------------------------

    def insert(self, table: Table, value: Any) -> int:
        from repro.bench.profiler import profiled

        data = pickle_value(value)
        with profiled("encryption"):
            ciphertext = self.cipher.encrypt(data)
        rid = self.db.insert(table, ciphertext)
        with profiled("hashing"):
            digest = self.hash.hash(data)
        self._set_leaf_hash(table.name, rid, digest)
        for index_name in table.indexes:
            key = self.key_functions[f"{table.name}:{index_name}"](value)
            if key is not None:
                self.db.index_put(
                    table, index_name, self._index_key_bytes(key), rid
                )
        return rid

    def read(self, table: Table, rid: int) -> Any:
        from repro.bench.profiler import profiled

        ciphertext = self.db.read(table, rid)
        with profiled("encryption"):
            data = self.cipher.decrypt(ciphertext)
        with profiled("hashing"):
            digest = self.hash.hash(data)
        node = self._get_node(table.name, 0, rid // _FANOUT)
        if node.get(rid % _FANOUT) != digest:
            raise TamperDetectedError(
                f"XDB record {table.name}:{rid} fails validation"
            )
        return unpickle_value(data)

    def update(self, table: Table, rid: int, value: Any) -> None:
        from repro.bench.profiler import profiled

        old_value = self.read(table, rid)
        data = pickle_value(value)
        with profiled("encryption"):
            ciphertext = self.cipher.encrypt(data)
        self.db.update(table, rid, ciphertext)
        with profiled("hashing"):
            digest = self.hash.hash(data)
        self._set_leaf_hash(table.name, rid, digest)
        for index_name in table.indexes:
            key_function = self.key_functions[f"{table.name}:{index_name}"]
            old_key = key_function(old_value)
            new_key = key_function(value)
            if old_key != new_key:
                if old_key is not None:
                    self.db.index_delete(
                        table, index_name, self._index_key_bytes(old_key), rid
                    )
                if new_key is not None:
                    self.db.index_put(
                        table, index_name, self._index_key_bytes(new_key), rid
                    )

    def delete(self, table: Table, rid: int) -> None:
        value = self.read(table, rid)
        self.db.delete(table, rid)
        self._set_leaf_hash(table.name, rid, None)
        for index_name in table.indexes:
            key = self.key_functions[f"{table.name}:{index_name}"](value)
            if key is not None:
                self.db.index_delete(
                    table, index_name, self._index_key_bytes(key), rid
                )

    def exact(self, table: Table, index_name: str, key: Any) -> List[int]:
        return self.db.index_exact(table, index_name, self._index_key_bytes(key))

    def stored_bytes(self) -> int:
        """Bytes occupied by data pages (for the §9.5.2 size comparison)."""
        from repro.xdb.pager import PAGE_SIZE

        return self.db.pager.next_page * PAGE_SIZE
