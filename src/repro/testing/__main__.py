"""Command-line front end for the adversary and differential harnesses.

Usage (see also the Makefile targets)::

    python -m repro.testing adversary   [--mode counter] [--trials 64]
                                        [--seed N] [--class NAME]
                                        [--no-payload-cache] [--aead]
    python -m repro.testing differential [--mode counter] [--seeds 20]
                                        [--seed N] [--ops 50]
    python -m repro.testing faults      [--mode counter] [--trials 150]
                                        [--seed N] [--point NAME]
                                        [--rate R] [--crash-sites]
                                        [--no-payload-cache]

``--no-payload-cache`` reruns a sweep with the validated-payload cache
disabled, so detection results can be compared against the cache-enabled
default.

Exit status is non-zero iff a harness failure (silent corruption, foreign
exception, or store/model divergence) was found; each failure prints a
copy-pasteable repro line.
"""

from __future__ import annotations

import argparse
import sys

from repro.testing.adversary import (
    AEAD_PARTITION_SPECS,
    Adversary,
    build_scenario,
)
from repro.testing.differential import DifferentialRunner
from repro.testing.faultsweep import FaultSweep


def _run_adversary(args: argparse.Namespace) -> int:
    scenario = None
    if args.aead:
        from repro.crypto import aead

        if not aead.available():
            print(
                f"--aead needs the AEAD backend, which is unavailable "
                f"({aead.unavailable_reason()})",
                file=sys.stderr,
            )
            return 2
        scenario = build_scenario(
            args.mode,
            partition_specs=AEAD_PARTITION_SPECS,
            system_cipher="aes-256-gcm",
        )
    adversary = Adversary(
        mode=args.mode,
        payload_cache=not args.no_payload_cache,
        scenario=scenario,
    )
    if args.seed is not None:
        report = adversary.run_trial(args.seed, attack=args.attack_class)
        print(
            f"seed={report.seed} class={report.attack} "
            f"outcome={report.outcome}"
        )
        print(f"  {report.detail}")
        if report.failed:
            print(f"repro: {report.repro_line(args.mode)}")
            return 1
        return 0
    result = adversary.run(args.trials, base_seed=args.base_seed)
    print(f"adversary sweep: mode={args.mode} trials={len(result.reports)}")
    for attack, row in sorted(result.by_class().items()):
        summary = ", ".join(f"{k}={v}" for k, v in sorted(row.items()))
        print(f"  {attack:24s} {summary}")
    if result.failures:
        print(f"{len(result.failures)} FAILURE(S):")
        for report in result.failures:
            print(f"  {report.outcome}: {report.detail}")
            print(f"  repro: {report.repro_line(args.mode)}")
        return 1
    print("oracle held: every read returned committed bytes or raised "
          "TamperDetectedError")
    return 0


def _run_differential(args: argparse.Namespace) -> int:
    runner = DifferentialRunner(mode=args.mode, num_ops=args.ops)
    seeds = (
        [args.seed]
        if args.seed is not None
        else range(args.base_seed, args.base_seed + args.seeds)
    )
    failures = runner.run(seeds)
    total = len(list(seeds))
    print(
        f"differential: mode={args.mode} seeds={total} "
        f"ops/seed={args.ops} failures={len(failures)}"
    )
    for failure in failures:
        shrunk = runner.shrink(failure)
        print(shrunk.describe())
    return 1 if failures else 0


def _run_faults(args: argparse.Namespace) -> int:
    sweep = FaultSweep(mode=args.mode, payload_cache=not args.no_payload_cache)
    if args.seed is not None:
        report = sweep.run_trial(args.seed, point=args.point, rate=args.rate)
        print(
            f"seed={report.seed} point={report.point} rate={report.rate} "
            f"outcome={report.outcome}"
        )
        print(f"  {report.detail}")
        if report.failed:
            print(f"repro: {report.repro_line(args.mode)}")
            return 1
        return 0
    result = sweep.run(args.trials, base_seed=args.base_seed)
    print(f"fault sweep: mode={args.mode} trials={len(result.reports)}")
    for point, row in sorted(result.by_point().items()):
        summary = ", ".join(f"{k}={v}" for k, v in sorted(row.items()))
        print(f"  {point:8s} {summary}")
    status = 0
    if result.failures:
        print(f"{len(result.failures)} FAILURE(S):")
        for report in result.failures:
            print(f"  {report.outcome}: {report.detail}")
            print(f"  repro: {report.repro_line(args.mode)}")
        status = 1
    else:
        print("invariant held: every op succeeded, raised a typed TDB "
              "error, or left a reported, healable quarantine")
    if args.crash_sites:
        sites = sweep.sweep_crash_sites(samples_per_point=2)
        print(f"crash-under-faults: {len(sites)} site(s) swept clean")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.testing")
    sub = parser.add_subparsers(dest="command", required=True)

    adv = sub.add_parser("adversary", help="seeded mutation sweep")
    adv.add_argument("--mode", default="counter",
                     choices=["counter", "direct"])
    adv.add_argument("--trials", type=int, default=64)
    adv.add_argument("--base-seed", type=int, default=0)
    adv.add_argument("--seed", type=int, default=None,
                     help="replay a single trial seed")
    adv.add_argument("--class", dest="attack_class", default=None,
                     help="pin the attack class when replaying a seed")
    adv.add_argument("--no-payload-cache", action="store_true",
                     help="judge with the validated-payload cache disabled")
    adv.add_argument("--aead", action="store_true",
                     help="sweep the AEAD scenario (authenticating "
                          "partition + system ciphers, one-pass path)")

    diff = sub.add_parser("differential", help="model-based differential run")
    diff.add_argument("--mode", default="counter",
                      choices=["counter", "direct"])
    diff.add_argument("--seeds", type=int, default=20)
    diff.add_argument("--base-seed", type=int, default=0)
    diff.add_argument("--seed", type=int, default=None,
                      help="replay a single sequence seed")
    diff.add_argument("--ops", type=int, default=50)

    faults = sub.add_parser("faults", help="seeded I/O fault-tolerance sweep")
    faults.add_argument("--mode", default="counter",
                        choices=["counter", "direct"])
    faults.add_argument("--trials", type=int, default=150)
    faults.add_argument("--base-seed", type=int, default=0)
    faults.add_argument("--seed", type=int, default=None,
                        help="replay a single trial seed")
    faults.add_argument("--point", default=None,
                        help="pin the fault point when replaying a seed")
    faults.add_argument("--rate", type=float, default=None,
                        help="pin the error rate when replaying a seed")
    faults.add_argument("--crash-sites", action="store_true",
                        help="also run the crash-under-faults site sweep")
    faults.add_argument("--no-payload-cache", action="store_true",
                        help="judge with the validated-payload cache disabled")

    args = parser.parse_args(argv)
    if args.command == "adversary":
        return _run_adversary(args)
    if args.command == "faults":
        return _run_faults(args)
    return _run_differential(args)


if __name__ == "__main__":
    sys.exit(main())
