"""Systematic crash-everywhere sweep.

Run a scripted multi-layer workload once to discover every crash-
injection point it passes through, then re-run it crashing at each
(point, occurrence) pair and verify the recovery invariant:

    every operation that *returned* before the crash is durable;
    the operation in flight at the crash happened atomically or not at
    all; the store remains fully usable afterwards.

This is the closing argument for crash atomicity (§2.2): not just chosen
crash points, but all of them.
"""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.errors import CrashError
from tests.conftest import make_config, make_platform

MODES = ["counter", "direct"]


def scripted_run(platform, store, pid, crash_at=None):
    """The workload: returns the map of committed state at each step.

    If a crash fires, returns the state as of the last *completed* step
    plus the step that was in flight (for the atomicity check).
    """
    committed = {}
    in_flight = None
    steps = []
    # step list: (kind, rank, data)
    for i in range(4):
        steps.append(("write", i, f"v{i}".encode()))
    steps.append(("checkpoint", None, None))
    steps.append(("write", 1, b"v1-updated"))
    steps.append(("dealloc", 2, None))
    steps.append(("write", 4, b"late"))
    steps.append(("clean", None, None))
    steps.append(("write", 0, b"v0-final"))

    try:
        for kind, rank, data in steps:
            if kind == "write":
                in_flight = ("write", rank, data)
                state = store.partitions[pid]
                if not (
                    rank in state.pending_ranks
                    or state.is_committed_written(rank)
                ):
                    state.allocate_specific(rank)
                store.commit([ops.WriteChunk(pid, rank, data)])
                committed[rank] = data
            elif kind == "dealloc":
                in_flight = ("dealloc", rank, None)
                store.commit([ops.DeallocateChunk(pid, rank)])
                committed.pop(rank, None)
            elif kind == "checkpoint":
                in_flight = ("checkpoint", None, None)
                store.checkpoint()
            elif kind == "clean":
                in_flight = ("clean", None, None)
                store.clean(max_segments=2)
            in_flight = None
    except CrashError:
        return committed, in_flight, True
    return committed, in_flight, False


def discover_points(mode):
    platform = make_platform(size=2 * 1024 * 1024)
    store = ChunkStore.format(
        platform, make_config(validation_mode=mode, segment_size=8 * 1024)
    )
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")])
    platform.injector.counts.clear()
    scripted_run(platform, store, pid)
    return dict(platform.injector.counts)


@pytest.mark.parametrize("mode", MODES)
def test_crash_at_every_point(mode):
    points = discover_points(mode)
    assert points, "the workload must traverse injection points"
    tested = 0
    for point, occurrences in sorted(points.items()):
        # crash at the first, a middle, and the last occurrence of each point
        samples = sorted({0, occurrences // 2, occurrences - 1})
        for occurrence in samples:
            platform = make_platform(size=2 * 1024 * 1024)
            store = ChunkStore.format(
                platform, make_config(validation_mode=mode, segment_size=8 * 1024)
            )
            pid = store.allocate_partition()
            store.commit(
                [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
            )
            platform.injector.arm(point, countdown=occurrence)
            committed, in_flight, crashed = scripted_run(platform, store, pid)
            platform.injector.disarm()
            if not crashed:
                continue  # the arming landed after the workload finished
            tested += 1
            platform.reboot()
            reopened = ChunkStore.open(platform)
            # 1) completed operations are durable
            for rank, value in committed.items():
                got = reopened.read_chunk(pid, rank)
                # the in-flight op may legitimately have committed too
                if in_flight and in_flight[0] == "write" and in_flight[1] == rank:
                    assert got in (value, in_flight[2]), (point, occurrence)
                else:
                    assert got == value, (point, occurrence, rank)
            # 2) the in-flight operation was atomic
            if in_flight and in_flight[0] == "write":
                rank = in_flight[1]
                if rank not in committed:
                    try:
                        got = reopened.read_chunk(pid, rank)
                        assert got == in_flight[2], (point, occurrence)
                    except Exception:
                        pass  # not committed: equally fine
            # 3) the store still works end-to-end
            state = reopened.partitions[pid]
            state.allocate_specific(9)
            reopened.commit([ops.WriteChunk(pid, 9, b"post-crash-probe")])
            assert reopened.read_chunk(pid, 9) == b"post-crash-probe"
    assert tested >= 8, f"sweep only exercised {tested} crash sites"
