"""Hash functions and the HMAC implementation (RFC 2202 vectors)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import NullHash, Sha1Hash, Sha256Hash
from repro.crypto.mac import Mac
from repro.crypto.registry import HASH_NAMES, make_hash


class TestHashers:
    def test_sha1_known_digest(self):
        assert (
            Sha1Hash().hash(b"abc").hex()
            == "a9993e364706816aba3e25717850c26c9cd0d89d"
        )

    def test_sha256_known_digest(self):
        assert (
            Sha256Hash().hash(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_digest_sizes(self):
        assert Sha1Hash().digest_size == 20
        assert Sha256Hash().digest_size == 32
        assert NullHash().digest_size == 0

    def test_null_hash_is_empty(self):
        assert NullHash().hash(b"anything") == b""

    def test_streaming_matches_oneshot(self):
        hasher = Sha1Hash().new()
        hasher.update(b"hello ")
        hasher.update(b"world")
        assert hasher.digest() == Sha1Hash().hash(b"hello world")

    @pytest.mark.parametrize("name", HASH_NAMES)
    def test_registry(self, name):
        hash_function = make_hash(name)
        assert len(hash_function.hash(b"x")) == hash_function.digest_size

    def test_unknown_hash(self):
        with pytest.raises(ValueError):
            make_hash("md5crc")


class TestMac:
    def test_rfc2202_hmac_sha1_case1(self):
        mac = Mac(b"\x0b" * 20, Sha1Hash())
        tag = mac.sign(b"Hi There")
        assert tag.hex() == "b617318655057264e28bc0b6fb378c8ef146be00"

    def test_rfc2202_hmac_sha1_case2(self):
        mac = Mac(b"Jefe", Sha1Hash())
        tag = mac.sign(b"what do ya want for nothing?")
        assert tag.hex() == "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"

    def test_rfc4231_hmac_sha256_case1(self):
        mac = Mac(b"\x0b" * 20, Sha256Hash())
        tag = mac.sign(b"Hi There")
        assert (
            tag.hex()
            == "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_long_key_is_hashed_first(self):
        # RFC 2202 case 6: 80-byte key
        mac = Mac(b"\xaa" * 80, Sha1Hash())
        tag = mac.sign(b"Test Using Larger Than Block-Size Key - Hash Key First")
        assert tag.hex() == "aa4ae5e15272d00e95705637ce8a3b55ed402112"

    def test_verify_accepts_valid(self):
        mac = Mac(b"secret", Sha1Hash())
        assert mac.verify(b"message", mac.sign(b"message"))

    def test_verify_rejects_modified_message(self):
        mac = Mac(b"secret", Sha1Hash())
        assert not mac.verify(b"messagX", mac.sign(b"message"))

    def test_verify_rejects_modified_tag(self):
        mac = Mac(b"secret", Sha1Hash())
        tag = bytearray(mac.sign(b"message"))
        tag[0] ^= 1
        assert not mac.verify(b"message", bytes(tag))

    def test_verify_rejects_wrong_length(self):
        mac = Mac(b"secret", Sha1Hash())
        assert not mac.verify(b"message", b"short")

    def test_different_keys_different_tags(self):
        assert Mac(b"key1", Sha1Hash()).sign(b"m") != Mac(b"key2", Sha1Hash()).sign(
            b"m"
        )

    def test_null_hash_rejected(self):
        with pytest.raises(ValueError):
            Mac(b"key", NullHash())

    @given(st.binary(max_size=100), st.binary(min_size=1, max_size=40))
    def test_sign_verify_roundtrip(self, message, key):
        mac = Mac(key, Sha256Hash())
        assert mac.verify(message, mac.sign(message))
