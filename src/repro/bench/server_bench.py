"""Serving-layer benchmark: ``python -m repro.bench.server_bench``.

Measures what the concurrent serving layer buys over the single-session
commit path, on a device whose ``flush`` has realistic latency (the cost
group commit exists to amortize):

* ``baseline`` — one session committing ``writers * txs`` transactions
  sequentially through the plain ``ObjectStore`` path: one log flush per
  transaction, the pre-server behavior;
* ``concurrent`` — the same total transaction count issued from
  ``writers`` threads through :class:`~repro.server.server.TDBServer`,
  so concurrently-arriving commits share one flush via the
  :class:`~repro.server.group_commit.GroupCommitter`.  ``readers``
  threads serve themselves MVCC snapshots the whole time and count reads
  that complete *inside* an in-flight commit's flush window — the proof
  that snapshot reads never queue behind the commit path.

Per-transaction commit latency feeds the obs histograms
(``server.tx_commit`` / ``server.tx_commit_baseline``; the committer's
own ``server.group_commit`` histogram times each batch flush), and the
JSON reports their p50/p99.

Results go to ``BENCH_server.json``; ``--check`` exits non-zero unless
the acceptance floors hold (mean commit-batch size > 1, concurrent
throughput ≥ 2× the single-session baseline, and at least one snapshot
read completed during an in-flight commit), which CI uses as a
concurrency-regression smoke test.  ``--tiny`` shrinks the run for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.chunkstore import ChunkStore, StoreConfig
from repro.objectstore.pickling import ObjectRef
from repro.objectstore.store import ObjectStore
from repro.platform.archival import MemoryArchivalStore
from repro.platform.crash import CrashInjector
from repro.platform.secret_store import SecretStore
from repro.platform.tamper_resistant import (
    TamperResistantCounter,
    TamperResistantStore,
)
from repro.platform.trusted_platform import TrustedPlatform
from repro.platform.untrusted import MemoryUntrustedStore
from repro.server import TDBServer

#: acceptance floor: transactions per durable batch, concurrent phase
#: (strictly above 1.0 — otherwise group commit amortized nothing)
MEAN_BATCH_FLOOR = 1.0

#: acceptance floor: concurrent throughput over the sequential baseline
SPEEDUP_FLOOR = 2.0

#: acceptance floor: snapshot reads completed entirely inside a commit's
#: flush window (proof that readers do not block behind the commit path)
READS_DURING_COMMIT_FLOOR = 1

#: partition cipher/hash: the cheap stream suite, so device flush latency
#: (what group commit amortizes) dominates the numbers, not crypto
PARTITION_CIPHER = "ctr-sha256"
PARTITION_HASH = "sha1"


class SlowFlushStore(MemoryUntrustedStore):
    """In-memory untrusted store whose ``flush`` takes real time.

    The delay runs *before* ``super().flush()`` — i.e. outside the I/O
    mutex, per the :class:`~repro.platform.untrusted.UntrustedStore`
    contract — modeling a disk whose cache flush stalls the flusher but
    not concurrent readers.  ``flushing`` is readable by other threads
    so the bench can tell which snapshot reads overlapped a flush.
    """

    def __init__(
        self,
        size: int,
        crash_injector: Optional[CrashInjector] = None,
        fault_injector=None,
        flush_delay: float = 0.002,
    ) -> None:
        super().__init__(size, crash_injector, fault_injector)
        self.flush_delay = flush_delay
        self.flushing = False
        self.flushes_timed = 0
        self.reads_during_flush = 0
        self._tally_mutex = threading.Lock()

    def read(self, location: int, size: int) -> bytes:
        if self.flushing:
            with self._tally_mutex:
                self.reads_during_flush += 1
        return super().read(location, size)

    def flush(self) -> None:
        self.flushing = True
        try:
            time.sleep(self.flush_delay)
        finally:
            self.flushing = False
        with self._tally_mutex:
            self.flushes_timed += 1
        super().flush()


def _platform(flush_delay: float) -> TrustedPlatform:
    injector = CrashInjector()
    return TrustedPlatform(
        secret_store=SecretStore(os.urandom(SecretStore.SIZE)),
        tamper_resistant=TamperResistantStore(),
        counter=TamperResistantCounter(),
        untrusted=SlowFlushStore(
            16 * 1024 * 1024, injector, flush_delay=flush_delay
        ),
        archival=MemoryArchivalStore(),
        injector=injector,
    )


def _config() -> StoreConfig:
    return StoreConfig(
        segment_size=64 * 1024,
        system_cipher="ctr-sha256",
        system_hash="sha1",
        validation_mode="counter",
        delta_ut=5,
    )


def _setup(
    flush_delay: float, writers: int
) -> Tuple[TrustedPlatform, ObjectStore, int, List[ObjectRef]]:
    """A fresh store with one counter object per writer, all zero."""
    platform = _platform(flush_delay)
    chunks = ChunkStore.format(platform, _config())
    objects = ObjectStore(chunks)
    pid = objects.create_partition(
        cipher_name=PARTITION_CIPHER, hash_name=PARTITION_HASH
    )
    refs = [ObjectRef(pid, rank) for rank in range(writers)]
    with objects.transaction() as tx:
        for ref in refs:
            tx.create_at(ref, 0)
    return platform, objects, pid, refs


def _run_baseline(
    objects: ObjectStore, refs: List[ObjectRef], txs_per_writer: int
) -> Dict[str, object]:
    """One session, one commit (and one flush) per transaction."""
    total = len(refs) * txs_per_writer
    start = time.perf_counter()
    for _ in range(txs_per_writer):
        for ref in refs:
            tx_start = time.perf_counter()
            with objects.transaction() as tx:
                tx.update(ref, tx.get_for_update(ref) + 1)
            obs.observe("server.tx_commit_baseline", time.perf_counter() - tx_start)
    elapsed = time.perf_counter() - start
    return {
        "txs": total,
        "seconds": round(elapsed, 4),
        "txs_per_sec": round(total / elapsed, 1),
    }


def _run_concurrent(
    objects: ObjectStore,
    pid: int,
    refs: List[ObjectRef],
    txs_per_writer: int,
    readers: int,
    max_batch: int,
) -> Dict[str, object]:
    """N writer sessions + M snapshot readers through the server."""
    device: SlowFlushStore = objects.chunks.platform.untrusted
    errors: List[BaseException] = []
    stop_readers = threading.Event()
    reads_during_commit = [0] * readers
    snapshot_reads = [0] * readers

    with TDBServer(objects, max_batch=max_batch) as server:

        def write_loop(ref: ObjectRef) -> None:
            try:
                with server.session() as session:
                    for _ in range(txs_per_writer):
                        tx_start = time.perf_counter()
                        with session.transaction() as tx:
                            tx.update(ref, tx.get_for_update(ref) + 1)
                        obs.observe(
                            "server.tx_commit", time.perf_counter() - tx_start
                        )
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        def read_loop(slot: int) -> None:
            try:
                with server.session() as session:
                    while not stop_readers.is_set():
                        with session.snapshot(pid) as snapshot:
                            for ref in refs:
                                in_flush = device.flushing
                                value = snapshot.get(ref)
                                assert 0 <= value <= txs_per_writer, value
                                snapshot_reads[slot] += 1
                                if in_flush and device.flushing:
                                    # started and finished inside one
                                    # commit's flush window: the reader
                                    # never queued behind the commit path
                                    reads_during_commit[slot] += 1
                        # pace like a real client; an unthrottled spin
                        # would measure GIL contention, not the server
                        time.sleep(0.0005)
            except BaseException as exc:
                errors.append(exc)

        writer_threads = [
            threading.Thread(target=write_loop, args=(ref,)) for ref in refs
        ]
        reader_threads = [
            threading.Thread(target=read_loop, args=(slot,))
            for slot in range(readers)
        ]
        start = time.perf_counter()
        for thread in writer_threads + reader_threads:
            thread.start()
        for thread in writer_threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stop_readers.set()
        for thread in reader_threads:
            thread.join()
        if errors:
            raise errors[0]

        # every counter must show every one of its writer's commits
        with server.session() as session, session.snapshot(pid) as snapshot:
            for ref in refs:
                assert snapshot.get(ref) == txs_per_writer, (
                    f"{ref} lost updates: {snapshot.get(ref)}"
                )
        stats = server.stats()

    total = len(refs) * txs_per_writer
    return {
        "txs": total,
        "seconds": round(elapsed, 4),
        "txs_per_sec": round(total / elapsed, 1),
        "snapshot_reads": sum(snapshot_reads),
        "reads_during_commit": sum(reads_during_commit),
        "device_reads_during_flush": device.reads_during_flush,
        "group_commit": stats["group_commit"],
        "snapshots": stats["snapshots"],
    }


def run(
    writers: int,
    txs_per_writer: int,
    readers: int,
    flush_delay_ms: float,
    max_batch: int,
) -> Dict[str, object]:
    obs.reset()  # the latency section below covers this run only
    flush_delay = flush_delay_ms / 1e3
    results: Dict[str, object] = {
        "writers": writers,
        "txs_per_writer": txs_per_writer,
        "readers": readers,
        "flush_delay_ms": flush_delay_ms,
        "max_batch": max_batch,
        "partition_cipher": PARTITION_CIPHER,
        "partition_hash": PARTITION_HASH,
    }

    # -- single-session baseline: one flush per transaction ------------------
    _, objects, _, refs = _setup(flush_delay, writers)
    results["baseline"] = _run_baseline(objects, refs, txs_per_writer)
    objects.chunks.close()

    # -- concurrent sessions through the server ------------------------------
    _, objects, pid, refs = _setup(flush_delay, writers)
    results["concurrent"] = _run_concurrent(
        objects, pid, refs, txs_per_writer, readers, max_batch
    )
    objects.chunks.close()

    baseline_tps = results["baseline"]["txs_per_sec"]
    concurrent_tps = results["concurrent"]["txs_per_sec"]
    results["speedup_vs_baseline"] = round(concurrent_tps / baseline_tps, 2)
    results["floors"] = {
        "mean_batch_size": MEAN_BATCH_FLOOR,
        "speedup": SPEEDUP_FLOOR,
        "reads_during_commit": READS_DURING_COMMIT_FLOOR,
    }

    # commit/batch latency percentiles from the obs histograms this run fed
    results["latency"] = {
        name: {
            "count": snap["count"],
            "p50_ms": round(snap["p50_s"] * 1e3, 4),
            "p95_ms": round(snap["p95_s"] * 1e3, 4),
            "p99_ms": round(snap["p99_s"] * 1e3, 4),
            "max_ms": round(snap["max_s"] * 1e3, 4),
        }
        for name, snap in sorted(obs.metrics.snapshot()["histograms"].items())
        if name.startswith("server.")
    }
    return results


def check(results: Dict[str, object]) -> int:
    """Enforce the acceptance floors; returns a process exit status."""
    failed = False
    mean_batch = results["concurrent"]["group_commit"]["mean_batch_size"]
    if mean_batch <= MEAN_BATCH_FLOOR:
        print(
            f"FAIL: mean commit-batch size is {mean_batch:.2f}, must exceed "
            f"{MEAN_BATCH_FLOOR:.1f} (group commit amortized nothing)",
            file=sys.stderr,
        )
        failed = True
    speedup = results["speedup_vs_baseline"]
    if speedup < SPEEDUP_FLOOR:
        print(
            f"FAIL: concurrent throughput is {speedup:.2f}x the "
            f"single-session baseline, floor is {SPEEDUP_FLOOR:.1f}x",
            file=sys.stderr,
        )
        failed = True
    overlapped = results["concurrent"]["reads_during_commit"]
    if overlapped < READS_DURING_COMMIT_FLOOR:
        print(
            f"FAIL: {overlapped} snapshot reads completed during an "
            f"in-flight commit, floor is {READS_DURING_COMMIT_FLOOR}",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("acceptance floors met")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_server.json", help="output JSON path"
    )
    parser.add_argument(
        "--writers", type=int, default=8, help="concurrent writer sessions"
    )
    parser.add_argument(
        "--txs", type=int, default=12, help="transactions per writer"
    )
    parser.add_argument(
        "--readers", type=int, default=4, help="concurrent snapshot readers"
    )
    parser.add_argument(
        "--flush-delay-ms", type=float, default=2.0,
        help="simulated device flush latency (what group commit amortizes)"
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="group-commit batch cap (transactions per store commit)"
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke sizing (6 writers x 6 txs, 2 readers)"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the acceptance floors are met"
    )
    args = parser.parse_args(argv)
    if args.tiny:
        args.writers, args.txs, args.readers = 6, 6, 2

    results = run(
        args.writers, args.txs, args.readers, args.flush_delay_ms,
        args.max_batch,
    )

    baseline = results["baseline"]
    concurrent = results["concurrent"]
    batching = concurrent["group_commit"]
    print(
        f"{'baseline':>11}: {baseline['txs_per_sec']:8.1f} txs/s  "
        f"({baseline['txs']} txs, {baseline['seconds']:.4f} s, 1 session)"
    )
    print(
        f"{'concurrent':>11}: {concurrent['txs_per_sec']:8.1f} txs/s  "
        f"({concurrent['txs']} txs, {concurrent['seconds']:.4f} s, "
        f"{results['writers']} writers + {results['readers']} readers)"
    )
    print(
        f"{'batching':>11}: mean {batching['mean_batch_size']:.2f} txs/commit "
        f"(largest {batching['largest_batch']}, "
        f"{batching['batches']} batches, {batching['fallbacks']} fallbacks)"
    )
    print(
        f"{'snapshots':>11}: {concurrent['snapshot_reads']} reads, "
        f"{concurrent['reads_during_commit']} inside a commit's flush window"
    )
    print(f"speedup vs single session: {results['speedup_vs_baseline']:.2f}x")

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
