"""Read-path performance layer: the validated-payload cache, batched map
walks, ``read_chunks``, and sequential prefetch.

The two load-bearing properties under test:

* **round trips** — a cold bottom-up miss fetches its map path in exactly
  ONE ``read_many`` batch per level (one total for a height-1 tree), and
  validated reads cost one device read instead of header-then-body;
* **coherence** — the payload cache never serves stale or unvalidated
  bytes: it is populated only by validated reads and invalidated on
  write, deallocation, partition drop, transaction abort, and eviction,
  so tampering after any of those events is still detected.
"""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.chunkstore.cache import ValidatedChunkCache
from repro.chunkstore.ids import ChunkId, data_id
from repro.errors import ChunkNotAllocatedError, TamperDetectedError
from repro.objectstore.pickling import ObjectRef
from repro.objectstore.store import ObjectStore
from repro.tools.inspect import trusted_view

from tests.conftest import make_config, make_platform


def _fresh(**overrides):
    platform = make_platform()
    store = ChunkStore.format(platform, make_config(**overrides))
    return platform, store


def _populate(store, ranks=6, cipher="ctr-sha256"):
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name=cipher)])
    values = {}
    for rank in range(ranks):
        store.partitions[pid].allocate_specific(rank)
        values[rank] = f"p{pid}r{rank}:".encode() * 8
        store.commit([ops.WriteChunk(pid, rank, values[rank])])
    return pid, values


# ---------------------------------------------------------------------------
# ValidatedChunkCache unit behavior
# ---------------------------------------------------------------------------


class TestValidatedChunkCache:
    def test_disabled_when_zero_budget(self):
        cache = ValidatedChunkCache(0)
        assert not cache.enabled
        cache.put(ChunkId(1, 0, 0), b"x" * 16)
        assert cache.get(ChunkId(1, 0, 0)) is None
        assert cache.stats()["entries"] == 0

    def test_lru_eviction_is_byte_bounded(self):
        cache = ValidatedChunkCache(max_bytes=100)
        for rank in range(5):
            cache.put(ChunkId(1, 0, rank), b"x" * 40)  # 3rd insert evicts
        assert cache.current_bytes <= 100
        assert cache.evictions >= 3
        assert cache.get(ChunkId(1, 0, 4)) == b"x" * 40  # newest survives
        assert cache.get(ChunkId(1, 0, 0)) is None  # oldest evicted

    def test_get_refreshes_lru_order(self):
        cache = ValidatedChunkCache(max_bytes=100)
        cache.put(ChunkId(1, 0, 0), b"a" * 40)
        cache.put(ChunkId(1, 0, 1), b"b" * 40)
        assert cache.get(ChunkId(1, 0, 0)) is not None  # 0 is now MRU
        cache.put(ChunkId(1, 0, 2), b"c" * 40)  # evicts 1, not 0
        assert cache.get(ChunkId(1, 0, 0)) is not None
        assert cache.get(ChunkId(1, 0, 1)) is None

    def test_oversized_payload_is_not_cached(self):
        cache = ValidatedChunkCache(max_bytes=16)
        cache.put(ChunkId(1, 0, 0), b"x" * 64)
        assert cache.stats()["entries"] == 0
        assert cache.current_bytes == 0

    def test_drop_partition_only_hits_that_partition(self):
        cache = ValidatedChunkCache(max_bytes=1024)
        cache.put(ChunkId(1, 0, 0), b"a")
        cache.put(ChunkId(2, 0, 0), b"b")
        cache.drop_partition(1)
        assert cache.get(ChunkId(1, 0, 0)) is None
        assert cache.get(ChunkId(2, 0, 0)) == b"b"
        assert 1 not in cache._by_partition


# ---------------------------------------------------------------------------
# round trips: single-read validation, batched map walks, read_chunks
# ---------------------------------------------------------------------------


class TestRoundTrips:
    def test_cold_miss_map_path_is_one_read_many(self):
        """The acceptance property: with a height-1 location map, a cold
        bottom-up miss fetches the whole map path in exactly one
        ``read_many`` round trip, plus one single-extent read for the
        data chunk itself — two device round trips total."""
        platform, store = _fresh()
        pid, values = _populate(store, ranks=6)
        store.checkpoint()
        # make the miss genuinely cold: no cached descriptors or payloads
        store.cache.clear()
        store.payloads.clear()
        io = platform.untrusted.stats
        before = io.snapshot()
        assert store.read_chunk(pid, 3) == values[3]
        delta = io.delta(before)
        assert delta.batched_reads == 1  # the entire map path, one batch
        assert delta.reads == 2  # map batch + the data extent

    def test_height_two_walk_is_one_batch_per_level(self):
        platform, store = _fresh()
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="ctr-sha256")])
        fanout = store.config.fanout
        ranks = [0, 1, fanout, fanout + 1]  # spans two level-1 map chunks
        writes = []
        for rank in ranks:
            store.partitions[pid].allocate_specific(rank)
            writes.append(ops.WriteChunk(pid, rank, b"deep" * 8))
        store.commit(writes)
        store.checkpoint()
        store.cache.clear()
        store.payloads.clear()
        io = platform.untrusted.stats
        before = io.snapshot()
        assert store.read_chunk(pid, 0) == b"deep" * 8
        delta = io.delta(before)
        # level 2 (root's children) then level 1: one batch per level
        assert delta.batched_reads == 2
        assert delta.reads == 3

    def test_read_chunks_batches_data_extents(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=6)
        store.checkpoint()
        store.cache.clear()
        store.payloads.clear()
        io = platform.untrusted.stats
        before = io.snapshot()
        got = store.read_chunks(pid, list(values))
        delta = io.delta(before)
        assert got == values
        # one batch for the map path, one batch for all six data extents
        assert delta.batched_reads == 2
        assert delta.reads == 2
        walk = store.stats()["walk"]
        assert walk["chunk_batches"] == 1
        assert walk["chunks_batch_fetched"] == len(values)
        assert walk["round_trips_saved"] > 0

    def test_read_chunks_preserves_order_and_duplicates(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=4)
        got = store.read_chunks(pid, [3, 0, 3, 1])
        assert list(got) == [3, 0, 1]  # dict keyed by rank, deduplicated
        assert got[3] == values[3] and got[0] == values[0]

    def test_read_chunks_error_matches_sequential_path(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=3)
        with pytest.raises(ChunkNotAllocatedError):
            store.read_chunks(pid, [0, 1, 99])

    def test_warm_reads_issue_no_device_io(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=4)
        for rank in values:
            store.read_chunk(pid, rank)
        io = platform.untrusted.stats
        before = io.snapshot()
        for _ in range(3):
            for rank in values:
                assert store.read_chunk(pid, rank) == values[rank]
        delta = io.delta(before)
        assert delta.reads == 0
        assert store.payloads.hits >= 12


# ---------------------------------------------------------------------------
# prefetch
# ---------------------------------------------------------------------------


class TestPrefetch:
    def test_sequential_reads_trigger_batched_prefetch(self):
        platform, store = _fresh(prefetch_window=4)
        pid, values = _populate(store, ranks=10)
        store.payloads.clear()
        store.read_chunk(pid, 0)
        io = platform.untrusted.stats
        store.read_chunk(pid, 1)  # second sequential read: window fetched
        assert store.stats()["walk"]["prefetch_issued"] >= 3
        misses_before = store.payloads.misses
        for rank in (2, 3, 4, 5):
            assert store.read_chunk(pid, rank) == values[rank]
        # the window was already fetched: no payload-cache misses (the
        # sliding window keeps issuing small batches ahead — that's fine)
        assert store.payloads.misses == misses_before
        assert store.payloads.prefetch_hits >= 3

    def test_random_reads_do_not_prefetch(self):
        platform, store = _fresh(prefetch_window=4)
        pid, values = _populate(store, ranks=10)
        store.payloads.clear()
        for rank in (7, 2, 9, 0):
            store.read_chunk(pid, rank)
        assert store.stats()["walk"]["prefetch_issued"] == 0

    def test_prefetch_disabled_by_default(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=6)
        store.payloads.clear()
        for rank in range(4):
            store.read_chunk(pid, rank)
        assert store.stats()["walk"]["prefetch_issued"] == 0


# ---------------------------------------------------------------------------
# coherence: the cache must never serve stale or unvalidated bytes
# ---------------------------------------------------------------------------


class TestCoherence:
    def test_write_invalidates_cached_payload(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=2)
        assert store.read_chunk(pid, 0) == values[0]  # warm the cache
        store.commit([ops.WriteChunk(pid, 0, b"new bytes " * 4)])
        assert store.read_chunk(pid, 0) == b"new bytes " * 4

    def test_no_write_through_tamper_still_detected(self):
        """A committed-then-tampered chunk must be detected even though
        the writer knew the plaintext: commits never populate the payload
        cache, so the next read re-validates against the device."""
        platform, store = _fresh()
        pid, values = _populate(store, ranks=2)
        store.commit([ops.WriteChunk(pid, 1, b"fresh " * 8)])
        descriptor = store._get_descriptor(data_id(pid, 1))
        blob = platform.untrusted.tamper_read(
            descriptor.location, descriptor.length
        )
        platform.untrusted.tamper_write(
            descriptor.location, bytes(b ^ 0x41 for b in blob)
        )
        with pytest.raises(TamperDetectedError):
            store.read_chunk(pid, 1)

    def test_stale_payload_not_served_after_write_then_tamper(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=2)
        assert store.read_chunk(pid, 0) == values[0]  # cache warm
        store.commit([ops.WriteChunk(pid, 0, b"second version " * 2)])
        descriptor = store._get_descriptor(data_id(pid, 0))
        platform.untrusted.tamper_write(
            descriptor.location, b"\x00" * descriptor.length
        )
        # the old payload is still correct plaintext for the OLD version;
        # serving it now would silently mask the tampering
        with pytest.raises(TamperDetectedError):
            store.read_chunk(pid, 0)

    def test_dealloc_invalidates_cached_payload(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=3)
        assert store.read_chunk(pid, 2) == values[2]
        store.commit([ops.DeallocateChunk(pid, 2)])
        with pytest.raises(ChunkNotAllocatedError):
            store.read_chunk(pid, 2)

    def test_partition_dealloc_drops_all_payloads(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=3)
        for rank in values:
            store.read_chunk(pid, rank)
        assert store.payloads.stats()["entries"] == 3
        store.commit([ops.DeallocatePartition(pid)])
        assert store.payloads.stats()["entries"] == 0

    def test_evict_payload_forces_revalidation(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=2)
        assert store.read_chunk(pid, 0) == values[0]
        store.evict_payload(pid, 0)
        descriptor = store._get_descriptor(data_id(pid, 0))
        platform.untrusted.tamper_write(
            descriptor.location, b"\xff" * descriptor.length
        )
        with pytest.raises(TamperDetectedError):
            store.read_chunk(pid, 0)

    def test_scrub_bypasses_payload_cache(self):
        """Scrub exists to exercise the device: a warm payload cache must
        not let it report tampered extents as healthy."""
        platform, store = _fresh()
        pid, values = _populate(store, ranks=3)
        for rank in values:
            store.read_chunk(pid, rank)  # everything cached
        descriptor = store._get_descriptor(data_id(pid, 1))
        platform.untrusted.tamper_write(
            descriptor.location, b"\x00" * descriptor.length
        )
        result = store.scrub(raise_on_first=False)
        assert any("0.1" in str(chunk) for chunk in result["corrupt"])


# ---------------------------------------------------------------------------
# object-store wiring: abort eviction and get_many batching
# ---------------------------------------------------------------------------


class TestObjectStoreWiring:
    def _object_store(self):
        platform, chunk_store = _fresh()
        store = ObjectStore(chunk_store)
        pid = store.create_partition(cipher_name="ctr-sha256")
        return platform, store, pid

    def test_abort_evicts_validated_payloads(self):
        """The satellite regression: abort's defensive eviction must drop
        payload-cache entries for touched chunks, not just object-cache
        entries."""
        platform, store, pid = self._object_store()
        with store.transaction() as tx:
            ref = tx.create(pid, {"v": 1})
        store.cache.clear()
        store.read_committed(ref)  # warms the payload cache underneath
        cid = data_id(ref.partition, ref.rank)
        assert store.chunks.payloads.contains(cid)
        tx = store.transaction()
        tx.update(ref, {"v": 2})
        tx.abort()
        assert not store.chunks.payloads.contains(cid)
        assert store.read_committed(ref) == {"v": 1}

    def test_get_many_batches_chunk_fetches(self):
        platform, store, pid = self._object_store()
        with store.transaction() as tx:
            refs = [tx.create(pid, {"i": i}) for i in range(6)]
        store.chunks.checkpoint()  # descriptors reachable from the device
        store.cache.clear()
        store.chunks.payloads.clear()
        store.chunks.cache.clear()
        io = platform.untrusted.stats
        before = io.snapshot()
        with store.transaction() as tx:
            values = tx.get_many(refs)
        delta = io.delta(before)
        assert values == [{"i": i} for i in range(6)]
        # map walk batch + one data batch, not one read per object
        assert delta.reads <= 3

    def test_get_many_sees_buffered_writes(self):
        platform, store, pid = self._object_store()
        with store.transaction() as tx:
            ref = tx.create(pid, {"v": "old"})
        with store.transaction() as tx:
            tx.update(ref, {"v": "new"})
            assert tx.get_many([ref]) == [{"v": "new"}]


# ---------------------------------------------------------------------------
# stats surfacing
# ---------------------------------------------------------------------------


class TestStatsSurfacing:
    def test_payload_and_walk_sections_in_stats(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=3)
        for _ in range(2):
            for rank in values:
                store.read_chunk(pid, rank)
        stats = store.stats()
        assert set(stats["payload_cache"]) == {
            "hits", "misses", "evictions", "invalidations", "prefetch_hits",
            "entries", "bytes", "max_bytes",
        }
        assert stats["payload_cache"]["hits"] >= 3
        assert set(stats["walk"]) == {
            "batches", "map_chunks_fetched", "round_trips_saved",
            "chunk_batches", "chunks_batch_fetched", "prefetch_issued",
        }
        assert stats["untrusted"]["batched_extents"] >= 0

    def test_descriptor_cache_evictions_counter(self):
        platform, store = _fresh(cache_size=4, payload_cache_bytes=0)
        pid, values = _populate(store, ranks=6)
        store.checkpoint()
        store.cache.clear()
        for rank in values:
            store.read_chunk(pid, rank)
        assert store.stats()["cache"]["evictions"] > 0

    def test_inspect_trusted_view_surfaces_cache_health(self):
        platform, store = _fresh()
        pid, values = _populate(store, ranks=3)
        for _ in range(2):
            for rank in values:
                store.read_chunk(pid, rank)
        view = trusted_view(store)
        assert "evictions" in view["cache"]
        assert 0.0 <= view["cache"]["hit_ratio"] <= 1.0
        assert view["payload_cache"]["hits"] >= 3
        assert view["payload_cache"]["hit_ratio"] > 0.0
