"""Figure 9 — code complexity by module.

The paper counts semicolons of C++ (6,056 total).  The closest Python
analogue is logical source lines (non-blank, non-comment, non-docstring).
We report the same module split; the absolute totals differ with language
and feature set (this reproduction also carries the platform simulation
that the paper got from hardware).
"""

import ast
import pathlib

from benchmarks.conftest import PAPER, report

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: paper module -> our packages
_MODULE_MAP = {
    "Collection store": ["collection"],
    "Object store": ["objectstore"],
    "Backup store": ["backup"],
    "Chunk store": ["chunkstore"],
    "Common utilities": ["util", "crypto", "platform"],
}

_PAPER_ROWS = {
    "Collection store": 1388,
    "Object store": 512,
    "Backup store": 516,
    "Chunk store": 2570,
    "Common utilities": 1070,
}


def logical_lines(path: pathlib.Path) -> int:
    """Count executable statements (the semicolon analogue)."""
    tree = ast.parse(path.read_text())
    count = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            # skip docstring expressions
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
                continue
            count += 1
    return count


def package_lines(packages) -> int:
    total = 0
    for package in packages:
        for path in (_SRC / package).rglob("*.py"):
            total += logical_lines(path)
    return total


def test_figure9_code_complexity(benchmark):
    benchmark(lambda: package_lines(["util"]))
    rows = []
    total = 0
    for module, packages in _MODULE_MAP.items():
        lines = package_lines(packages)
        total += lines
        rows.append((module, f"{lines} stmts", f"{_PAPER_ROWS[module]} semicolons"))
    rows.append(("TOTAL", f"{total} stmts", f"{PAPER['code_total_semicolons']} semicolons"))
    report("Figure 9 code complexity", rows)
    # the chunk store carries the bulk of the system in both implementations
    chunk = package_lines(["chunkstore"])
    for module, packages in _MODULE_MAP.items():
        if module not in ("Chunk store", "Common utilities"):
            assert package_lines(packages) < chunk
