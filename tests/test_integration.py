"""Full-stack integration scenarios: all layers together, across crashes,
cleaning, backups, and reopen cycles."""

import pytest

from repro import (
    BackupStore,
    ChunkStore,
    CollectionStore,
    ObjectStore,
    TamperDetectedError,
    TrustedPlatform,
)
from repro.collection import KeyFunctionRegistry, field_key
from repro.errors import CrashError
from tests.conftest import make_config, make_platform


def build_stack(platform=None, **config_overrides):
    platform = platform or make_platform(size=16 * 1024 * 1024)
    chunks = ChunkStore.format(
        platform, make_config(segment_size=32 * 1024, **config_overrides)
    )
    objects = ObjectStore(chunks, cache_size=8192)
    pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
    registry = KeyFunctionRegistry()
    registry.register("ident", field_key("ident"))
    registry.register("balance", field_key("balance"))
    collections = CollectionStore(objects, pid, registry)
    return platform, chunks, objects, collections, pid


def reopen_stack(platform, pid):
    chunks = ChunkStore.open(platform)
    objects = ObjectStore(chunks, cache_size=8192)
    registry = KeyFunctionRegistry()
    registry.register("ident", field_key("ident"))
    registry.register("balance", field_key("balance"))
    collections = CollectionStore(objects, pid, registry)
    return chunks, objects, collections


class TestVendingScenario:
    """The paper's motivating application (§1): pay-per-use accounts."""

    def test_pay_per_use_lifecycle(self):
        platform, chunks, objects, collections, pid = build_stack()
        with objects.transaction() as tx:
            accounts = collections.create_collection(tx, "accounts")
            collections.add_index(tx, accounts, "by_ident", "ident")
            collections.add_index(
                tx, accounts, "by_balance", "balance", sorted_index=True
            )
            for i in range(20):
                collections.insert(
                    tx, accounts, {"ident": f"user{i}", "balance": 100}
                )
        # consume: debit an account per release
        for use in range(5):
            with objects.transaction() as tx:
                accounts = collections.open_collection(tx, "accounts")
                (ref,) = collections.exact(tx, accounts, "by_ident", "user3")
                account = tx.get_for_update(ref)
                assert account["balance"] >= 10, "insufficient funds"
                collections.update(
                    tx, accounts, ref, dict(account, balance=account["balance"] - 10)
                )
        with objects.transaction() as tx:
            accounts = collections.open_collection(tx, "accounts")
            (ref,) = collections.exact(tx, accounts, "by_ident", "user3")
            assert tx.get(ref)["balance"] == 50
            # range query over balances works (sorted index on plaintext)
            low_balance = list(
                collections.range(tx, accounts, "by_balance", None, 60)
            )
            assert [tx.get(r)["ident"] for _k, r in low_balance] == ["user3"]

    def test_crash_mid_purchase_loses_nothing_committed(self):
        platform, chunks, objects, collections, pid = build_stack()
        with objects.transaction() as tx:
            accounts = collections.create_collection(tx, "accounts")
            collections.add_index(tx, accounts, "by_ident", "ident")
            ref = collections.insert(tx, accounts, {"ident": "u", "balance": 100})
        with objects.transaction() as tx:
            accounts = collections.open_collection(tx, "accounts")
            collections.update(tx, accounts, ref, {"ident": "u", "balance": 90})
        platform.injector.arm("commit.before_flush")
        with pytest.raises(CrashError):
            with objects.transaction() as tx:
                accounts = collections.open_collection(tx, "accounts")
                collections.update(tx, accounts, ref, {"ident": "u", "balance": 0})
        platform.injector.disarm()
        platform.reboot()
        chunks2, objects2, collections2 = reopen_stack(platform, pid)
        with objects2.transaction() as tx:
            accounts = collections2.open_collection(tx, "accounts")
            (found,) = collections2.exact(tx, accounts, "by_ident", "u")
            assert tx.get(found)["balance"] == 90

    def test_replay_attack_cannot_refund(self):
        """The §1 replay: consumer saves the DB, spends, restores."""
        platform, chunks, objects, collections, pid = build_stack(delta_ut=1)
        with objects.transaction() as tx:
            accounts = collections.create_collection(tx, "accounts")
            collections.add_index(tx, accounts, "by_ident", "ident")
            ref = collections.insert(tx, accounts, {"ident": "u", "balance": 100})
        saved = platform.untrusted.tamper_image()
        for _ in range(5):
            with objects.transaction() as tx:
                accounts = collections.open_collection(tx, "accounts")
                account = tx.get_for_update(ref)
                collections.update(
                    tx, accounts, ref, dict(account, balance=account["balance"] - 10)
                )
        chunks.close(checkpoint=False)
        platform.untrusted.tamper_replay(saved)
        with pytest.raises(TamperDetectedError):
            ChunkStore.open(platform)


class TestLongRunning:
    def test_sustained_mixed_usage_with_reopens(self):
        platform, chunks, objects, collections, pid = build_stack(
            checkpoint_dirty_threshold=100
        )
        with objects.transaction() as tx:
            items = collections.create_collection(tx, "items")
            collections.add_index(tx, items, "by_ident", "ident")
            collections.add_index(tx, items, "by_balance", "balance", sorted_index=True)
        expected = {}
        for era in range(3):
            for i in range(25):
                ident = f"era{era}-item{i}"
                with objects.transaction() as tx:
                    items = collections.open_collection(tx, "items")
                    ref = collections.insert(
                        tx, items, {"ident": ident, "balance": era * 100 + i}
                    )
                    expected[ident] = era * 100 + i
            # delete a few from the previous era
            if era:
                with objects.transaction() as tx:
                    items = collections.open_collection(tx, "items")
                    for i in range(0, 10, 3):
                        ident = f"era{era-1}-item{i}"
                        (ref,) = collections.exact(tx, items, "by_ident", ident)
                        collections.remove(tx, items, ref)
                        del expected[ident]
            chunks.close()
            platform.reboot()
            chunks, objects, collections = reopen_stack(platform, pid)
        with objects.transaction() as tx:
            items = collections.open_collection(tx, "items")
            for ident, balance in expected.items():
                (ref,) = collections.exact(tx, items, "by_ident", ident)
                assert tx.get(ref)["balance"] == balance
            assert items.size(tx) == len(expected)

    def test_backup_of_live_object_graph(self):
        platform, chunks, objects, collections, pid = build_stack()
        with objects.transaction() as tx:
            items = collections.create_collection(tx, "items")
            collections.add_index(tx, items, "by_ident", "ident")
            for i in range(30):
                collections.insert(tx, items, {"ident": f"i{i}", "balance": i})
        backup = BackupStore(chunks)
        backup.create_backup([pid], "full")
        with objects.transaction() as tx:
            items = collections.open_collection(tx, "items")
            (ref,) = collections.exact(tx, items, "by_ident", "i5")
            collections.update(tx, items, ref, {"ident": "i5", "balance": 999})
        backup.create_backup([pid], "incr")

        # media failure: brand-new untrusted store, same secret + archive
        replacement = TrustedPlatform.create_in_memory(
            untrusted_size=16 * 1024 * 1024, secret=platform.secret_store.read()
        )
        replacement.archival = platform.archival
        chunks2 = ChunkStore.format(
            replacement, make_config(segment_size=32 * 1024)
        )
        BackupStore(chunks2).restore(["full", "incr"])
        objects2 = ObjectStore(chunks2)
        registry = KeyFunctionRegistry()
        registry.register("ident", field_key("ident"))
        registry.register("balance", field_key("balance"))
        collections2 = CollectionStore(objects2, pid, registry)
        with objects2.transaction() as tx:
            items = collections2.open_collection(tx, "items")
            (ref,) = collections2.exact(tx, items, "by_ident", "i5")
            assert tx.get(ref)["balance"] == 999
            assert items.size(tx) == 30
