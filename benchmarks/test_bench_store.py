"""§9.2.1 — store latency and bandwidth.

The paper measured l_u (10–40 ms NTFS flush), l_t (≈5 ms EEPROM write) and
b_u (3.5–4.7 MB/s).  Our untrusted store is simulated; this bench verifies
the *accounting* (flush/byte counters feeding the DiskModel) and reports
the model constants used everywhere else, alongside the raw in-memory
store speed for completeness.
"""

from benchmarks.conftest import report
from repro.platform import DiskModel, MemoryUntrustedStore


def test_raw_store_bandwidth(benchmark):
    store = MemoryUntrustedStore(16 * 1024 * 1024)
    data = b"\x5a" * (1024 * 1024)

    def write_1mb():
        store.write(0, data)
        store.flush()

    benchmark(write_1mb)


def test_model_constants(benchmark, disk_model):
    benchmark(disk_model.commit_io_time, 1, 2048, 1)
    report(
        "§9.2.1 store model",
        [
            ("l_u (flush latency)", f"{disk_model.untrusted_flush_latency*1000:.0f} ms", "10–40 ms"),
            ("b_u (bandwidth)", f"{disk_model.untrusted_bandwidth/1e6:.1f} MB/s", "3.5–4.7 MB/s"),
            ("l_t (TR latency)", f"{disk_model.tamper_resistant_latency*1000:.0f} ms", "≈5 ms (EEPROM)"),
        ],
    )


def test_commit_io_formula(benchmark, disk_model):
    benchmark(disk_model.tamper_resistant_time, 1)
    """I/O overhead per commit = l_u + l_t/Δut + bytes/b_u (§9.2.2)."""
    delta_ut = 5
    bytes_per_commit = 2048
    modeled = disk_model.commit_io_time(
        flushes=1, bytes_written=bytes_per_commit, tr_writes=0
    ) + disk_model.tamper_resistant_time(1) / delta_ut
    expected = (
        disk_model.untrusted_flush_latency
        + bytes_per_commit / disk_model.untrusted_bandwidth
        + disk_model.tamper_resistant_latency / delta_ut
    )
    assert abs(modeled - expected) < 1e-12
    report(
        "§9.2.2 commit I/O model",
        [
            (
                "l_u + l_t/Δut + bytes/b_u",
                f"{modeled*1000:.2f} ms (2 KB commit)",
                "dominates computational overhead",
            )
        ],
    )


def test_accounting_accuracy(benchmark):
    benchmark(lambda: MemoryUntrustedStore(4096).write(0, b"x"))
    store = MemoryUntrustedStore(1024 * 1024)
    store.write(0, b"x" * 1000)
    store.write(1000, b"y" * 500)
    store.flush()
    assert store.stats.writes == 2
    assert store.stats.bytes_written == 1500
    assert store.stats.flushes == 1
    assert store.stats.flushed_bytes == 1500
