"""Validation-mode unit tests (§4.8.2): chain semantics, commit records,
counter windows — isolated from the full store."""

import pytest

from repro.chunkstore.log import CommitRecord
from repro.chunkstore.validation import CounterValidation, DirectValidation
from repro.crypto.hashing import Sha1Hash
from repro.crypto.mac import Mac
from repro.errors import TamperDetectedError
from repro.platform.tamper_resistant import (
    TamperResistantCounter,
    TamperResistantStore,
)


class TestDirectValidation:
    def build(self):
        return DirectValidation(TamperResistantStore(), Sha1Hash())

    def test_chain_is_order_sensitive(self):
        a = self.build()
        b = self.build()
        a.note_version(b"one")
        a.note_version(b"two")
        b.note_version(b"two")
        b.note_version(b"one")
        assert a.chain != b.chain

    def test_chain_is_boundary_sensitive(self):
        """H(chain‖v) chaining distinguishes ["ab"] from ["a","b"]."""
        a = self.build()
        b = self.build()
        a.note_version(b"ab")
        b.note_version(b"a")
        b.note_version(b"b")
        assert a.chain != b.chain

    def test_reset_restarts(self):
        v = self.build()
        initial = v.chain
        v.note_version(b"x")
        v.reset_chain()
        assert v.chain == initial

    def test_commit_point_roundtrip(self):
        v = self.build()
        v.note_version(b"version")
        v.commit_point(tail_location=12345, leader_location=42)
        chain, tail, leader = v.read_tr()
        assert chain == v.chain
        assert tail == 12345
        assert leader == 42

    def test_empty_tr_raises(self):
        v = self.build()
        with pytest.raises(TamperDetectedError):
            v.read_tr()


class TestCounterValidation:
    def build(self, delta_ut=5, delta_tu=0, counter=None):
        counter = counter or TamperResistantCounter()
        mac = Mac(b"test-key", Sha1Hash())
        return (
            CounterValidation(counter, Sha1Hash(), mac, delta_ut, delta_tu),
            counter,
        )

    def test_commit_record_verifies(self):
        v, _ = self.build()
        v.begin_commit()
        v.note_version(b"chunk bytes")
        record = v.build_commit_record()
        assert v.verify_commit_record(record, v.current_set_hash())

    def test_forged_record_rejected(self):
        v, _ = self.build()
        v.begin_commit()
        v.note_version(b"data")
        record = v.build_commit_record()
        forged = CommitRecord(record.count + 1, record.set_hash, record.mac_tag)
        assert not v.verify_commit_record(forged, record.set_hash)

    def test_wrong_set_hash_rejected(self):
        v, _ = self.build()
        v.begin_commit()
        v.note_version(b"data")
        record = v.build_commit_record()
        assert not v.verify_commit_record(record, b"\x00" * 20)

    def test_counts_increment(self):
        v, _ = self.build()
        first = v.build_commit_record().count
        v.committed()
        second = v.build_commit_record().count
        assert second == first + 1

    def test_tr_lag_policy(self):
        v, counter = self.build(delta_ut=3)
        for _ in range(2):
            v.committed()
            v.note_flushed()
        assert not v.needs_tr_update()
        v.committed()
        v.note_flushed()
        assert v.needs_tr_update()
        v.advance_tr(v.tr_update_target())
        assert counter.read() == 3
        assert not v.needs_tr_update()

    def test_delta_tu_caps_target_when_unflushed(self):
        v, _ = self.build(delta_ut=1, delta_tu=1)
        v.committed()  # count 1 exists, never flushed
        v.committed()  # count 2
        # flushed_count = 0, so the counter may lead it by at most Δtu=1
        assert v.tr_update_target() == 1

    def test_final_count_window(self):
        v, counter = self.build(delta_ut=5, delta_tu=0)
        counter.advance_to(10)
        with pytest.raises(TamperDetectedError):
            v.check_final_count(9)  # one commit deleted beyond Δtu=0

    def test_final_count_accepts_lag(self):
        v, counter = self.build(delta_ut=5)
        counter.advance_to(10)
        v.check_final_count(13)  # log legitimately ahead within Δut
        assert counter.read() == 13  # window closed after recovery

    def test_final_count_rejects_runaway_log(self):
        v, counter = self.build(delta_ut=2)
        counter.advance_to(10)
        with pytest.raises(TamperDetectedError):
            v.check_final_count(20)

    def test_delta_tu_tolerates_lead(self):
        v, counter = self.build(delta_ut=5, delta_tu=2)
        counter.advance_to(10)
        v.check_final_count(8)  # counter leads the log by 2 = Δtu: fine
        with pytest.raises(TamperDetectedError):
            v2, counter2 = self.build(delta_ut=5, delta_tu=2)
            counter2.advance_to(10)
            v2.check_final_count(7)
