"""Crypto fast-path benchmark: ``python -m repro.bench.crypto_bench``.

Measures each registered cipher in three configurations:

* ``fast`` — the default construction: OpenSSL-backed CBC where available
  (DES/3DES via the installed ``cryptography`` wheel), int-native bulk
  hooks otherwise;
* ``python-bulk`` — the pure-Python bulk hooks (``accel=False``), i.e.
  the portable fast path;
* ``fallback`` — the generic per-block / per-byte loops (``bulk=False``),
  the seed implementation.

All three produce byte-identical ciphertext for the same IV, so the
speedups are free: the on-disk format does not depend on which path ran.

The AEAD tier (aes-256-gcm, chacha20-poly1305) is measured in its only
configuration — the OpenSSL backend; it has no pure-Python fallback — and
with a representative header-sized AAD, since the one-pass chunk format
always binds the version header through it.

Results go to ``BENCH_crypto.json``; ``--check`` exits non-zero when the
acceptance floors (DES-CBC ≥ 3×, ctr-sha256 ≥ 2× over fallback; each AEAD
suite ≥ 50 MB/s absolute when the backend is present) are not met, which
CI uses as a perf-regression smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.crypto import accel, aead
from repro.crypto.cipher import Cipher
from repro.crypto.des import Des, TripleDes
from repro.crypto.modes import CbcCipher, CtrStreamCipher
from repro.crypto.xtea import Xtea

_KEYS = {
    "des-cbc": bytes(range(8)),
    "3des-cbc": bytes(range(24)),
    "xtea-cbc": bytes(range(16)),
    "ctr-sha256": bytes(range(16)),
}

_AEAD_KEYS = {
    "aes-256-gcm": bytes(range(32)),
    "chacha20-poly1305": bytes(range(32, 64)),
}

#: acceptance floors: fast-path speedup over the fallback loop
FLOORS = {"des-cbc": 3.0, "ctr-sha256": 2.0}

#: absolute floor for the default (AEAD) suite — the tentpole target of
#: ≥ 50 MB/s partition-cipher bandwidth; enforced only when the backend
#: is present (the fallback leg has no AEAD path to measure)
AEAD_FLOOR_MB_S = 50.0

#: a version header's worth of associated data, as the one-pass format binds
_AAD = bytes(range(48))

VARIANTS = ("fast", "python-bulk", "fallback")


def build_cipher(name: str, variant: str) -> Cipher:
    """Construct ``name`` in one of the three benchmark configurations."""
    key = _KEYS[name]
    bulk = variant != "fallback"
    if name == "ctr-sha256":
        return CtrStreamCipher(key, bulk=bulk)
    use_accel = variant == "fast"
    if name == "des-cbc":
        block = Des(key, accel=use_accel)
    elif name == "3des-cbc":
        block = TripleDes(key, accel=use_accel)
    elif name == "xtea-cbc":
        block = Xtea(key)  # no OpenSSL backend; fast == python-bulk
    else:
        raise ValueError(f"unknown cipher {name!r}")
    return CbcCipher(block, name, bulk=bulk)


def _bandwidth(fn, payload_len: int, repeat: int) -> float:
    """Best-of-``repeat`` throughput of ``fn`` in MB/s."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return payload_len / best / 1e6


def run(size: int, repeat: int) -> Dict[str, object]:
    buffer = bytes(i & 0xFF for i in range(size))
    ciphers: Dict[str, Dict[str, object]] = {}
    for name in _KEYS:
        per_variant: Dict[str, Dict[str, float]] = {}
        for variant in VARIANTS:
            cipher = build_cipher(name, variant)
            ciphertext = cipher.encrypt(buffer)
            per_variant[variant] = {
                "encrypt_mb_s": round(
                    _bandwidth(lambda: cipher.encrypt(buffer), size, repeat), 3
                ),
                "decrypt_mb_s": round(
                    _bandwidth(lambda: cipher.decrypt(ciphertext), size, repeat), 3
                ),
            }
        entry: Dict[str, object] = dict(per_variant)
        entry["speedup_encrypt"] = round(
            per_variant["fast"]["encrypt_mb_s"]
            / per_variant["fallback"]["encrypt_mb_s"],
            2,
        )
        entry["speedup_decrypt"] = round(
            per_variant["fast"]["decrypt_mb_s"]
            / per_variant["fallback"]["decrypt_mb_s"],
            2,
        )
        ciphers[name] = entry

    aead_ciphers: Dict[str, Dict[str, float]] = {}
    if aead.available():
        for name, key in _AEAD_KEYS.items():
            cipher = aead.make_aes_256_gcm(key) if name == "aes-256-gcm" \
                else aead.make_chacha20_poly1305(key)
            ciphertext = cipher.encrypt(buffer, aad=_AAD)
            aead_ciphers[name] = {
                "encrypt_mb_s": round(
                    _bandwidth(
                        lambda: cipher.encrypt(buffer, aad=_AAD), size, repeat
                    ),
                    3,
                ),
                "decrypt_mb_s": round(
                    _bandwidth(
                        lambda: cipher.decrypt(ciphertext, aad=_AAD),
                        size,
                        repeat,
                    ),
                    3,
                ),
            }

    return {
        "buffer_bytes": size,
        "repeat": repeat,
        "accel": {
            "available": accel.available(),
            "reason_unavailable": accel.unavailable_reason(),
        },
        "aead": {
            "available": aead.available(),
            "reason_unavailable": aead.unavailable_reason(),
            "floor_mb_s": AEAD_FLOOR_MB_S,
        },
        "floors": FLOORS,
        "ciphers": ciphers,
        "aead_ciphers": aead_ciphers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_crypto.json", help="output JSON path"
    )
    parser.add_argument(
        "--size", type=int, default=64 * 1024, help="payload size in bytes"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="passes per measurement (min taken)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the acceptance floors are met",
    )
    args = parser.parse_args(argv)

    results = run(args.size, args.repeat)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    ciphers = results["ciphers"]
    for name, entry in ciphers.items():
        print(
            f"{name:>17}: fast {entry['fast']['encrypt_mb_s']:8.2f} MB/s  "
            f"python-bulk {entry['python-bulk']['encrypt_mb_s']:8.2f}  "
            f"fallback {entry['fallback']['encrypt_mb_s']:8.2f}  "
            f"(speedup {entry['speedup_encrypt']:.1f}x enc / "
            f"{entry['speedup_decrypt']:.1f}x dec)"
        )
    aead_ciphers = results["aead_ciphers"]
    for name, entry in aead_ciphers.items():
        print(
            f"{name:>17}: aead {entry['encrypt_mb_s']:8.2f} MB/s enc / "
            f"{entry['decrypt_mb_s']:8.2f} MB/s dec "
            f"(floor {AEAD_FLOOR_MB_S:.0f} MB/s)"
        )
    if not aead_ciphers:
        print(f"AEAD tier not measured: {results['aead']['reason_unavailable']}")
    print(f"wrote {args.out}")

    if args.check:
        failed = False
        for name, floor in FLOORS.items():
            speedup = min(
                ciphers[name]["speedup_encrypt"], ciphers[name]["speedup_decrypt"]
            )
            if speedup < floor:
                print(
                    f"FAIL: {name} fast path is {speedup:.1f}x over fallback, "
                    f"floor is {floor:.1f}x",
                    file=sys.stderr,
                )
                failed = True
        for name, entry in aead_ciphers.items():
            bandwidth = min(entry["encrypt_mb_s"], entry["decrypt_mb_s"])
            if bandwidth < AEAD_FLOOR_MB_S:
                print(
                    f"FAIL: {name} runs at {bandwidth:.1f} MB/s, floor is "
                    f"{AEAD_FLOOR_MB_S:.1f} MB/s",
                    file=sys.stderr,
                )
                failed = True
        if failed:
            return 1
        print("acceptance floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
