"""§9.2.2 — chunk store operation micro-benchmarks.

Paper results this reproduces (computational latency, I/O modeled
separately):

* allocate chunk id: 6 µs;
* write chunks + commit: 132 µs + 36 µs/chunk + 0.24 µs/byte —
  an *affine* model in chunk count and cumulative bytes, measured over
  commit sets of 1–128 chunks of 128 B–16 KB, fit by linear regression;
* read chunk (descriptor cached): 47 µs + 0.18 µs/byte;
* write partition + commit: 223 µs; copy partition: 386 µs regardless of
  source size (copy-on-write).

We fit the same regressions with numpy and check the *shape*: good affine
fit, positive coefficients, reads cheaper than commits, copies O(1) in
source size.
"""

import time

import numpy as np

from benchmarks.conftest import PAPER, bench_store, data_partition, report
from repro.chunkstore import ops


def _best_of(fn, repeat=5):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_allocate_chunk_id(benchmark):
    _, store = bench_store()
    pid = data_partition(store)
    benchmark(store.allocate_chunk, pid)
    start = time.perf_counter()
    for _ in range(2000):
        store.allocate_chunk(pid)
    per_call = (time.perf_counter() - start) / 2000
    report(
        "§9.2.2 allocate",
        [("allocate chunk id", f"{per_call*1e6:.1f} µs", f"{PAPER['alloc_us']} µs")],
    )


def test_commit_regression(benchmark):
    """Fit commit latency = a + b·chunks + c·bytes over the paper's sweep."""
    platform, store = bench_store(size=256 * 1024 * 1024, segment_size=256 * 1024)
    pid = data_partition(store)
    rows = []
    times = []
    for n_chunks in (1, 4, 16, 64):
        for chunk_size in (128, 1024, 8192):
            if n_chunks * chunk_size > 192 * 1024:
                continue
            payload = b"\x42" * chunk_size

            def one_commit():
                ranks = [store.allocate_chunk(pid) for _ in range(n_chunks)]
                store.commit([ops.WriteChunk(pid, r, payload) for r in ranks])

            elapsed = _best_of(one_commit, repeat=3)
            rows.append((1.0, n_chunks, n_chunks * chunk_size))
            times.append(elapsed)
    benchmark(lambda: None)  # the sweep above is the measurement
    design = np.array(rows)
    observed = np.array(times)
    coef, residuals, _rank, _sv = np.linalg.lstsq(design, observed, rcond=None)
    fixed_us, per_chunk_us, per_byte_us = (
        coef[0] * 1e6,
        coef[1] * 1e6,
        coef[2] * 1e6,
    )
    predicted = design @ coef
    r_squared = 1 - np.sum((observed - predicted) ** 2) / np.sum(
        (observed - observed.mean()) ** 2
    )
    report(
        "§9.2.2 commit regression",
        [
            ("fixed", f"{fixed_us:.0f} µs", f"{PAPER['commit_fixed_us']} µs"),
            ("per chunk", f"{per_chunk_us:.1f} µs", f"{PAPER['commit_per_chunk_us']} µs"),
            ("per byte", f"{per_byte_us:.4f} µs", f"{PAPER['commit_per_byte_us']} µs"),
            ("R²", f"{r_squared:.3f}", "affine model holds"),
        ],
    )
    assert r_squared > 0.9, "commit cost is not affine in chunks and bytes"
    assert per_chunk_us > 0 and per_byte_us > 0


def test_read_regression(benchmark):
    """Fit cached-descriptor read latency = a + c·bytes."""
    platform, store = bench_store(size=64 * 1024 * 1024, segment_size=256 * 1024)
    pid = data_partition(store)
    sizes = (128, 512, 2048, 8192, 16384)
    ranks = {}
    for size in sizes:
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"\x17" * size)])
        ranks[size] = rank
    rows, times = [], []
    for size in sizes:
        store.read_chunk(pid, ranks[size])  # warm the descriptor cache

        def one_read(size=size):
            store.read_chunk(pid, ranks[size])

        elapsed = _best_of(one_read, repeat=7)
        rows.append((1.0, size))
        times.append(elapsed)
    benchmark(lambda: store.read_chunk(pid, ranks[512]))
    coef, *_ = np.linalg.lstsq(np.array(rows), np.array(times), rcond=None)
    fixed_us, per_byte_us = coef[0] * 1e6, coef[1] * 1e6
    report(
        "§9.2.2 read regression",
        [
            ("fixed", f"{fixed_us:.0f} µs", f"{PAPER['read_fixed_us']} µs"),
            ("per byte", f"{per_byte_us:.4f} µs", f"{PAPER['read_per_byte_us']} µs"),
        ],
    )
    assert per_byte_us > 0


def test_read_cold_cache_climbs_map(benchmark):
    """Uncached reads pay for map-chunk fetches (bottom-up path, §4.5)."""
    platform, store = bench_store(size=64 * 1024 * 1024)
    pid = data_partition(store)
    ranks = [store.allocate_chunk(pid) for _ in range(500)]
    store.commit([ops.WriteChunk(pid, r, b"x" * 256) for r in ranks])
    store.checkpoint()

    store.read_chunk(pid, ranks[250])
    warm = _best_of(lambda: store.read_chunk(pid, ranks[250]), repeat=7)

    def cold():
        store.cache.clear()
        store.read_chunk(pid, ranks[250])

    cold_time = _best_of(cold, repeat=7)
    benchmark(lambda: store.read_chunk(pid, ranks[250]))
    report(
        "§9.2.2 cold read",
        [
            ("warm (cached descriptor)", f"{warm*1e6:.0f} µs", "47 µs + bytes"),
            ("cold (climbs map)", f"{cold_time*1e6:.0f} µs", "reads parental map chunks"),
        ],
    )
    assert cold_time > warm


def test_partition_ops(benchmark):
    """Partition create is cheap; copy is O(1) in source size (§9.2.2)."""
    platform, store = bench_store(size=128 * 1024 * 1024, segment_size=256 * 1024)

    def create_partition():
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        return pid

    create_time = _best_of(create_partition, repeat=5)

    copy_times = {}
    for n_chunks in (10, 100, 1000):
        pid = create_partition()
        ranks = [store.allocate_chunk(pid) for _ in range(n_chunks)]
        store.commit([ops.WriteChunk(pid, r, b"d" * 200) for r in ranks])
        store.checkpoint()

        def copy_it(pid=pid):
            snap = store.allocate_partition()
            store.commit([ops.CopyPartition(snap, pid)])
            return snap

        copy_times[n_chunks] = _best_of(copy_it, repeat=5)

    benchmark(create_partition)
    report(
        "§9.2.2 partition ops",
        [
            ("create+commit", f"{create_time*1e6:.0f} µs", f"{PAPER['partition_create_us']} µs"),
            ("copy (10 chunks)", f"{copy_times[10]*1e6:.0f} µs", f"{PAPER['partition_copy_us']} µs"),
            ("copy (100 chunks)", f"{copy_times[100]*1e6:.0f} µs", "same (COW)"),
            ("copy (1000 chunks)", f"{copy_times[1000]*1e6:.0f} µs", "same (COW)"),
        ],
    )
    # copy-on-write: cost must not scale with source size (allow 3x noise)
    assert copy_times[1000] < copy_times[10] * 3 + 0.01
