"""The backup store (§6): create and restore backup sets.

Creation (§6.1–6.2)
===================

A backup set covers one or more partitions.  Instead of locking the
partitions for the whole backup, the backup store takes a *consistent
snapshot* of all of them in a single commit (cheap copy-on-write partition
copies) and then streams the snapshots to the archival store.

Backups may be full or *incremental*: an incremental backup records only
the chunks created, updated, or deallocated since the *base* snapshot —
computed with the chunk store's position-map diff, so its cost is
proportional to the amount of change, not the partition size (§9.2.3).

Base-snapshot and restore-chain bookkeeping lives in the system leader
(:class:`~repro.chunkstore.leader.SystemExtras`), persisted by the
checkpoint each backup/restore forces.  A crash in the tiny window before
that checkpoint degrades *safely*: a lost ``backup_bases`` entry means the
next backup silently falls back to a full backup (the base-liveness check
fails); a lost ``restore_history`` entry means a later incremental restore
is refused and must be redone from the full backup.  Neither loses data or
accepts an invalid chain.

Restore (§6.3)
==============

Restores read backup streams, validate signature and checksum, and
enforce two ordering constraints:

* incremental backups restore in creation order with no missing links
  (the base snapshot id must equal the previously restored snapshot id);
* a backup set restores completely or not at all (set id / set size
  accounting).

Each set is applied in one atomic commit.  Restores require approval from
a trusted program — the ``approve`` callback — which may deny frequent
restores or restores of old backups (limiting rollback attacks that fake
media failures, §1.2).
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.backup.format import (
    ENTRY_DEALLOCATED,
    ENTRY_WRITTEN,
    BackupDescriptor,
    BackupEntry,
    PartitionBackup,
    read_partition_backup,
    write_partition_backup,
)
from repro.chunkstore.config import backup_key
from repro.chunkstore.ids import SYSTEM_PARTITION
from repro.chunkstore.ops import (
    CopyPartition,
    DeallocateChunk,
    DeallocatePartition,
    WriteChunk,
    WritePartition,
)
from repro.chunkstore.store import ChunkStore, DiffChange
from repro.crypto.mac import Mac
from repro.crypto.registry import make_cipher, make_hash
from repro.errors import BackupError, BackupOrderingError
from repro.platform.archival import ArchivalStore


logger = logging.getLogger("repro.backup")


@dataclass
class BackupInfo:
    """Summary returned by :meth:`BackupStore.create_backup`."""

    stream_name: str
    set_id: int
    partitions: List[int]
    incremental: Dict[int, bool]
    bytes_written: int
    snapshot_pids: Dict[int, int]


class BackupStore:
    """Creates and restores backup sets for a :class:`ChunkStore`."""

    def __init__(
        self, chunk_store: ChunkStore, archival: Optional[ArchivalStore] = None
    ) -> None:
        self.store = chunk_store
        self.archival = archival or chunk_store.platform.archival
        secret = chunk_store.platform.secret_store.read()
        system_hash = make_hash(chunk_store.config.system_hash)
        self.mac = Mac(backup_key(secret), system_hash)

    # ------------------------------------------------------------------
    # bookkeeping (system leader extras)
    # ------------------------------------------------------------------

    def _extras(self):
        return self.store.partitions[SYSTEM_PARTITION].payload.system

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    def create_backup(
        self,
        partitions: List[int],
        stream_name: str,
        incremental: bool = True,
    ) -> BackupInfo:
        """Back up ``partitions`` as one backup set on ``stream_name``.

        With ``incremental=True``, each partition that has a live base
        snapshot is backed up incrementally; the rest get full backups.
        """
        if not partitions:
            raise BackupError("a backup set must cover at least one partition")
        store = self.store

        # 1. one commit => a consistent snapshot of every source partition
        snapshot_pids: Dict[int, int] = {}
        snapshot_ops: List[object] = []
        for pid in partitions:
            snap = store.allocate_partition()
            snapshot_pids[pid] = snap
            snapshot_ops.append(CopyPartition(snap, pid))
        store.commit(snapshot_ops)

        # 2. stream each partition backup to the archival store
        extras = self._extras()
        set_id = int.from_bytes(os.urandom(8), "big")
        # the injectable platform clock, not time.time(): backup tests
        # drive timestamps deterministically through FakeClock
        created_at = store.platform.clock.now()
        writer = self.archival.create_stream(stream_name)
        bytes_written = 0
        is_incremental: Dict[int, bool] = {}
        for pid in partitions:
            snap = snapshot_pids[pid]
            base = extras.backup_bases.get(pid) if incremental else None
            use_incremental = base is not None and store.partition_exists(base)
            is_incremental[pid] = use_incremental
            entries = self._collect_entries(snap, base if use_incremental else None)
            state = store._state(snap)
            descriptor = BackupDescriptor(
                source_pid=pid,
                snapshot_pid=snap,
                base_pid=base if use_incremental else None,
                set_id=set_id,
                set_size=len(partitions),
                cipher_name=state.payload.cipher_name,
                hash_name=state.payload.hash_name,
                key=state.payload.key,
                created_at=created_at,
                incremental=use_incremental,
            )
            bytes_written += write_partition_backup(
                writer,
                descriptor,
                entries,
                store.codec.system_cipher,
                state.cipher,
                self.mac,
                state.hash,
            )
        self.archival.commit_stream(stream_name, writer)

        # 3. retire old bases, install the new ones, and checkpoint so the
        #    bookkeeping in the system leader becomes durable
        retire_ops: List[object] = []
        for pid in partitions:
            old_base = extras.backup_bases.get(pid)
            if old_base is not None and store.partition_exists(old_base):
                retire_ops.append(DeallocatePartition(old_base))
            extras.backup_bases[pid] = snapshot_pids[pid]
        store.partitions[SYSTEM_PARTITION].leader_dirty = True
        if retire_ops:
            store.commit(retire_ops)
        store.checkpoint()

        logger.info(
            "backup %s: %d partition(s), %d bytes, incremental=%s",
            stream_name,
            len(partitions),
            bytes_written,
            is_incremental,
        )
        return BackupInfo(
            stream_name=stream_name,
            set_id=set_id,
            partitions=list(partitions),
            incremental=is_incremental,
            bytes_written=bytes_written,
            snapshot_pids=snapshot_pids,
        )

    def _collect_entries(
        self, snapshot_pid: int, base_pid: Optional[int]
    ) -> List[BackupEntry]:
        store = self.store
        entries: List[BackupEntry] = []
        if base_pid is None:
            for rank in store.data_ranks(snapshot_pid):
                entries.append(
                    BackupEntry(
                        ENTRY_WRITTEN, rank, store.read_chunk(snapshot_pid, rank)
                    )
                )
            return entries
        for rank, change in sorted(store.diff(base_pid, snapshot_pid).items()):
            if change == DiffChange.REMOVED:
                entries.append(BackupEntry(ENTRY_DEALLOCATED, rank))
            else:
                entries.append(
                    BackupEntry(
                        ENTRY_WRITTEN, rank, store.read_chunk(snapshot_pid, rank)
                    )
                )
        return entries

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def restore(
        self,
        stream_names: List[str],
        approve: Optional[Callable[[List[BackupDescriptor]], bool]] = None,
    ) -> List[int]:
        """Restore one or more backup streams, oldest first.

        Returns the ids of the restored partitions.  Raises
        :class:`BackupOrderingError` on chain or set violations and
        :class:`BackupIntegrityError` on validation failures."""
        store = self.store
        restored_pids: List[int] = []
        for stream_name in stream_names:
            reader = self.archival.open_stream(stream_name)
            backups: List[PartitionBackup] = []
            while not reader.exhausted():
                backups.append(
                    read_partition_backup(
                        reader,
                        store.codec.system_cipher,
                        make_cipher,
                        self.mac,
                        make_hash,
                    )
                )
            if not backups:
                raise BackupError(f"stream {stream_name!r} contains no backups")
            self._check_set_complete(backups)
            if approve is not None and not approve(
                [b.descriptor for b in backups]
            ):
                raise BackupError("restore denied by the approval policy")
            restored_pids.extend(self._apply_set(backups))
        store.checkpoint()  # make restore_history durable
        logger.warning(
            "restore applied from %s: partitions %s", stream_names, restored_pids
        )
        return restored_pids

    def repair_source(
        self, stream_names: List[str]
    ) -> Callable[[int, int], Optional[bytes]]:
        """Build a chunk-level lookup over backup streams, for
        :meth:`ChunkStore.scrub`'s repair pass (oldest stream first).

        Unlike :meth:`restore`, nothing is written: the validated streams
        are folded into an in-memory ``(pid, rank) -> bytes`` table (a
        full backup resets its partition's entries; incrementals overlay
        writes and drop deallocations) and a lookup callable is returned.
        Scrub verifies each candidate against the committed descriptor
        hash before committing it, so a stale table entry is refused, not
        silently applied.
        """
        store = self.store
        table: Dict[tuple, bytes] = {}
        for stream_name in stream_names:
            reader = self.archival.open_stream(stream_name)
            while not reader.exhausted():
                backup = read_partition_backup(
                    reader,
                    store.codec.system_cipher,
                    make_cipher,
                    self.mac,
                    make_hash,
                )
                pid = backup.descriptor.source_pid
                if not backup.descriptor.incremental:
                    for key in [k for k in table if k[0] == pid]:
                        del table[key]
                for entry in backup.entries:
                    if entry.kind == ENTRY_WRITTEN:
                        table[(pid, entry.rank)] = entry.body
                    else:
                        table.pop((pid, entry.rank), None)

        def lookup(pid: int, rank: int) -> Optional[bytes]:
            return table.get((pid, rank))

        return lookup

    @staticmethod
    def _check_set_complete(backups: List[PartitionBackup]) -> None:
        set_ids = {b.descriptor.set_id for b in backups}
        if len(set_ids) != 1:
            raise BackupOrderingError("stream mixes multiple backup sets")
        declared = {b.descriptor.set_size for b in backups}
        if declared != {len(backups)}:
            raise BackupOrderingError(
                f"incomplete backup set: stream has {len(backups)} partition "
                f"backups, descriptors declare {sorted(declared)}"
            )

    def _apply_set(self, backups: List[PartitionBackup]) -> List[int]:
        store = self.store
        extras = self._extras()
        ops: List[object] = []
        restored: List[int] = []
        for backup in backups:
            desc = backup.descriptor
            pid = desc.source_pid
            if desc.incremental:
                last = extras.restore_history.get(pid)
                if last is None:
                    raise BackupOrderingError(
                        f"incremental backup of partition {pid} restored "
                        f"without a preceding full restore"
                    )
                if desc.base_pid != last:
                    raise BackupOrderingError(
                        f"incremental backup chain broken for partition {pid}: "
                        f"base {desc.base_pid} but last restored {last}"
                    )
                if not store.partition_exists(pid):
                    raise BackupOrderingError(
                        f"partition {pid} missing for incremental restore"
                    )
                for entry in backup.entries:
                    if entry.kind == ENTRY_WRITTEN:
                        store._state(pid).allocate_specific(entry.rank)
                        ops.append(WriteChunk(pid, entry.rank, entry.body))
                    else:
                        ops.append(DeallocateChunk(pid, entry.rank))
            else:
                store.reserve_partition_id(pid)
                ops.append(
                    WritePartition(
                        pid,
                        cipher_name=desc.cipher_name,
                        hash_name=desc.hash_name,
                        key=desc.key,
                    )
                )
                for entry in backup.entries:
                    if entry.kind == ENTRY_WRITTEN:
                        ops.append(WriteChunk(pid, entry.rank, entry.body))
            extras.restore_history[pid] = desc.snapshot_pid
            restored.append(pid)
        store.partitions[SYSTEM_PARTITION].leader_dirty = True
        store.commit(ops)  # the whole set commits atomically (§6.3)
        return restored
