"""XDB crash recovery: the WAL redo protocol and its interaction with
the crypto layer's anchor."""

import pytest

from repro.platform import (
    CrashInjector,
    MemoryUntrustedStore,
    SecretStore,
    TamperResistantStore,
)
from repro.xdb import XDB, SecureXDB


class TestWalRecovery:
    def test_crash_mid_wal_write_discards(self):
        injector = CrashInjector()
        store = MemoryUntrustedStore(4 << 20, injector)
        db = XDB.format(store)
        table = db.create_table("t")
        rid = db.insert(table, b"committed")
        db.commit()
        db.insert(table, b"lost")
        injector.arm("untrusted.flush.begin")
        from repro.errors import CrashError

        with pytest.raises(CrashError):
            db.commit()
        injector.disarm()
        store.simulate_crash()
        db2 = XDB.open(store)
        table2 = db2.table("t")
        assert db2.read(table2, rid) == b"committed"
        assert table2.next_rid == 2  # the lost insert's rid is reused

    def test_crash_between_wal_and_page_force_redoes(self):
        """The WAL is durable but pages were not forced: recovery redoes
        the commit from the WAL images."""
        injector = CrashInjector()
        store = MemoryUntrustedStore(4 << 20, injector)
        db = XDB.format(store)
        table = db.create_table("t")
        rid = db.insert(table, b"v1")
        db.commit()
        db.update(table, rid, b"v2")
        # crash at the *second* flush of the commit (the page force)
        injector.arm("untrusted.flush.begin", countdown=1)
        from repro.errors import CrashError

        with pytest.raises(CrashError):
            db.commit()
        injector.disarm()
        store.simulate_crash()
        db2 = XDB.open(store)
        assert db2.read(db2.table("t"), rid) == b"v2"  # redone from WAL

    def test_wal_wraparound(self):
        """Many commits exceed the WAL region; it restarts after forcing
        (pages are already durable at each commit)."""
        store = MemoryUntrustedStore(8 << 20)
        db = XDB.format(store)
        table = db.create_table("t")
        rid = db.insert(table, b"x")
        db.commit()
        # each commit journals the header page + data pages (~3 pages);
        # push well past the 1 MiB WAL region
        for i in range(120):
            db.update(table, rid, bytes([i % 251]) * 1000)
            db.commit()
        assert db.read(table, rid) == bytes([119 % 251]) * 1000
        db2 = XDB.open(store)
        assert db2.read(db2.table("t"), rid) == bytes([119 % 251]) * 1000


class TestSecureXdbRecovery:
    def test_crash_consistency_with_anchor(self):
        injector = CrashInjector()
        store = MemoryUntrustedStore(4 << 20, injector)
        secret = SecretStore.generate()
        tr = TamperResistantStore()
        secure = SecureXDB.format(store, secret, tr, cipher_name="ctr-sha256")
        goods = secure.create_collection("g", {"by_t": lambda o: o["t"]})
        rid = secure.insert(goods, {"t": "committed"})
        secure.commit()
        secure.insert(goods, {"t": "lost"})
        injector.arm("untrusted.flush.begin")
        from repro.errors import CrashError

        with pytest.raises(CrashError):
            secure.commit()
        injector.disarm()
        store.simulate_crash()
        secure2 = SecureXDB.open(store, secret, tr, cipher_name="ctr-sha256")
        goods2 = secure2.open_collection("g", {"by_t": lambda o: o["t"]})
        assert secure2.read(goods2, rid) == {"t": "committed"}
