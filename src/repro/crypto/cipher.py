"""Cipher interfaces.

A :class:`Cipher` instance is *keyed*: it is constructed with a secret key
and exposes whole-message ``encrypt`` / ``decrypt``.  Block ciphers are
wrapped in CBC mode with PKCS#7 padding and a random IV prepended to the
ciphertext (see :mod:`repro.crypto.modes`), so ciphertext length is
``iv + padded length`` and is deterministic given the plaintext length —
a property the log format relies on to demarcate chunk versions.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod

from repro.crypto.counters import CipherCounters


class BlockCipher(ABC):
    """A raw block cipher over fixed-size blocks (ECB primitive).

    Subclasses may additionally implement the *bulk CBC hooks*::

        encrypt_cbc(iv, data) -> ciphertext   # data already padded
        decrypt_cbc(iv, data) -> padded plaintext

    operating on whole messages (a multiple of ``block_size``; the IV is
    *not* included in either argument or result).  When the hooks exist,
    :class:`~repro.crypto.modes.CbcCipher` dispatches to them instead of
    its generic per-block loop; implementations keep state as integers
    across the entire message, or delegate to an accelerated backend
    (:mod:`repro.crypto.accel`).  A hook must produce byte-for-byte the
    same output as the generic loop — the on-disk format depends on it.
    """

    #: block size in bytes
    block_size: int = 8

    @abstractmethod
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one block."""

    @abstractmethod
    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one block."""


class Cipher(ABC):
    """A keyed whole-message cipher."""

    #: registry name, stored in partition leaders
    name: str = "abstract"

    #: True when ``decrypt`` itself authenticates the message (AEAD):
    #: the log codec then binds the header as associated data and the
    #: chunk validation path skips its separate hash pass — one crypto
    #: pass per chunk instead of two.  Authenticating ciphers must
    #: accept an ``aad=`` keyword on ``encrypt``/``decrypt``.
    authenticates: bool = False

    def __init__(self) -> None:
        #: payload-byte and call tallies (see ``ChunkStore.stats()``)
        self.counters = CipherCounters()

    @abstractmethod
    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext``; the result embeds any IV needed."""

    @abstractmethod
    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt`.  Raises ``ValueError`` on malformed input."""

    @abstractmethod
    def ciphertext_size(self, plaintext_size: int) -> int:
        """Size of the ciphertext for a plaintext of ``plaintext_size`` bytes.

        Must be a function of the plaintext size alone; the log format uses
        it to lay out chunk versions.
        """


class NullCipher(Cipher):
    """Identity "cipher" for partitions that need no secrecy (§2.2).

    Tamper detection still applies to such partitions — hashing is
    orthogonal to encryption.
    """

    name = "null"

    def __init__(self, key: bytes = b"") -> None:
        # The key is accepted (and ignored) so the registry can treat all
        # ciphers uniformly.
        super().__init__()
        del key

    def encrypt(self, plaintext: bytes) -> bytes:
        counters = self.counters
        counters.encrypt_calls += 1
        counters.bytes_encrypted += len(plaintext)
        return bytes(plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        counters = self.counters
        counters.decrypt_calls += 1
        counters.bytes_decrypted += len(ciphertext)
        return bytes(ciphertext)

    def ciphertext_size(self, plaintext_size: int) -> int:
        return plaintext_size


def random_iv(size: int) -> bytes:
    """A fresh random IV.  Centralised so tests can monkeypatch it."""
    return os.urandom(size)
