"""XDB: the conventional embedded-database baseline and its crypto layer
(§9.5's comparison system)."""

from repro.xdb.btree import BTree
from repro.xdb.cryptolayer import SecureXDB
from repro.xdb.db import XDB, Table
from repro.xdb.pager import PAGE_SIZE, Pager

__all__ = ["XDB", "Table", "BTree", "Pager", "PAGE_SIZE", "SecureXDB"]
