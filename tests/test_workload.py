"""The bind/release workload reproduces Figure 10's operation counts on
both systems (this is also the §9.5 comparison's precondition: identical
work driven through both adapters)."""

import pytest

from repro.bench.adapters import TdbAdapter, XdbAdapter
from repro.bench.workload import (
    COLLECTION_COUNT,
    FIGURE_10,
    Workload,
    make_schema,
)


class TestSchema:
    def test_thirty_collections(self):
        schema = make_schema()
        assert len(schema) == COLLECTION_COUNT

    def test_one_to_four_indexes_each(self):
        for spec in make_schema():
            assert 1 <= len(spec.indexes) <= 4

    def test_deterministic(self):
        a = make_schema(seed=7)
        b = make_schema(seed=7)
        assert [(s.name, len(s.indexes)) for s in a] == [
            (s.name, len(s.indexes)) for s in b
        ]


@pytest.mark.slow
class TestFigure10:
    def test_tdb_release_counts(self):
        adapter = TdbAdapter()
        workload = Workload(adapter)
        workload.setup()
        counts = workload.run_experiment("release")
        assert counts == FIGURE_10["release"]

    def test_tdb_bind_counts(self):
        adapter = TdbAdapter()
        workload = Workload(adapter)
        workload.setup()
        counts = workload.run_experiment("bind")
        assert counts == FIGURE_10["bind"]

    def test_xdb_release_counts(self):
        adapter = XdbAdapter()
        workload = Workload(adapter)
        workload.setup()
        counts = workload.run_experiment("release")
        assert counts == FIGURE_10["release"]

    def test_same_seed_same_touches(self):
        """Both adapters see the identical operation stream."""
        tdb = Workload(TdbAdapter(), seed=3)
        xdb = Workload(XdbAdapter(), seed=3)
        tdb.setup()
        xdb.setup()
        tdb.run_experiment("release")
        xdb.run_experiment("release")
        assert tdb.adapter.op_counts == xdb.adapter.op_counts

    def test_tdb_beats_xdb_on_modeled_commit_cost(self):
        """Figure 11's shape: same workload, fewer flushes and bytes for
        TDB (log-structured compact commits vs WAL + forced pages)."""
        tdb = TdbAdapter()
        wl = Workload(tdb)
        wl.setup()
        tdb_stats0 = tdb.platform.untrusted.stats.snapshot()
        wl.run_experiment("release")
        tdb_io = tdb.platform.untrusted.stats.delta(tdb_stats0)

        xdb = XdbAdapter()
        wl2 = Workload(xdb)
        wl2.setup()
        xdb_stats0 = xdb.store.stats.snapshot()
        wl2.run_experiment("release")
        xdb_io = xdb.store.stats.delta(xdb_stats0)

        assert tdb_io.flushes < xdb_io.flushes
        assert tdb_io.bytes_written < xdb_io.bytes_written
