"""Tests for the §10 extensions: trusted paging, remote storage with
batching, and steal (spill) buffer management."""

import pytest

from repro.chunkstore import ChunkStore
from repro.errors import TamperDetectedError
from repro.extensions import (
    NetworkModel,
    RemoteUntrustedStore,
    SpillingObjectStore,
    TrustedPager,
)
from repro.platform import MemoryUntrustedStore, TrustedPlatform
from tests.conftest import make_config, make_platform


class TestTrustedPaging:
    def build(self):
        platform = make_platform(size=8 * 1024 * 1024)
        chunks = ChunkStore.format(platform, make_config())
        pager = TrustedPager(chunks, page_size=1024, frames=4)
        return platform, chunks, pager

    def test_zero_fill_on_first_touch(self):
        _, _, pager = self.build()
        assert pager.read(5) == bytes(1024)

    def test_write_read_within_working_set(self):
        _, _, pager = self.build()
        pager.write(0, 100, b"hello")
        assert pager.read(0, 100, 5) == b"hello"

    def test_eviction_roundtrip(self):
        """Pages evicted past the frame limit come back intact."""
        _, _, pager = self.build()
        for page in range(10):
            pager.write(page, 0, f"page-{page}".encode())
        assert pager.resident_pages <= 4
        assert pager.evictions > 0
        for page in range(10):
            assert pager.read(page, 0, 7).startswith(f"page-{page}".encode()[:6])

    def test_faults_counted(self):
        _, _, pager = self.build()
        for page in range(8):
            pager.write(page, 0, b"x")
        before = pager.faults
        pager.read(0)  # long evicted
        assert pager.faults == before + 1

    def test_pages_encrypted_on_untrusted_store(self):
        platform, chunks, pager = self.build()
        pager.write(0, 0, b"TOPSECRET-PAGE-CONTENT")
        pager.sync()
        assert b"TOPSECRET-PAGE-CONTENT" not in platform.untrusted.tamper_image()

    def test_tampered_page_detected_at_fault(self):
        platform, chunks, pager = self.build()
        pager.write(0, 0, b"sensitive")
        # force it out and locate its chunk
        for page in range(1, 9):
            pager.write(page, 0, b"filler")
        pager.sync()
        from repro.chunkstore.ids import data_id

        descriptor = chunks._get_descriptor(data_id(pager.partition, 0))
        middle = descriptor.location + descriptor.length // 2
        byte = platform.untrusted.tamper_read(middle, 1)
        platform.untrusted.tamper_write(middle, bytes([byte[0] ^ 1]))
        chunks.cache.clear()
        # page 0 must be non-resident for the fault to hit storage
        if 0 not in pager._resident:
            with pytest.raises(TamperDetectedError):
                pager.read(0)

    def test_boundary_write_rejected(self):
        _, _, pager = self.build()
        with pytest.raises(ValueError):
            pager.write(0, 1020, b"too long")

    def test_discard_all(self):
        _, chunks, pager = self.build()
        pager.write(0, 0, b"x")
        pager.sync()
        pager.discard_all()
        assert not chunks.partition_exists(pager.partition)


class TestRemoteStore:
    def test_round_trip_accounting(self):
        remote = RemoteUntrustedStore(MemoryUntrustedStore(1 << 20))
        remote.write(0, b"abc")
        remote.flush()
        remote.read(0, 3)
        assert remote.round_trips == 2  # flush batch + read

    def test_batched_reads_one_round_trip(self):
        remote = RemoteUntrustedStore(MemoryUntrustedStore(1 << 20))
        remote.write(0, b"aa")
        remote.write(100, b"bb")
        remote.flush()
        remote.reset_accounting()
        results = remote.read_many([(0, 2), (100, 2)])
        assert results == [b"aa", b"bb"]
        assert remote.round_trips == 1

    def test_chunk_store_runs_over_remote(self):
        """The whole stack works against a remote untrusted store."""
        from repro.chunkstore import ops
        from repro.platform import CrashInjector, SecretStore
        from repro.platform.tamper_resistant import (
            TamperResistantCounter,
            TamperResistantStore,
        )
        from repro.platform.archival import MemoryArchivalStore

        injector = CrashInjector()
        remote = RemoteUntrustedStore(MemoryUntrustedStore(4 << 20, injector))
        platform = TrustedPlatform(
            secret_store=SecretStore.generate(),
            tamper_resistant=TamperResistantStore(),
            counter=TamperResistantCounter(),
            untrusted=remote,
            archival=MemoryArchivalStore(),
            injector=injector,
        )
        store = ChunkStore.format(platform, make_config())
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"over the network")])
        assert store.read_chunk(pid, rank) == b"over the network"
        assert remote.round_trips > 0
        # crash + recovery also works remotely
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(pid, rank) == b"over the network"

    def test_network_model(self):
        model = NetworkModel(round_trip_latency=0.05, bandwidth=1e6)
        assert model.time(10, 1_000_000) == pytest.approx(0.5 + 1.0)


class TestSpilling:
    def build(self, threshold=4):
        platform = make_platform(size=16 * 1024 * 1024)
        chunks = ChunkStore.format(platform, make_config(segment_size=32 * 1024))
        objects = SpillingObjectStore(chunks, spill_threshold=threshold)
        pid = objects.create_partition(cipher_name="ctr-sha256", hash_name="sha1")
        return platform, chunks, objects, pid

    def test_large_transaction_spills_and_commits(self):
        _, chunks, objects, pid = self.build(threshold=4)
        with objects.transaction() as tx:
            refs = [tx.create(pid, {"n": i, "pad": "x" * 100}) for i in range(20)]
            assert tx.spilled_count > 0
        for i, ref in enumerate(refs):
            assert objects.read_committed(ref)["n"] == i

    def test_spilled_values_readable_within_tx(self):
        _, _, objects, pid = self.build(threshold=2)
        with objects.transaction() as tx:
            refs = [tx.create(pid, {"n": i}) for i in range(10)]
            # reads must see stolen values transparently
            for i, ref in enumerate(refs):
                assert tx.get(ref)["n"] == i

    def test_abort_discards_spilled(self):
        _, chunks, objects, pid = self.build(threshold=2)
        tx = objects.transaction()
        refs = [tx.create(pid, {"n": i}) for i in range(10)]
        tx.abort()
        from repro.errors import ObjectNotFoundError

        for ref in refs:
            with pytest.raises(ObjectNotFoundError):
                objects.read_committed(ref)
        # the scratch partition is gone
        assert not any(
            chunks._state(p).payload.name.startswith("__tx_spill__")
            for p in chunks.partition_ids()
        )

    def test_scratch_cleaned_after_commit(self):
        _, chunks, objects, pid = self.build(threshold=2)
        with objects.transaction() as tx:
            [tx.create(pid, {"n": i}) for i in range(10)]
        assert not any(
            chunks._state(p).payload.name.startswith("__tx_spill__")
            for p in chunks.partition_ids()
        )

    def test_orphan_collection_after_crash(self):
        platform, chunks, objects, pid = self.build(threshold=2)
        tx = objects.transaction()
        [tx.create(pid, {"n": i}) for i in range(10)]  # spills committed scratch
        # crash before tx.commit: the scratch partition is orphaned
        chunks.close(checkpoint=False)
        platform.reboot()
        chunks2 = ChunkStore.open(platform)
        names_before = [
            chunks2._state(p).payload.name for p in chunks2.partition_ids()
        ]
        assert any(name.startswith("__tx_spill__") for name in names_before)
        objects2 = SpillingObjectStore(chunks2, spill_threshold=2)
        assert not any(
            chunks2._state(p).payload.name.startswith("__tx_spill__")
            for p in chunks2.partition_ids()
        )

    def test_spilled_data_is_protected(self):
        """Stolen dirty objects still get secrecy and integrity — they go
        through the chunk store, not to a scratch file."""
        platform, chunks, objects, pid = self.build(threshold=1)
        tx = objects.transaction()
        tx.create(pid, {"secret": "SPILLME-" + "S" * 64})
        tx.create(pid, {"secret": "SPILLME-" + "T" * 64})
        tx.create(pid, {"secret": "SPILLME-" + "U" * 64})
        assert tx.spilled_count > 0
        assert b"SPILLME-" not in platform.untrusted.tamper_image()
        tx.abort()


class TestSwallowedErrors:
    """Best-effort cleanup may swallow *typed* store errors, but every
    swallow is recorded in the obs event log; foreign errors propagate."""

    def build(self, threshold=2):
        platform = make_platform(size=8 * 1024 * 1024)
        chunks = ChunkStore.format(platform, make_config())
        objects = SpillingObjectStore(chunks, spill_threshold=threshold)
        pid = objects.create_partition(
            cipher_name="ctr-sha256", hash_name="sha1"
        )
        return chunks, objects, pid

    def test_drop_scratch_failure_is_evented_not_silent(self):
        from repro import obs
        from repro.chunkstore.ops import DeallocatePartition
        from repro.errors import ChunkStoreError

        chunks, objects, pid = self.build()
        tx = objects.transaction()
        for i in range(5):  # exceed the threshold so a scratch exists
            tx.create(pid, f"value-{i}" * 20)
        assert tx._scratch_pid is not None

        real_commit = chunks.commit

        def failing_commit(operations):
            if any(isinstance(op, DeallocatePartition) for op in operations):
                raise ChunkStoreError("injected deallocate failure")
            return real_commit(operations)

        mark = obs.events.mark()
        before = obs.metrics.counter_value("extensions.swallowed_errors")
        chunks.commit = failing_commit
        try:
            tx.commit()  # must succeed despite the failed scratch drop
        finally:
            chunks.commit = real_commit
        swallowed = [
            e for e in obs.events.since(mark) if e.kind == "swallowed_error"
        ]
        assert len(swallowed) == 1
        assert swallowed[0].fields["where"] == "spill.drop_scratch"
        assert swallowed[0].fields["error"] == "ChunkStoreError"
        assert (
            obs.metrics.counter_value("extensions.swallowed_errors")
            == before + 1
        )

    def test_collect_orphans_skip_is_evented(self):
        from repro import obs
        from repro.errors import ChunkStoreError

        chunks, objects, pid = self.build()
        real_state = chunks._state

        def flaky_state(partition):
            if partition == pid:
                raise ChunkStoreError("leader unreadable")
            return real_state(partition)

        mark = obs.events.mark()
        chunks._state = flaky_state
        try:
            objects.collect_orphans()  # must not raise: pid is skipped
        finally:
            chunks._state = real_state
        swallowed = [
            e for e in obs.events.since(mark) if e.kind == "swallowed_error"
        ]
        assert len(swallowed) == 1
        assert swallowed[0].fields["where"] == "spill.collect_orphans"
        assert swallowed[0].fields["partition"] == pid

    def test_foreign_error_in_drop_scratch_propagates(self):
        chunks, objects, pid = self.build()
        tx = objects.transaction()
        for i in range(5):
            tx.create(pid, f"value-{i}" * 20)
        assert tx._scratch_pid is not None

        real_commit = chunks.commit

        def broken_commit(operations):
            from repro.chunkstore.ops import DeallocatePartition

            if any(isinstance(op, DeallocatePartition) for op in operations):
                raise RuntimeError("a bug, not a store failure")
            return real_commit(operations)

        chunks.commit = broken_commit
        try:
            with pytest.raises(RuntimeError):
                tx.commit()
        finally:
            chunks.commit = real_commit
