"""Backup wire format (§6.2).

A backup *set* is streamed to the archival store as a sequence of
partition backups::

    PartitionBackup ::=
        [u32 len] E_s(BackupDescriptor)
        [uvarint n]
        n × ( [u8 kind] [uvarint rank] [u32 len] E_p(ChunkBody) )
        [u32 len] BackupSignature
        [u32 crc32]

following the paper's ::

    PartitionBackup ::= E_s(BackupDescriptor)
                        (E_s(ChunkHeader) E_p(ChunkBody))*
                        BackupSignature
                        Checksum

The *backup signature* binds the descriptor to the chunk contents:
``MAC(desc_plain ‖ H_p((rank ‖ kind ‖ body)*))`` keyed from the secret
store — the symmetric-key realisation of the paper's
``E_s(H_s(desc ‖ H_p((ChunkId ChunkBody)*)))``.  The trailing CRC is the
paper's *unencrypted checksum*: it lets an untrusted external application
verify the backup was written completely, and provides no security.

The descriptor carries the partition's cryptographic parameters
*including its key* (inside the system-encrypted descriptor): after a
media failure the untrusted store is gone, so the only way to recover the
partition key is from the backup itself — reachable from the secret
store, preserving the cipher-link discipline.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import BackupIntegrityError
from repro.util.checksum import crc32_bytes
from repro.util.codec import Decoder, Encoder

#: entry kinds
ENTRY_WRITTEN = 1
ENTRY_DEALLOCATED = 2


@dataclass
class BackupDescriptor:
    """Metadata heading one partition backup (§6.2)."""

    source_pid: int
    snapshot_pid: int
    base_pid: Optional[int]  # None for full backups
    set_id: int  # random number identifying the backup set
    set_size: int  # number of partition backups in the set
    cipher_name: str
    hash_name: str
    key: bytes
    created_at: float
    incremental: bool

    def encode(self) -> bytes:
        enc = Encoder()
        enc.uint(self.source_pid)
        enc.uint(self.snapshot_pid)
        enc.opt_uint(self.base_pid)
        enc.uint(self.set_id)
        enc.uint(self.set_size)
        enc.text(self.cipher_name)
        enc.text(self.hash_name)
        enc.bytes(self.key)
        enc.float(self.created_at)
        enc.bool(self.incremental)
        return enc.finish()

    @classmethod
    def decode(cls, data: bytes) -> "BackupDescriptor":
        dec = Decoder(data)
        source_pid = dec.uint()
        snapshot_pid = dec.uint()
        base_pid = dec.opt_uint()
        set_id = dec.uint()
        set_size = dec.uint()
        cipher_name = dec.text()
        hash_name = dec.text()
        key = dec.bytes()
        created_at = dec.float()
        incremental = dec.bool()
        dec.expect_exhausted()
        return cls(
            source_pid,
            snapshot_pid,
            base_pid,
            set_id,
            set_size,
            cipher_name,
            hash_name,
            key,
            created_at,
            incremental,
        )


@dataclass
class BackupEntry:
    """One chunk in a partition backup."""

    kind: int  # ENTRY_WRITTEN or ENTRY_DEALLOCATED
    rank: int
    body: bytes = b""  # plaintext when in memory; encrypted on the wire


@dataclass
class PartitionBackup:
    """A decoded partition backup (descriptor + entries, plaintext)."""

    descriptor: BackupDescriptor
    entries: List[BackupEntry] = field(default_factory=list)


def _frame(data: bytes) -> bytes:
    return struct.pack(">I", len(data)) + data


class _FrameReader:
    def __init__(self, reader) -> None:
        self._reader = reader
        self.crc = 0
        self.consumed = 0

    def exact(self, size: int) -> bytes:
        data = self._reader.read_exact(size)
        self.crc = crc32_bytes(data, self.crc)
        self.consumed += size
        return data

    def frame(self) -> bytes:
        (size,) = struct.unpack(">I", self.exact(4))
        if size > 64 * 1024 * 1024:
            raise BackupIntegrityError("implausible frame size in backup stream")
        return self.exact(size)

    def uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.exact(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise BackupIntegrityError("malformed varint in backup stream")


def content_hash(hash_function, entries: List[BackupEntry]) -> bytes:
    """H_p over the (rank, kind, plaintext body) sequence."""
    hasher = hash_function.new()
    for entry in entries:
        hasher.update(Encoder().uint(entry.rank).uint(entry.kind).finish())
        hasher.update(entry.body)
    return hasher.digest()


def write_partition_backup(
    writer,
    descriptor: BackupDescriptor,
    entries: List[BackupEntry],
    system_cipher,
    partition_cipher,
    mac,
    hash_function,
) -> int:
    """Serialise one partition backup to an archival stream writer.

    Returns the number of bytes written (for the §9.2.3 size model)."""
    out = bytearray()
    desc_plain = descriptor.encode()
    out += _frame(system_cipher.encrypt(desc_plain))
    enc = Encoder()
    enc.uint(len(entries))
    out += enc.finish()
    for entry in entries:
        out += bytes([entry.kind])
        out += Encoder().uint(entry.rank).finish()
        body_ct = partition_cipher.encrypt(entry.body) if entry.kind == ENTRY_WRITTEN else b""
        out += _frame(body_ct)
    signature = mac.sign(desc_plain + content_hash(hash_function, entries))
    out += _frame(signature)
    out += struct.pack(">I", crc32_bytes(bytes(out)))
    writer.write(bytes(out))
    return len(out)


def read_partition_backup(
    reader, system_cipher, make_cipher, mac, make_hash
) -> PartitionBackup:
    """Parse and validate one partition backup from an archival stream.

    Raises :class:`BackupIntegrityError` on checksum or signature failure.
    ``make_cipher(name, key)`` / ``make_hash(name)`` come from the crypto
    registry (the partition parameters live in the descriptor).
    """
    framed = _FrameReader(reader)
    try:
        desc_ct = framed.frame()
        desc_plain = system_cipher.decrypt(desc_ct)
        descriptor = BackupDescriptor.decode(desc_plain)
        partition_cipher = make_cipher(descriptor.cipher_name, descriptor.key)
        hash_function = make_hash(descriptor.hash_name)
        count = framed.uvarint()
        entries: List[BackupEntry] = []
        for _ in range(count):
            kind = framed.exact(1)[0]
            if kind not in (ENTRY_WRITTEN, ENTRY_DEALLOCATED):
                raise BackupIntegrityError(f"bad entry kind {kind}")
            rank = framed.uvarint()
            body_ct = framed.frame()
            body = (
                partition_cipher.decrypt(body_ct) if kind == ENTRY_WRITTEN else b""
            )
            entries.append(BackupEntry(kind, rank, body))
        # the signature frame must not be included in its own CRC input:
        # read it while tracking the CRC, then read the raw CRC field
        signature = framed.frame()
        crc_expected = framed.crc
    except (ValueError, struct.error) as exc:
        raise BackupIntegrityError(f"malformed backup stream: {exc}") from exc
    (crc_stored,) = struct.unpack(">I", reader.read_exact(4))
    if crc_stored != crc_expected:
        raise BackupIntegrityError("backup checksum mismatch (incomplete stream?)")
    expected_sig = mac.sign(
        desc_plain + content_hash(hash_function, entries)
    )
    if signature != expected_sig:
        raise BackupIntegrityError("backup signature verification failed")
    return PartitionBackup(descriptor, entries)
