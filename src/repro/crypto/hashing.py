"""Collision-resistant hash functions.

A :class:`HashFunction` is stateless and cheap to share; ``new()`` returns
a streaming hasher with ``update``/``digest`` (the hashlib protocol), and
``hash()`` is the one-shot convenience.  The paper's measured "finalization"
cost (§9.2.1: 5 µs per hash) corresponds to ``digest()``.

``NullHash`` is for partitions that need secrecy but not validation
(§2.2): its digest is empty, so descriptor comparisons always succeed and
no tamper-detection is provided for that partition.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

from repro.crypto.counters import HashCounters


class HashFunction(ABC):
    """A named collision-resistant hash function."""

    name: str = "abstract"
    digest_size: int = 0

    def __init__(self) -> None:
        #: byte/digest tallies — ``hash()`` updates them itself; callers
        #: using the streaming ``new()`` interface (e.g. the log codec)
        #: account for their own bytes
        self.counters = HashCounters()

    @abstractmethod
    def new(self):
        """Return a streaming hasher (``update``/``digest``)."""

    def hash(self, data: bytes) -> bytes:
        hasher = self.new()
        hasher.update(data)
        self.counters.digests += 1
        self.counters.bytes_hashed += len(data)
        return hasher.digest()


class Sha1Hash(HashFunction):
    """SHA-1, the paper's hash function (§9.2.1)."""

    name = "sha1"
    digest_size = 20

    def new(self):
        return hashlib.sha1()


class Sha256Hash(HashFunction):
    """SHA-256, a modern stronger option."""

    name = "sha256"
    digest_size = 32

    def new(self):
        return hashlib.sha256()


class _NullHasher:
    def update(self, data: bytes) -> None:
        del data

    def digest(self) -> bytes:
        return b""


class NullHash(HashFunction):
    """No-op hash for partitions that do not need tamper detection."""

    name = "null"
    digest_size = 0

    def new(self):
        return _NullHasher()
