"""Crypto fast-path benchmark: ``python -m repro.bench.crypto_bench``.

Measures each registered cipher in three configurations:

* ``fast`` — the default construction: OpenSSL-backed CBC where available
  (DES/3DES via the installed ``cryptography`` wheel), int-native bulk
  hooks otherwise;
* ``python-bulk`` — the pure-Python bulk hooks (``accel=False``), i.e.
  the portable fast path;
* ``fallback`` — the generic per-block / per-byte loops (``bulk=False``),
  the seed implementation.

All three produce byte-identical ciphertext for the same IV, so the
speedups are free: the on-disk format does not depend on which path ran.
Results go to ``BENCH_crypto.json``; ``--check`` exits non-zero when the
acceptance floors (DES-CBC ≥ 3×, ctr-sha256 ≥ 2× over fallback) are not
met, which CI uses as a perf-regression smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.crypto import accel
from repro.crypto.cipher import Cipher
from repro.crypto.des import Des, TripleDes
from repro.crypto.modes import CbcCipher, CtrStreamCipher
from repro.crypto.xtea import Xtea

_KEYS = {
    "des-cbc": bytes(range(8)),
    "3des-cbc": bytes(range(24)),
    "xtea-cbc": bytes(range(16)),
    "ctr-sha256": bytes(range(16)),
}

#: acceptance floors: fast-path speedup over the fallback loop
FLOORS = {"des-cbc": 3.0, "ctr-sha256": 2.0}

VARIANTS = ("fast", "python-bulk", "fallback")


def build_cipher(name: str, variant: str) -> Cipher:
    """Construct ``name`` in one of the three benchmark configurations."""
    key = _KEYS[name]
    bulk = variant != "fallback"
    if name == "ctr-sha256":
        return CtrStreamCipher(key, bulk=bulk)
    use_accel = variant == "fast"
    if name == "des-cbc":
        block = Des(key, accel=use_accel)
    elif name == "3des-cbc":
        block = TripleDes(key, accel=use_accel)
    elif name == "xtea-cbc":
        block = Xtea(key)  # no OpenSSL backend; fast == python-bulk
    else:
        raise ValueError(f"unknown cipher {name!r}")
    return CbcCipher(block, name, bulk=bulk)


def _bandwidth(fn, payload_len: int, repeat: int) -> float:
    """Best-of-``repeat`` throughput of ``fn`` in MB/s."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return payload_len / best / 1e6


def run(size: int, repeat: int) -> Dict[str, object]:
    buffer = bytes(i & 0xFF for i in range(size))
    ciphers: Dict[str, Dict[str, object]] = {}
    for name in _KEYS:
        per_variant: Dict[str, Dict[str, float]] = {}
        for variant in VARIANTS:
            cipher = build_cipher(name, variant)
            ciphertext = cipher.encrypt(buffer)
            per_variant[variant] = {
                "encrypt_mb_s": round(
                    _bandwidth(lambda: cipher.encrypt(buffer), size, repeat), 3
                ),
                "decrypt_mb_s": round(
                    _bandwidth(lambda: cipher.decrypt(ciphertext), size, repeat), 3
                ),
            }
        entry: Dict[str, object] = dict(per_variant)
        entry["speedup_encrypt"] = round(
            per_variant["fast"]["encrypt_mb_s"]
            / per_variant["fallback"]["encrypt_mb_s"],
            2,
        )
        entry["speedup_decrypt"] = round(
            per_variant["fast"]["decrypt_mb_s"]
            / per_variant["fallback"]["decrypt_mb_s"],
            2,
        )
        ciphers[name] = entry
    return {
        "buffer_bytes": size,
        "repeat": repeat,
        "accel": {
            "available": accel.available(),
            "reason_unavailable": accel.unavailable_reason(),
        },
        "floors": FLOORS,
        "ciphers": ciphers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_crypto.json", help="output JSON path"
    )
    parser.add_argument(
        "--size", type=int, default=64 * 1024, help="payload size in bytes"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="passes per measurement (min taken)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the acceptance floors are met",
    )
    args = parser.parse_args(argv)

    results = run(args.size, args.repeat)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    ciphers = results["ciphers"]
    for name, entry in ciphers.items():
        print(
            f"{name:>11}: fast {entry['fast']['encrypt_mb_s']:8.2f} MB/s  "
            f"python-bulk {entry['python-bulk']['encrypt_mb_s']:8.2f}  "
            f"fallback {entry['fallback']['encrypt_mb_s']:8.2f}  "
            f"(speedup {entry['speedup_encrypt']:.1f}x enc / "
            f"{entry['speedup_decrypt']:.1f}x dec)"
        )
    print(f"wrote {args.out}")

    if args.check:
        failed = False
        for name, floor in FLOORS.items():
            speedup = min(
                ciphers[name]["speedup_encrypt"], ciphers[name]["speedup_decrypt"]
            )
            if speedup < floor:
                print(
                    f"FAIL: {name} fast path is {speedup:.1f}x over fallback, "
                    f"floor is {floor:.1f}x",
                    file=sys.stderr,
                )
                failed = True
        if failed:
            return 1
        print("acceptance floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
