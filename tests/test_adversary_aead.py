"""Adversary sweep on AEAD partitions: tag verification as the oracle.

Same detect-or-correct oracle as :mod:`test_adversary`, but the scenario
runs both AEAD suites as partition ciphers *and* AES-256-GCM as the
system cipher, so the one-pass path carries the whole trial: descriptor
digests are auth tags, validation is a single AEAD decrypt with the
header as associated data, and commit records ride the MAC-skip path in
counter mode.  Every tamper class — bit flips, zeroing/garbage, extent
swaps, stale replay, cross-partition splices (including AEAD↔legacy),
whole-image replay, torn races — must be rejected by tag verification or
be provably harmless, in both validation modes.
"""

import pytest

from repro.crypto import aead
from repro.errors import TamperDetectedError
from repro.testing.adversary import (
    AEAD_PARTITION_SPECS,
    DETECTED,
    FOREIGN_ERROR,
    SILENT_CORRUPTION,
    Adversary,
    build_scenario,
)

pytestmark = pytest.mark.skipif(
    not aead.available(),
    reason=f"AEAD backend unavailable: {aead.unavailable_reason()}",
)

MODES = ["counter", "direct"]


@pytest.fixture(scope="module")
def adversaries():
    """One AEAD scenario per mode (trials restore from the snapshot)."""
    return {
        mode: Adversary(
            mode,
            scenario=build_scenario(
                mode,
                partition_specs=AEAD_PARTITION_SPECS,
                system_cipher="aes-256-gcm",
            ),
        )
        for mode in MODES
    }


def _assert_no_failures(result):
    lines = [
        f"{r.outcome}: seed={r.seed} {r.detail}" for r in result.failures
    ]
    assert not result.failures, (
        f"{len(lines)} oracle violation(s) on AEAD partitions "
        f"(mode={result.mode}):\n" + "\n".join(lines)
    )


@pytest.mark.parametrize("mode", MODES)
def test_aead_adversary_sweep(adversaries, mode):
    """160 seeded mutations per mode, round-robin over all eight attack
    classes, zero undetected tampers on AEAD partitions."""
    result = adversaries[mode].run(160)
    _assert_no_failures(result)
    assert set(result.classes_exercised()) == set(Adversary.CLASSES)
    outcomes = result.outcomes()
    assert outcomes.get(SILENT_CORRUPTION, 0) == 0
    assert outcomes.get(FOREIGN_ERROR, 0) == 0
    # not vacuous: a healthy share of mutations actually bit
    assert outcomes.get(DETECTED, 0) >= 30


@pytest.mark.parametrize("mode", MODES)
def test_aead_image_replay_always_detected(adversaries, mode):
    """§2.1 whole-image replay stays mandatory-detect with AEAD digests:
    fresh nonces make re-encryptions of even identical plaintext produce
    distinct tags, so a stale version can never match the current
    descriptor."""
    adversary = adversaries[mode]
    for seed in range(12):
        report = adversary.run_trial(seed, attack="image_replay")
        assert report.outcome == DETECTED, (
            f"image replay went undetected on AEAD store: {report.detail}"
        )


@pytest.mark.parametrize("mode", MODES)
def test_targeted_tampers_on_aead_extents(adversaries, mode):
    """Surgical single-chunk attacks on AEAD-partition extents: flip one
    byte of the stored version (header/AAD, nonce, ciphertext, or tag —
    the offset sweeps the extent) and the read must detect."""
    adversary = adversaries[mode]
    scenario = adversary.scenario
    aead_pids = scenario.pids[:2]  # built in AEAD_PARTITION_SPECS order
    for pid in aead_pids:
        key = (pid, 4)  # the freshest, residual-log version
        location, length = scenario.extents[key]
        for offset in range(0, length, max(1, length // 6)):
            platform = scenario.final.restore()
            byte = platform.untrusted.tamper_read(location + offset, 1)[0]
            platform.untrusted.tamper_write(
                location + offset, bytes([byte ^ 0x40])
            )
            outcome, detail = adversary._judge(
                platform, {k: (v,) for k, v in scenario.expected.items()}
            )
            assert outcome == DETECTED, (
                f"mode={mode} pid={pid} flip at extent offset {offset} "
                f"-> {outcome}: {detail}"
            )


@pytest.mark.parametrize("mode", MODES)
def test_aead_version_truncation_detected(adversaries, mode):
    """Truncation: zero the tail of an AEAD chunk's stored version (tag
    and some ciphertext) — the shortened/blanked tag must never verify."""
    adversary = adversaries[mode]
    scenario = adversary.scenario
    for pid in scenario.pids[:2]:
        key = (pid, 4)
        location, length = scenario.extents[key]
        for cut in (1, 8, 16, 24, length // 2):
            platform = scenario.final.restore()
            platform.untrusted.tamper_write(location + length - cut, bytes(cut))
            outcome, detail = adversary._judge(
                platform, {k: (v,) for k, v in scenario.expected.items()}
            )
            assert outcome == DETECTED, (
                f"mode={mode} pid={pid} truncating {cut} tail bytes "
                f"-> {outcome}: {detail}"
            )
