"""Archival store: untrusted stream storage for backups (§2.1).

"It need not provide efficient random access to data, only input and
output streams.  It might be a tape or an ftp server."  We model it as a
set of named streams with sequential writers and readers.  Like the
untrusted store, it is untrusted: tests tamper with archived bytes to
check that restores validate.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Dict, List


class StreamWriter:
    """Sequential writer for one archival stream."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise ValueError("stream writer is closed")
        self._parts.append(bytes(data))

    def close(self) -> bytes:
        self._closed = True
        return b"".join(self._parts)


class StreamReader:
    """Sequential reader over one archival stream."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, size: int) -> bytes:
        chunk = self._data[self._pos : self._pos + size]
        self._pos += len(chunk)
        return chunk

    def read_exact(self, size: int) -> bytes:
        chunk = self.read(size)
        if len(chunk) != size:
            raise ValueError(
                f"archival stream truncated: wanted {size}, got {len(chunk)}"
            )
        return chunk

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def exhausted(self) -> bool:
        return self._pos >= len(self._data)


class ArchivalStore(ABC):
    """A named collection of write-once streams."""

    @abstractmethod
    def create_stream(self, name: str) -> StreamWriter: ...

    @abstractmethod
    def commit_stream(self, name: str, writer: StreamWriter) -> None: ...

    @abstractmethod
    def open_stream(self, name: str) -> StreamReader: ...

    @abstractmethod
    def list_streams(self) -> List[str]: ...

    @abstractmethod
    def delete_stream(self, name: str) -> None: ...

    # -- attacker interface --------------------------------------------------

    @abstractmethod
    def tamper_stream(self, name: str, offset: int, data: bytes) -> None:
        """Attacker: overwrite bytes inside an archived stream."""


class MemoryArchivalStore(ArchivalStore):
    """Archival store kept in memory."""

    def __init__(self) -> None:
        self._streams: Dict[str, bytes] = {}

    def create_stream(self, name: str) -> StreamWriter:
        return StreamWriter()

    def commit_stream(self, name: str, writer: StreamWriter) -> None:
        self._streams[name] = writer.close()

    def open_stream(self, name: str) -> StreamReader:
        if name not in self._streams:
            raise KeyError(f"no archival stream named {name!r}")
        return StreamReader(self._streams[name])

    def list_streams(self) -> List[str]:
        return sorted(self._streams)

    def delete_stream(self, name: str) -> None:
        self._streams.pop(name, None)

    def tamper_stream(self, name: str, offset: int, data: bytes) -> None:
        stream = bytearray(self._streams[name])
        stream[offset : offset + len(data)] = data
        self._streams[name] = bytes(stream)


class FileArchivalStore(ArchivalStore):
    """Archival store as files in a directory (one file per stream)."""

    def __init__(self, directory: str) -> None:
        self._dir = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str) -> str:
        safe = name.replace("/", "_")
        return os.path.join(self._dir, safe)

    def create_stream(self, name: str) -> StreamWriter:
        return StreamWriter()

    def commit_stream(self, name: str, writer: StreamWriter) -> None:
        with open(self._path(name), "wb") as f:
            f.write(writer.close())

    def open_stream(self, name: str) -> StreamReader:
        path = self._path(name)
        if not os.path.exists(path):
            raise KeyError(f"no archival stream named {name!r}")
        with open(path, "rb") as f:
            return StreamReader(f.read())

    def list_streams(self) -> List[str]:
        return sorted(os.listdir(self._dir))

    def delete_stream(self, name: str) -> None:
        path = self._path(name)
        if os.path.exists(path):
            os.remove(path)

    def tamper_stream(self, name: str, offset: int, data: bytes) -> None:
        with open(self._path(name), "r+b") as f:
            f.seek(offset)
            f.write(data)
