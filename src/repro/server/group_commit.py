"""Group commit: one log flush amortized over N transactions.

``ChunkStore.commit`` holds the store lock end-to-end and (by default)
flushes the untrusted store before returning — correct, durable, and the
dominant cost of small transactions.  When many sessions commit
concurrently, serializing those flushes wastes exactly the time group
commit recovers: the **first** arriving committer becomes the *leader*,
drains everything queued behind it, and issues a single chunk-store
commit (one log append span, one flush) on behalf of the whole batch.
Followers just wait for their entry's completion event.

Batches form naturally from contention: while the leader is inside
``ChunkStore.commit``, newly arriving committers enqueue; whoever arrives
first after the leader resigns becomes the next leader and drains the
accumulated queue.  Under a single session the queue never holds more
than one entry and behavior degenerates to exactly the old per-commit
path — group commit costs nothing when there is nothing to amortize.

Correctness leans on two existing properties:

* **Disjoint write sets.**  Transactions hold exclusive locks on every
  object they write until *after* their commit returns (2PL shrink phase
  in ``Transaction.commit``'s finally), so two entries in one batch can
  never write the same chunk.  ``_validate_operations``'s duplicate-write
  preflight remains as defense in depth: if a merged batch fails its
  preflight, the leader falls back to committing each entry separately,
  so a poison entry only fails its own transaction.
* **Atomicity is inherited, not weakened.**  A merged batch is one
  chunk-store commit: either every transaction in it becomes durable or
  none does.  That is *stronger* than the per-transaction contract the
  callers asked for, and recovery needs no changes.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro import obs
from repro.chunkstore.store import ChunkStore
from repro.errors import ChunkStoreError


class _Entry:
    """One transaction's commit request riding in the queue."""

    __slots__ = ("ops", "done", "error", "batch_size")

    def __init__(self, ops: List[object]) -> None:
        self.ops = ops
        self.done = threading.Event()
        self.error: Optional[BaseException] = None
        #: size of the batch this entry was committed in (introspection)
        self.batch_size = 0


class GroupCommitter:
    """Leader/follower commit batching over one :class:`ChunkStore`."""

    def __init__(
        self,
        chunks: ChunkStore,
        max_batch: int = 64,
        on_commit: Optional[Callable[[Set[int]], None]] = None,
    ) -> None:
        self.chunks = chunks
        #: largest number of transactions merged into one store commit
        self.max_batch = max(1, max_batch)
        #: called after each durable batch with the set of partition ids
        #: it touched (the server invalidates snapshots through this)
        self.on_commit = on_commit
        self._mutex = threading.Lock()
        self._queue: List[_Entry] = []
        self._leader_active = False
        # -- tallies ---------------------------------------------------
        self.batches = 0
        self.txs_committed = 0
        self.largest_batch = 0
        self.fallbacks = 0

    # -- the public seam (Transaction.commit routes here) -------------------

    def commit(self, ops: Sequence[object]) -> None:
        """Commit ``ops`` durably, possibly merged with concurrent calls.

        Blocks until this request's operations are durable (or failed);
        raises exactly what ``ChunkStore.commit`` would have raised for
        them."""
        entry = _Entry(list(ops))
        lead = False
        with self._mutex:
            self._queue.append(entry)
            if not self._leader_active:
                self._leader_active = True
                lead = True
        if lead:
            self._lead()
        entry.done.wait()
        if entry.error is not None:
            raise entry.error

    # -- leader duty ---------------------------------------------------------

    def _lead(self) -> None:
        while True:
            with self._mutex:
                if not self._queue:
                    self._leader_active = False
                    return
                batch = self._queue[: self.max_batch]
                del self._queue[: self.max_batch]
            self._commit_batch(batch)

    def _commit_batch(self, batch: List[_Entry]) -> None:
        merged = [op for entry in batch for op in entry.ops]
        try:
            with obs.span(
                "group_commit", txs=len(batch), ops=len(merged)
            ), obs.time_block("server.group_commit"):
                self.chunks.commit(merged)
        except ChunkStoreError:
            # The merged batch failed its preflight (e.g. an entry with an
            # oversized chunk, or — despite 2PL — overlapping write sets).
            # Retry each entry alone so only the poison entry fails.
            self.fallbacks += 1
            obs.add("server.group_commit_fallbacks")
            self._commit_singly(batch)
            return
        except BaseException as exc:
            # a mid-commit failure (crash injection, device death) fails
            # the whole batch; the store is now in its failed state and
            # every waiter must hear about it
            for entry in batch:
                entry.error = exc
                entry.done.set()
            return
        self.batches += 1
        self.txs_committed += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        obs.add("server.group_commits")
        obs.add("server.group_commit_txs", len(batch))
        if self.on_commit is not None:
            touched = {
                op.partition for op in merged if hasattr(op, "partition")
            }
            self.on_commit(touched)
        for entry in batch:
            entry.batch_size = len(batch)
            entry.done.set()

    def _commit_singly(self, batch: List[_Entry]) -> None:
        for entry in batch:
            try:
                self.chunks.commit(entry.ops)
            except BaseException as exc:
                entry.error = exc
            else:
                self.batches += 1
                self.txs_committed += 1
                self.largest_batch = max(self.largest_batch, 1)
                obs.add("server.group_commits")
                obs.add("server.group_commit_txs", 1)
                if self.on_commit is not None:
                    self.on_commit(
                        {
                            op.partition
                            for op in entry.ops
                            if hasattr(op, "partition")
                        }
                    )
            finally:
                entry.batch_size = 1
                entry.done.set()

    # -- introspection -------------------------------------------------------

    def mean_batch_size(self) -> float:
        return self.txs_committed / self.batches if self.batches else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "batches": self.batches,
            "txs_committed": self.txs_committed,
            "mean_batch_size": round(self.mean_batch_size(), 3),
            "largest_batch": self.largest_batch,
            "fallbacks": self.fallbacks,
        }
