"""In-memory state of an open partition.

A :class:`PartitionState` pairs a partition's decoded leader payload with
instantiated (keyed) cipher and hash objects, and manages *allocation*.

Allocation state is split in two, which is the key to crash-correct
bookkeeping:

* the **committed view** lives in the leader payload (``next_rank``,
  ``free_ranks``) and changes only when a commit (or recovery roll-forward)
  applies chunk writes and deallocations — deterministically, from the log
  alone;
* the **volatile view** (``_alloc_pool``, ``_alloc_next``, ``pending_ranks``)
  tracks ranks handed out by ``allocate`` that have not been committed.
  It is never persisted: allocation "is not persistent until the chunk is
  written" (§4.4), so allocated-but-unwritten ranks return to the free
  pool automatically on restart.

When a write commits a rank beyond the committed high-water mark, the
skipped ranks become members of the committed free set ("holes").  Ranks
that are merely pending fall in that category too — harmless, because the
volatile allocator never hands them out twice, and a later commit of such
a rank removes it from the free set again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.chunkstore.leader import LeaderPayload
from repro.crypto.cipher import Cipher
from repro.crypto.hashing import HashFunction
from repro.crypto.registry import KEY_SIZES, make_cipher, make_hash
from repro.errors import ChunkNotAllocatedError


@dataclass
class PartitionState:
    """Volatile handle on one partition (including the system partition)."""

    pid: int
    payload: LeaderPayload
    cipher: Cipher
    hash: HashFunction
    #: leader payload changed since the leader chunk was last written
    leader_dirty: bool = False
    #: ranks allocated but not yet committed (volatile, §4.4)
    pending_ranks: Set[int] = field(default_factory=set)
    _alloc_pool: Set[int] = field(default_factory=set)
    _alloc_next: int = 0

    @classmethod
    def open(
        cls, pid: int, payload: LeaderPayload, key_override: Optional[bytes] = None
    ) -> "PartitionState":
        """Instantiate crypto from the leader payload.

        ``key_override`` supplies the system partition's key, which is
        derived from the secret store rather than stored in any leader
        (the root of the cipher-link path, §5.2).
        """
        key = key_override if key_override is not None else payload.key
        state = cls(
            pid=pid,
            payload=payload,
            cipher=make_cipher(payload.cipher_name, key),
            hash=make_hash(payload.hash_name),
        )
        state.reset_allocator()
        return state

    def reset_allocator(self) -> None:
        """Resynchronise the volatile allocator with the committed view
        (at open, and after recovery roll-forward)."""
        self.pending_ranks = set()
        self._alloc_pool = set(self.payload.free_ranks)
        self._alloc_next = self.payload.next_rank

    # -- allocation ------------------------------------------------------------

    def allocate_rank(self) -> int:
        """Hand out a data rank (volatile until the chunk is committed)."""
        if self._alloc_pool:
            rank = self._alloc_pool.pop()
        else:
            rank = self._alloc_next
            self._alloc_next += 1
        self.pending_ranks.add(rank)
        return rank

    def allocate_specific(self, rank: int) -> None:
        """Reserve a *specific* rank (volatile until committed); no-op if
        the rank is already allocated or written."""
        if rank in self.pending_ranks or self.is_committed_written(rank):
            return
        if rank in self._alloc_pool:
            self._alloc_pool.remove(rank)
        elif rank >= self._alloc_next:
            for hole in range(self._alloc_next, rank):
                self._alloc_pool.add(hole)
            self._alloc_next = rank + 1
        self.pending_ranks.add(rank)

    def is_committed_written(self, rank: int) -> bool:
        return rank < self.payload.next_rank and rank not in self.payload.free_ranks

    def require_allocated(self, rank: int) -> None:
        if rank in self.pending_ranks or self.is_committed_written(rank):
            return
        raise ChunkNotAllocatedError(f"chunk {self.pid}:0.{rank} is not allocated")

    # -- committed-view transitions (called by commit and by recovery) ---------

    def apply_committed_write(self, rank: int) -> None:
        """A write of ``rank`` committed; make the allocation durable."""
        self.pending_ranks.discard(rank)
        self.payload.free_ranks.discard(rank)
        if rank >= self.payload.next_rank:
            for hole in range(self.payload.next_rank, rank):
                self.payload.free_ranks.add(hole)
            self.payload.next_rank = rank + 1
        self._alloc_next = max(self._alloc_next, self.payload.next_rank)
        self.leader_dirty = True

    def apply_committed_dealloc(self, rank: int) -> None:
        """A deallocation of a previously-written ``rank`` committed."""
        self.pending_ranks.discard(rank)
        self.payload.free_ranks.add(rank)
        self._alloc_pool.add(rank)
        self.leader_dirty = True

    def cancel_pending(self, rank: int) -> None:
        """Deallocate a rank that was allocated but never written —
        purely volatile, nothing reaches the log."""
        self.pending_ranks.discard(rank)
        self._alloc_pool.add(rank)


def generate_partition_key(cipher_name: str) -> bytes:
    """A fresh random key sized for ``cipher_name``."""
    import os

    size = KEY_SIZES[cipher_name]
    return os.urandom(size) if size else b""
