"""``repro.obs`` — zero-dependency observability: spans, metrics, events.

One consistent instrumentation seam for the whole stack (PAPER §9 needs
per-layer cost attribution; raw counters alone cannot give it):

* :mod:`repro.obs.trace` — nestable timing spans in a bounded ring,
  off by default and a shared no-op object when off;
* :mod:`repro.obs.metrics` — named counters plus log-scale latency
  histograms (p50/p95/p99) that are cheap enough to stay on;
* :mod:`repro.obs.events` — a structured log of rare-but-critical
  transitions (quarantine, repair, deadlock broken, recovery replay,
  cache invalidation) that harnesses assert against.

The facade re-exports the hot helpers so instrumented code reads as
``obs.span("commit")``, ``obs.observe("chunkstore.read", dt)``,
``obs.emit("quarantine", chunk=...)``.  ``suspend()`` turns the whole
layer into no-ops for overhead baselines; ``reset()`` clears all state
between tests or bench phases.

Metric and event names are catalogued in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs import events, metrics, trace
from repro.obs.events import emit
from repro.obs.metrics import add, observe, time_block
from repro.obs.trace import span

__all__ = [
    "events",
    "metrics",
    "trace",
    "emit",
    "add",
    "observe",
    "time_block",
    "span",
    "enable_tracing",
    "disable_tracing",
    "suspend",
    "reset",
    "snapshot",
]


def enable_tracing(capacity=None) -> None:
    trace.enable(capacity)


def disable_tracing() -> None:
    trace.disable()


def snapshot() -> dict:
    """Everything at once: metric counters/histograms + event counts."""
    snap = metrics.snapshot()
    snap["events"] = events.counts()
    return snap


def reset() -> None:
    """Clear spans, metrics, and events (tracing on/off state is kept)."""
    trace.reset()
    metrics.reset()
    events.reset()


@contextmanager
def suspend() -> Iterator[None]:
    """No-op the entire layer for the duration (overhead baselines)."""
    was_tracing = trace._enabled
    trace._enabled = False
    metrics._suspended = True
    events._suspended = True
    try:
        yield
    finally:
        trace._enabled = was_tracing
        metrics._suspended = False
        events._suspended = False
