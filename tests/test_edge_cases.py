"""Edge cases across layers: segment boundaries, multi-checkpoint
histories, mixed commits, cleaner+recovery interplay, collection and
transaction corners."""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.errors import (
    ChunkNotAllocatedError,
    ChunkStoreError,
    CrashError,
    ObjectNotFoundError,
)
from tests.conftest import make_config, make_platform


def fresh(store, cipher="ctr-sha256"):
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name=cipher, hash_name="sha1")])
    return pid


class TestSegmentBoundaries:
    def test_chunk_sizes_around_segment_capacity(self):
        """Versions close to the per-segment maximum force jumps at every
        plausible boundary offset."""
        platform = make_platform(size=4 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config(segment_size=8 * 1024))
        pid = fresh(store)
        written = {}
        for size in (7000, 7400, 7500, 7600, 100, 7000):
            rank = store.allocate_chunk(pid)
            data = bytes([size % 251]) * size
            store.commit([ops.WriteChunk(pid, rank, data)])
            written[rank] = data
        for rank, data in written.items():
            assert store.read_chunk(pid, rank) == data
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for rank, data in written.items():
            assert reopened.read_chunk(pid, rank) == data

    def test_commit_set_spanning_segments(self):
        """One commit larger than a segment spans a jump; it must stay
        atomic across crash+recovery."""
        platform = make_platform(size=4 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config(segment_size=8 * 1024))
        pid = fresh(store)
        ranks = [store.allocate_chunk(pid) for _ in range(6)]
        store.commit([ops.WriteChunk(pid, r, bytes([r]) * 3000) for r in ranks])
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for r in ranks:
            assert reopened.read_chunk(pid, r) == bytes([r]) * 3000

    def test_torn_spanning_commit_fully_discarded(self):
        platform = make_platform(size=4 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config(segment_size=8 * 1024))
        pid = fresh(store)
        base = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, base, b"base")])
        ranks = [store.allocate_chunk(pid) for _ in range(6)]
        platform.injector.arm("commit.before_flush")
        with pytest.raises(CrashError):
            store.commit([ops.WriteChunk(pid, r, bytes(3000)) for r in ranks])
        platform.injector.disarm()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(pid, base) == b"base"
        for r in ranks:
            with pytest.raises(Exception):
                reopened.read_chunk(pid, r)


class TestMultiCheckpointHistories:
    @pytest.mark.parametrize("mode", ["counter", "direct"])
    def test_many_checkpoints_then_recover(self, mode):
        platform = make_platform()
        store = ChunkStore.format(platform, make_config(validation_mode=mode))
        pid = fresh(store)
        expected = {}
        for era in range(5):
            for i in range(10):
                rank = store.allocate_chunk(pid)
                expected[rank] = f"era{era}-{i}".encode()
                store.commit([ops.WriteChunk(pid, rank, expected[rank])])
            store.checkpoint()
        # a few post-checkpoint commits form the residual log
        for i in range(3):
            rank = store.allocate_chunk(pid)
            expected[rank] = f"residual-{i}".encode()
            store.commit([ops.WriteChunk(pid, rank, expected[rank])])
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for rank, value in expected.items():
            assert reopened.read_chunk(pid, rank) == value

    def test_checkpoint_with_nothing_dirty(self, store):
        store.checkpoint()
        store.checkpoint()  # idempotent, no dirty state

    def test_auto_checkpoint_threshold(self):
        platform = make_platform()
        store = ChunkStore.format(
            platform, make_config(checkpoint_dirty_threshold=10)
        )
        pid = fresh(store)
        checkpoints_before = platform.injector.counts.get("checkpoint.begin", 0)
        for i in range(40):
            rank = store.allocate_chunk(pid)
            store.commit([ops.WriteChunk(pid, rank, b"x")])
        checkpoints = platform.injector.counts.get("checkpoint.begin", 0)
        assert checkpoints > checkpoints_before, "dirty threshold must trigger"
        assert store.cache.dirty_count() < 40


class TestMixedCommits:
    def test_create_write_dealloc_across_partitions_one_commit(self, store):
        pid_a = fresh(store)
        rank_a = store.allocate_chunk(pid_a)
        store.commit([ops.WriteChunk(pid_a, rank_a, b"to be deleted")])
        pid_b = store.allocate_partition()
        store.commit(
            [
                ops.WritePartition(pid_b, cipher_name="null", hash_name="sha1"),
                ops.WriteChunk(pid_b, 0, b"fresh data"),
                ops.DeallocateChunk(pid_a, rank_a),
            ]
        )
        assert store.read_chunk(pid_b, 0) == b"fresh data"
        with pytest.raises(ChunkNotAllocatedError):
            store.read_chunk(pid_a, rank_a)

    def test_mixed_commit_survives_recovery(self, platform):
        store = ChunkStore.format(platform, make_config())
        pid_a = fresh(store)
        rank_a = store.allocate_chunk(pid_a)
        store.commit([ops.WriteChunk(pid_a, rank_a, b"x")])
        pid_b = store.allocate_partition()
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid_a)])
        store.commit(
            [
                ops.WritePartition(pid_b, cipher_name="null", hash_name="sha1"),
                ops.WriteChunk(pid_b, 0, b"b data"),
                ops.DeallocatePartition(snap),
            ]
        )
        platform.reboot()
        reopened = ChunkStore.open(platform)
        assert reopened.read_chunk(pid_b, 0) == b"b data"
        assert not reopened.partition_exists(snap)
        assert reopened.read_chunk(pid_a, rank_a) == b"x"

    def test_copy_then_write_source_same_commit_forbidden_pattern_ok(self, store):
        """Copying and then writing the source in one commit: the write
        lands after the copy (ops are ordered partition-ops first), so
        the snapshot sees the pre-commit state."""
        pid = fresh(store)
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"before")])
        snap = store.allocate_partition()
        store.commit(
            [
                ops.WriteChunk(pid, rank, b"after"),
                ops.CopyPartition(snap, pid),
            ]
        )
        assert store.read_chunk(snap, rank) == b"before"
        assert store.read_chunk(pid, rank) == b"after"


class TestCleanerDirectMode:
    def test_cleaning_and_recovery_in_direct_mode(self):
        platform = make_platform(size=1024 * 1024)
        store = ChunkStore.format(
            platform,
            make_config(validation_mode="direct", segment_size=16 * 1024),
        )
        pid = fresh(store)
        ranks = [store.allocate_chunk(pid) for _ in range(8)]
        store.commit([ops.WriteChunk(pid, r, bytes(400)) for r in ranks])
        for round_no in range(25):
            for rank in ranks:
                store.commit(
                    [ops.WriteChunk(pid, rank, bytes([round_no]) * 400)]
                )
        cleaned = store.clean(max_segments=100)
        assert cleaned > 0
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for rank in ranks:
            assert reopened.read_chunk(pid, rank) == bytes([24]) * 400


class TestCollectionCorners:
    def build(self):
        from repro.collection import CollectionStore, KeyFunctionRegistry, field_key
        from repro.objectstore import ObjectStore

        platform = make_platform(size=16 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config(segment_size=32 * 1024))
        objects = ObjectStore(store)
        pid = objects.create_partition(cipher_name="null", hash_name="sha1")
        registry = KeyFunctionRegistry()
        registry.register("k", field_key("k"))
        return objects, CollectionStore(objects, pid, registry)

    def test_recreate_dropped_collection(self):
        objects, collections = self.build()
        with objects.transaction() as tx:
            coll = collections.create_collection(tx, "c")
            collections.add_index(tx, coll, "by_k", "k")
            collections.insert(tx, coll, {"k": 1})
            collections.drop_collection(tx, "c")
            coll2 = collections.create_collection(tx, "c")
            collections.add_index(tx, coll2, "by_k", "k")
            collections.insert(tx, coll2, {"k": 2})
        with objects.transaction() as tx:
            coll = collections.open_collection(tx, "c")
            assert [tx.get(r)["k"] for r in collections.exact(tx, coll, "by_k", 2)] == [2]
            assert collections.exact(tx, coll, "by_k", 1) == []

    def test_object_shared_between_collections(self):
        objects, collections = self.build()
        with objects.transaction() as tx:
            a = collections.create_collection(tx, "a")
            b = collections.create_collection(tx, "b")
            ref = collections.insert(tx, a, {"k": 7})
            collections.insert_ref(tx, b, ref, tx.get(ref))
            assert collections.contains(tx, a, ref)
            assert collections.contains(tx, b, ref)
            # removing from one collection (keeping the object) leaves the
            # other membership intact
            collections.remove(tx, a, ref, delete_object=False)
            assert not collections.contains(tx, a, ref)
            assert collections.contains(tx, b, ref)
            assert tx.get(ref) == {"k": 7}


class TestTransactionCorners:
    def build(self):
        from repro.objectstore import ObjectStore

        platform = make_platform()
        store = ChunkStore.format(platform, make_config())
        objects = ObjectStore(store)
        pid = objects.create_partition(cipher_name="null", hash_name="sha1")
        return objects, pid

    def test_delete_object_created_in_same_tx(self):
        objects, pid = self.build()
        with objects.transaction() as tx:
            ref = tx.create(pid, "ephemeral")
            tx.delete(ref)
        with pytest.raises(ObjectNotFoundError):
            objects.read_committed(ref)

    def test_create_update_delete_chain_in_one_tx(self):
        objects, pid = self.build()
        with objects.transaction() as tx:
            ref = tx.create(pid, "v1")
            tx.update(ref, "v2")
            assert tx.get(ref) == "v2"
            tx.delete(ref)
            with pytest.raises(ObjectNotFoundError):
                tx.get(ref)

    def test_double_commit_rejected(self):
        from repro.errors import TransactionError

        objects, pid = self.build()
        tx = objects.transaction()
        tx.create(pid, "x")
        tx.commit()
        with pytest.raises(TransactionError):
            tx.commit()

    def test_abort_is_idempotent(self):
        objects, pid = self.build()
        tx = objects.transaction()
        tx.create(pid, "x")
        tx.abort()
        tx.abort()

    def test_empty_transaction_commits(self):
        objects, pid = self.build()
        with objects.transaction():
            pass
