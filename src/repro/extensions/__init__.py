"""Extensions beyond the paper's core (§10 "Potential Extensions").

* :mod:`repro.extensions.paging` — *trusted paging*: encrypted, validated
  virtual-memory pages stored in the chunk store, for trusted programs
  whose volatile state outgrows the trusted processing environment.
* :mod:`repro.extensions.remote` — *untrusted storage on servers*: a
  round-trip-accounted remote untrusted store plus the batching
  optimisation the paper suggests.
* :mod:`repro.extensions.spill` — *steal buffer management*: transactions
  that evict dirty objects to trusted storage before commit, lifting the
  no-steal limitation for large transactions.
"""

from repro.extensions.paging import TrustedPager
from repro.extensions.remote import NetworkModel, RemoteUntrustedStore
from repro.extensions.spill import SpillingObjectStore

__all__ = [
    "TrustedPager",
    "RemoteUntrustedStore",
    "NetworkModel",
    "SpillingObjectStore",
]
