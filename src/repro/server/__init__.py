"""The concurrent serving layer: many client sessions, one trusted store.

The paper's object store assumes "only a few concurrent transactions"
(§7); the ROADMAP's north star is heavy multi-user traffic.  This package
bridges the two without touching the chunk store's single-lock discipline:

* :class:`~repro.server.group_commit.GroupCommitter` — batches
  concurrently-arriving transaction commits into one chunk-store commit
  (one log flush amortized over N transactions);
* :class:`~repro.server.snapshots.SnapshotManager` — hands readers
  refcounted MVCC snapshots built on the chunk store's frozen-leader
  snapshot machinery, so reads never block behind the commit path;
* :class:`~repro.server.server.TDBServer` /
  :class:`~repro.server.server.Session` — the threaded front end tying
  them together over one ``ChunkStore``/``ObjectStore``.
"""

from repro.server.group_commit import GroupCommitter
from repro.server.server import Session, TDBServer
from repro.server.snapshots import Snapshot, SnapshotManager

__all__ = [
    "GroupCommitter",
    "Session",
    "Snapshot",
    "SnapshotManager",
    "TDBServer",
]
