"""Cipher modes: CBC with PKCS#7 padding, and a SHA-256 counter stream.

``CbcCipher`` turns any :class:`~repro.crypto.cipher.BlockCipher` into a
whole-message :class:`~repro.crypto.cipher.Cipher`.  A random IV is
generated per message and prepended to the ciphertext.  When the block
cipher implements the bulk CBC hooks (``encrypt_cbc``/``decrypt_cbc``),
whole messages are dispatched to them; otherwise the generic per-block
loop runs.  Both paths produce byte-identical output for the same IV —
the on-disk format does not depend on which path ran.

``CtrStreamCipher`` is a keystream cipher built from SHA-256 in counter
mode: keystream block *i* = SHA-256(key ‖ nonce ‖ i).  Because hashlib runs
at C speed, this is the fast cipher option in a pure-Python build — the
analogue of the paper's "faster than DES" remark.  An 8-byte random nonce
is prepended to the ciphertext; the plaintext length is preserved.  The
keystream is assembled with ``b"".join`` over a cloned hash prefix and
XORed against the payload as one big-int operation; ``bulk=False`` keeps
the original per-byte generator path for benchmarking the fallback.
"""

from __future__ import annotations

import hashlib

from repro.bench.profiler import record_metric
from repro.crypto.cipher import BlockCipher, Cipher, random_iv


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` (always adds ≥1 byte)."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip PKCS#7 padding; raises ``ValueError`` on malformed padding."""
    if not data or len(data) % block_size:
        raise ValueError("invalid padded length")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise ValueError("invalid padding byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("corrupt padding")
    return data[:-pad_len]


class CbcCipher(Cipher):
    """CBC mode over a block cipher, PKCS#7 padded, random IV prepended.

    ``bulk=False`` forces the generic per-block loop even when the block
    cipher offers bulk hooks (for benchmarks and equivalence tests).
    """

    def __init__(self, block_cipher: BlockCipher, name: str, bulk: bool = True) -> None:
        super().__init__()
        self._bc = block_cipher
        self.name = name
        self._bulk_enc = getattr(block_cipher, "encrypt_cbc", None) if bulk else None
        self._bulk_dec = getattr(block_cipher, "decrypt_cbc", None) if bulk else None

    def encrypt(self, plaintext: bytes) -> bytes:
        bs = self._bc.block_size
        iv = random_iv(bs)
        padded = pkcs7_pad(plaintext, bs)
        counters = self.counters
        counters.encrypt_calls += 1
        counters.bytes_encrypted += len(plaintext)
        record_metric("bytes encrypted", len(plaintext))
        if self._bulk_enc is not None:
            counters.bulk_calls += 1
            return iv + self._bulk_enc(iv, padded)
        counters.fallback_calls += 1
        out = bytearray(iv)
        prev = iv
        encrypt_block = self._bc.encrypt_block
        for i in range(0, len(padded), bs):
            block = bytes(a ^ b for a, b in zip(padded[i : i + bs], prev))
            prev = encrypt_block(block)
            out += prev
        return bytes(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        bs = self._bc.block_size
        if len(ciphertext) < 2 * bs or len(ciphertext) % bs:
            raise ValueError("ciphertext length invalid for CBC")
        if not isinstance(ciphertext, bytes):
            # bytes-like input (memoryview spans from whole-segment
            # reads): slices below must be real bytes for the block
            # primitives and the bulk backends
            ciphertext = bytes(ciphertext)
        counters = self.counters
        counters.decrypt_calls += 1
        if self._bulk_dec is not None:
            counters.bulk_calls += 1
            padded = self._bulk_dec(ciphertext[:bs], ciphertext[bs:])
            plain = pkcs7_unpad(padded, bs)
        else:
            counters.fallback_calls += 1
            prev = ciphertext[:bs]
            out = bytearray()
            decrypt_block = self._bc.decrypt_block
            for i in range(bs, len(ciphertext), bs):
                block = ciphertext[i : i + bs]
                dec = decrypt_block(block)
                out += bytes(a ^ b for a, b in zip(dec, prev))
                prev = block
            plain = pkcs7_unpad(bytes(out), bs)
        counters.bytes_decrypted += len(plain)
        record_metric("bytes decrypted", len(plain))
        return plain

    def ciphertext_size(self, plaintext_size: int) -> int:
        bs = self._bc.block_size
        padded = plaintext_size + (bs - plaintext_size % bs)
        return bs + padded  # IV + padded payload


class CtrStreamCipher(Cipher):
    """SHA-256 counter-mode keystream cipher (length-preserving + nonce)."""

    name = "ctr-sha256"

    _NONCE_SIZE = 8
    _BLOCK = 32  # sha256 digest size

    def __init__(self, key: bytes, bulk: bool = True) -> None:
        super().__init__()
        if not key:
            raise ValueError("ctr-sha256 requires a non-empty key")
        self._key = bytes(key)
        self._bulk = bulk

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        if not self._bulk:
            out = bytearray()
            counter = 0
            prefix = self._key + nonce
            while len(out) < length:
                out += hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
                counter += 1
            return bytes(out[:length])
        # hash the fixed key‖nonce prefix once and clone per counter;
        # sha256(p).copy().update(c) digests exactly sha256(p ‖ c)
        base = hashlib.sha256(self._key + nonce)
        pieces = []
        append = pieces.append
        for counter in range((length + self._BLOCK - 1) // self._BLOCK):
            clone = base.copy()
            clone.update(counter.to_bytes(8, "big"))
            append(clone.digest())
        return b"".join(pieces)[:length]

    def _xor(self, data: bytes, stream: bytes) -> bytes:
        if self._bulk:
            self.counters.bulk_calls += 1
            value = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
            return value.to_bytes(len(data), "big")
        self.counters.fallback_calls += 1
        return bytes(a ^ b for a, b in zip(data, stream))

    def encrypt(self, plaintext: bytes) -> bytes:
        nonce = random_iv(self._NONCE_SIZE)
        stream = self._keystream(nonce, len(plaintext))
        self.counters.encrypt_calls += 1
        self.counters.bytes_encrypted += len(plaintext)
        record_metric("bytes encrypted", len(plaintext))
        return nonce + self._xor(plaintext, stream)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < self._NONCE_SIZE:
            raise ValueError("ciphertext shorter than nonce")
        # accepts bytes-like input: the nonce feeds key‖nonce hashing and
        # must be bytes; the body only meets len() and int.from_bytes,
        # both of which take memoryview spans directly
        nonce = bytes(ciphertext[: self._NONCE_SIZE])
        body = ciphertext[self._NONCE_SIZE :]
        stream = self._keystream(nonce, len(body))
        self.counters.decrypt_calls += 1
        self.counters.bytes_decrypted += len(body)
        record_metric("bytes decrypted", len(body))
        return self._xor(body, stream)

    def ciphertext_size(self, plaintext_size: int) -> int:
        return self._NONCE_SIZE + plaintext_size
