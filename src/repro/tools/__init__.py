"""Operational tools: offline inspection of TDB stores."""
