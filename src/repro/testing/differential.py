"""Model-based differential testing of the chunk store.

A :class:`DifferentialRunner` drives seeded random operation sequences —
chunk writes and deallocations, partition creates/copies/drops,
checkpoints, cleaning, crash + recovery, clean reopen — simultaneously
against the real :class:`~repro.chunkstore.store.ChunkStore` and the plain
:class:`~repro.testing.model.ReferenceModel`, and compares their full
visible state after every state-changing operation and after every
crash + recovery.

Failures are reproducible and shrinkable:

* **seed replay** — an op sequence is a pure function of its seed, so a
  failing seed is a complete bug report (`make differential SEED=n`);
* **prefix shrinking** — the sequence is first truncated at the failing
  op, then greedily minimised (ddmin-style chunk removal) while the
  failure persists; any *sub*-sequence remains executable because ops
  that are invalid against the model state are skipped identically by
  both sides.

Operations address partitions through small integer *slots* rather than
raw partition ids, so removing the op that created a partition simply
turns later ops on that slot into no-ops instead of hard errors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.chunkstore import ChunkStore, StoreConfig, ops
from repro.errors import TDBError
from repro.platform.trusted_platform import TrustedPlatform
from repro.testing.model import ReferenceModel, diff_states, observe_store

#: cipher/hash assigned to created partitions, cycled by the op's tag
PARTITION_FLAVOURS = (("null", "sha1"), ("ctr-sha256", "sha1"))


@dataclass(frozen=True)
class Op:
    """One abstract operation; ``slot``/``src`` name partition slots."""

    kind: str
    slot: int = 0
    src: int = 0
    rank: int = 0
    tag: int = 0

    def __str__(self) -> str:
        if self.kind == "create":
            return f"create(slot={self.slot}, flavour={self.tag})"
        if self.kind == "copy":
            return f"copy(slot={self.slot}, src={self.src})"
        if self.kind == "drop":
            return f"drop(slot={self.slot})"
        if self.kind == "write":
            return f"write(slot={self.slot}, rank={self.rank}, tag={self.tag})"
        if self.kind == "dealloc":
            return f"dealloc(slot={self.slot}, rank={self.rank})"
        return f"{self.kind}()"


def op_value(op: Op) -> bytes:
    """The deterministic payload a ``write`` op stores (a function of the
    op alone, so shrunk sequences keep their payloads)."""
    return f"v{op.slot}.{op.rank}.{op.tag}:".encode() * (1 + op.tag % 4)


@dataclass
class DiffFailure:
    """A divergence between the store and the reference model."""

    mode: str
    op_index: int
    reason: str
    ops: List[Op]
    seed: Optional[int] = None
    #: num_ops the failing seed was generated with (repro needs it even
    #: after the sequence itself has been shrunk)
    gen_ops: Optional[int] = None

    def repro_line(self) -> str:
        if self.seed is not None:
            length = self.gen_ops if self.gen_ops is not None else len(self.ops)
            return (
                f"make differential MODE={self.mode} SEED={self.seed} "
                f"OPS={length}"
            )
        return f"# replay the shrunk sequence below (mode={self.mode})"

    def describe(self) -> str:
        lines = [
            f"differential failure (mode={self.mode}) at op "
            f"{self.op_index}: {self.reason}",
            f"repro: {self.repro_line()}",
            "sequence:",
        ]
        lines += [f"  [{i}] {op}" for i, op in enumerate(self.ops)]
        return "\n".join(lines)


class DifferentialRunner:
    """Drives the real store and the reference model in lockstep."""

    def __init__(
        self,
        mode: str = "counter",
        num_ops: int = 50,
        max_slots: int = 5,
        max_rank: int = 8,
        store_size: int = 2 * 1024 * 1024,
        config: Optional[StoreConfig] = None,
    ) -> None:
        self.mode = mode
        self.num_ops = num_ops
        self.max_slots = max_slots
        self.max_rank = max_rank
        self.store_size = store_size
        self.config = config

    def _make_config(self) -> StoreConfig:
        if self.config is not None:
            return self.config
        return StoreConfig(
            segment_size=16 * 1024,
            system_cipher="ctr-sha256",
            system_hash="sha1",
            validation_mode=self.mode,
            delta_ut=1,
            checkpoint_dirty_threshold=64,
        )

    # -- generation ------------------------------------------------------------

    def generate(self, seed: int) -> List[Op]:
        """A seeded op sequence, biased toward valid operations (a light
        planner mirrors the executor's skip rules)."""
        rng = random.Random(seed)
        live: Dict[int, set] = {}  # slot -> written ranks
        sequence: List[Op] = []
        kinds = (
            ["write"] * 34
            + ["dealloc"] * 10
            + ["create"] * 10
            + ["copy"] * 7
            + ["drop"] * 5
            + ["checkpoint"] * 8
            + ["crash"] * 8
            + ["reopen"] * 6
            + ["clean"] * 6
        )
        for i in range(self.num_ops):
            if not live:
                kind = "create"
            else:
                kind = rng.choice(kinds)
            if kind == "create":
                free = [s for s in range(self.max_slots) if s not in live]
                if not free:
                    kind = "write"
                else:
                    slot = rng.choice(free)
                    sequence.append(Op("create", slot=slot, tag=rng.randrange(16)))
                    live[slot] = set()
                    continue
            if kind == "copy":
                free = [s for s in range(self.max_slots) if s not in live]
                if not free or not live:
                    kind = "write"
                else:
                    slot = rng.choice(free)
                    src = rng.choice(sorted(live))
                    sequence.append(Op("copy", slot=slot, src=src))
                    live[slot] = set(live[src])
                    continue
            if kind == "drop":
                slot = rng.choice(sorted(live))
                sequence.append(Op("drop", slot=slot))
                del live[slot]
                continue
            if kind == "write":
                slot = rng.choice(sorted(live))
                rank = rng.randrange(self.max_rank)
                sequence.append(
                    Op("write", slot=slot, rank=rank, tag=rng.randrange(64))
                )
                live[slot].add(rank)
                continue
            if kind == "dealloc":
                slot = rng.choice(sorted(live))
                ranks = sorted(live[slot])
                rank = rng.choice(ranks) if ranks else rng.randrange(self.max_rank)
                sequence.append(Op("dealloc", slot=slot, rank=rank))
                live[slot].discard(rank)
                continue
            sequence.append(Op(kind))
        return sequence

    # -- execution -------------------------------------------------------------

    def execute(
        self, sequence: List[Op], seed: Optional[int] = None
    ) -> Optional[DiffFailure]:
        """Run ``sequence`` against a fresh store and model; returns the
        first divergence, or ``None`` if they agree throughout."""
        platform = TrustedPlatform.create_in_memory(untrusted_size=self.store_size)
        store = ChunkStore.format(platform, self._make_config())
        model = ReferenceModel()
        slots: Dict[int, int] = {}

        def live(slot: int) -> bool:
            return slot in slots and slots[slot] in model.partitions

        def fail(index: int, reason: str) -> DiffFailure:
            return DiffFailure(
                mode=self.mode,
                op_index=index,
                reason=reason,
                ops=list(sequence),
                seed=seed,
            )

        for index, op in enumerate(sequence):
            compare = True
            try:
                if op.kind == "create":
                    if live(op.slot):
                        continue
                    pid = store.allocate_partition()
                    cipher, hash_name = PARTITION_FLAVOURS[
                        op.tag % len(PARTITION_FLAVOURS)
                    ]
                    store.commit(
                        [
                            ops.WritePartition(
                                pid, cipher_name=cipher, hash_name=hash_name
                            )
                        ]
                    )
                    model.write_partition(pid)
                    slots[op.slot] = pid
                elif op.kind == "copy":
                    if live(op.slot) or not live(op.src):
                        continue
                    pid = store.allocate_partition()
                    store.commit([ops.CopyPartition(pid, slots[op.src])])
                    model.copy_partition(pid, slots[op.src])
                    slots[op.slot] = pid
                elif op.kind == "drop":
                    if not live(op.slot):
                        continue
                    pid = slots[op.slot]
                    store.commit([ops.DeallocatePartition(pid)])
                    removed = set(model.deallocate_partition(pid))
                    for slot, bound in list(slots.items()):
                        if bound in removed:
                            del slots[slot]
                elif op.kind == "write":
                    if not live(op.slot):
                        continue
                    pid = slots[op.slot]
                    data = op_value(op)
                    state = store._state(pid)
                    if not (
                        op.rank in state.pending_ranks
                        or state.is_committed_written(op.rank)
                    ):
                        state.allocate_specific(op.rank)
                    store.commit([ops.WriteChunk(pid, op.rank, data)])
                    model.write_chunk(pid, op.rank, data)
                elif op.kind == "dealloc":
                    if not live(op.slot):
                        continue
                    pid = slots[op.slot]
                    if op.rank not in model.partitions[pid].chunks:
                        continue
                    store.commit([ops.DeallocateChunk(pid, op.rank)])
                    model.deallocate_chunk(pid, op.rank)
                elif op.kind == "checkpoint":
                    store.checkpoint()
                    compare = False
                elif op.kind == "clean":
                    store.clean(max_segments=2)
                    compare = False
                elif op.kind == "crash":
                    platform.reboot()
                    store = ChunkStore.open(platform)
                elif op.kind == "reopen":
                    store.close()
                    store = ChunkStore.open(platform)
                else:
                    raise ValueError(f"unknown op kind {op.kind!r}")
            except TDBError as exc:
                return fail(
                    index, f"{op} raised {type(exc).__name__}: {exc}"
                )
            except Exception as exc:
                return fail(
                    index,
                    f"{op} raised non-TDB {type(exc).__name__}: {exc}",
                )
            if not compare:
                continue
            try:
                problems = diff_states(model.state(), observe_store(store))
            except TDBError as exc:
                return fail(
                    index,
                    f"observation after {op} raised "
                    f"{type(exc).__name__}: {exc}",
                )
            if problems:
                return fail(index, f"after {op}: " + "; ".join(problems))
        return None

    def run_seed(self, seed: int) -> Optional[DiffFailure]:
        failure = self.execute(self.generate(seed), seed=seed)
        if failure is not None:
            failure.gen_ops = self.num_ops
        return failure

    def run(self, seeds: Iterable[int]) -> List[DiffFailure]:
        failures = []
        for seed in seeds:
            failure = self.run_seed(seed)
            if failure is not None:
                failures.append(failure)
        return failures

    # -- shrinking -------------------------------------------------------------

    def shrink(self, failure: DiffFailure) -> DiffFailure:
        """Minimise a failing sequence: truncate at the failing op, then
        remove chunks of decreasing size while the failure persists."""
        current = list(failure.ops[: failure.op_index + 1])
        confirmed = self.execute(current)
        if confirmed is None:  # not reproducible from the prefix alone
            return failure
        current = current[: confirmed.op_index + 1]
        confirmed.ops = list(current)
        confirmed.seed = failure.seed
        confirmed.gen_ops = failure.gen_ops
        last = confirmed

        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            index = 0
            while index < len(current):
                candidate = current[:index] + current[index + chunk :]
                result = self.execute(candidate) if candidate else None
                if result is not None:
                    current = candidate[: result.op_index + 1]
                    result.ops = list(current)
                    result.seed = failure.seed
                    result.gen_ops = failure.gen_ops
                    last = result
                else:
                    index += chunk
            chunk //= 2
        return last
