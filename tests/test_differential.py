"""Model-based differential testing of the chunk store.

Tier 1 drives ≥20 seeded 50-op sequences (10 per validation mode) against
the real store and the reference model, comparing the full visible state
after every commit and after every crash + recovery.  A deliberately
injected store bug must be caught and shrunk to a ≤10-op repro.  The
slow-marked run widens both the seed range and the sequence length for
nightly use.
"""

import pytest

from repro.chunkstore.store import ChunkStore
from repro.testing.differential import DifferentialRunner, Op

MODES = ["counter", "direct"]


def _assert_no_failures(runner, failures):
    details = "\n".join(
        runner.shrink(failure).describe() for failure in failures
    )
    assert not failures, f"store diverged from the model:\n{details}"


@pytest.mark.parametrize("mode", MODES)
def test_store_matches_model(mode):
    """10 seeds × 50 ops per mode: the store and the reference model agree
    after every commit, checkpoint/clean cycle, crash, and reopen."""
    runner = DifferentialRunner(mode=mode, num_ops=50)
    _assert_no_failures(runner, runner.run(range(10)))


@pytest.mark.parametrize("mode", MODES)
def test_sequences_exercise_all_op_kinds(mode):
    """The generator's bias must not starve any operation kind across the
    tier-1 seed range, or the differential coverage silently shrinks."""
    runner = DifferentialRunner(mode=mode, num_ops=50)
    kinds = {op.kind for seed in range(10) for op in runner.generate(seed)}
    assert kinds == {
        "create",
        "copy",
        "drop",
        "write",
        "dealloc",
        "checkpoint",
        "clean",
        "crash",
        "reopen",
    }


def test_generation_is_deterministic():
    runner = DifferentialRunner(num_ops=50)
    assert runner.generate(7) == runner.generate(7)
    assert runner.generate(7) != runner.generate(8)


def test_subsequences_stay_executable():
    """Slot-based ops referencing never-created partitions are skipped by
    both sides, so arbitrary subsequences (as produced by shrinking) run
    without hard errors."""
    runner = DifferentialRunner(num_ops=10)
    orphan = [
        Op("write", slot=2, rank=1, tag=5),
        Op("dealloc", slot=4, rank=0),
        Op("drop", slot=1),
        Op("copy", slot=0, src=3),
        Op("crash"),
        Op("checkpoint"),
    ]
    assert runner.execute(orphan) is None


def test_injected_bug_caught_and_shrunk(monkeypatch):
    """The acceptance gate for the runner itself: a store bug (chunk
    deallocation silently dropped) is detected, the failing sequence
    shrinks to ≤10 ops, the shrunk repro still fails with the bug and
    passes without it."""
    runner = DifferentialRunner(mode="counter", num_ops=50)

    monkeypatch.setattr(
        ChunkStore, "_apply_chunk_dealloc", lambda self, cid: None
    )
    caught = None
    for seed in range(20):
        caught = runner.run_seed(seed)
        if caught is not None:
            break
    assert caught is not None, "injected dealloc bug escaped 20 seeds"
    shrunk = runner.shrink(caught)
    assert len(shrunk.ops) <= 10, shrunk.describe()
    assert "dealloc" in shrunk.reason
    still_fails = runner.execute(shrunk.ops)
    assert still_fails is not None, "shrunk repro no longer fails"

    monkeypatch.undo()
    assert runner.execute(shrunk.ops) is None, (
        "shrunk repro fails even without the injected bug"
    )


def test_injected_stale_read_bug_caught(monkeypatch):
    """A second, read-side bug class: a store that serves stale bytes for
    rewritten chunks diverges from the model at the rewrite commit."""
    real_write = ChunkStore._apply_chunk_write

    def first_write_wins(self, cid, *args, **kwargs):
        try:
            self._get_descriptor(cid)
            return  # drop updates to already-written chunks
        except Exception:
            pass
        return real_write(self, cid, *args, **kwargs)

    monkeypatch.setattr(ChunkStore, "_apply_chunk_write", first_write_wins)
    runner = DifferentialRunner(mode="counter", num_ops=50)
    caught = None
    for seed in range(20):
        caught = runner.run_seed(seed)
        if caught is not None:
            break
    assert caught is not None, "injected stale-write bug escaped 20 seeds"


def test_failure_repro_line_survives_shrinking(monkeypatch):
    monkeypatch.setattr(
        ChunkStore, "_apply_chunk_dealloc", lambda self, cid: None
    )
    runner = DifferentialRunner(mode="counter", num_ops=50)
    caught = None
    for seed in range(20):
        caught = runner.run_seed(seed)
        if caught is not None:
            break
    assert caught is not None
    shrunk = runner.shrink(caught)
    assert (
        shrunk.repro_line()
        == f"make differential MODE=counter SEED={caught.seed} OPS=50"
    )


@pytest.mark.slow
@pytest.mark.parametrize("mode", MODES)
def test_store_matches_model_deep(mode):
    """Nightly: 25 seeds × 80 ops per mode."""
    runner = DifferentialRunner(mode=mode, num_ops=80)
    _assert_no_failures(runner, runner.run(range(25)))
