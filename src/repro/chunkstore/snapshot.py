"""Lock-free MVCC snapshot views over the chunk store (§5.3 + ROADMAP).

``ChunkStore`` serializes everything behind one re-entrant lock — fine for
the paper's "only a few concurrent transactions", hostile to a server
whose readers would otherwise stall behind every group commit's log
flush.  A :class:`SnapshotView` is the escape hatch: an immutable,
self-contained read path over one partition's position map as of the
moment the view was opened, touching **no** chunk-store state after
construction.  Readers holding a view proceed while commits, checkpoints,
and flushes run — the "snapshot reads never block the commit path"
property the serving layer builds on.

Why this is sound
=================

* The store is log-structured: committed versions are never overwritten
  in place.  New commits and checkpoints append *new* extents; the
  extents reachable from the view's frozen root descriptor stay exactly
  as written.
* The only component that relocates or reuses live extents is the
  cleaner — so the store counts open views (``_snapshot_pins``) and the
  cleaner politely declines to run while any exist (the classic MVCC
  vacuum tradeoff; see ``Cleaner.clean_one``).
* The view validates everything it reads against its frozen root hash
  with its **own** cipher/hash/codec instances (crypto objects are not
  shared across threads) — tampering detection is exactly as strong as
  the locked read path.
* The untrusted store's operations are internally locked, so raw device
  reads interleave safely with the commit path's writes.

Consistency contract
====================

A view is a *frozen committed state*.  Reads through it are repeatable
and mutually consistent regardless of concurrent commits.  The serving
layer opens views on copy-on-write partition copies
(:class:`~repro.chunkstore.ops.CopyPartition`), which nobody writes to,
so a snapshot's object graph is stable for its whole lifetime.  Opening
a view directly on a live partition is also safe — the view keeps
showing the old state while writers move on — because the view caches
validated payloads privately rather than through the store's shared
payload cache (which tracks the *latest* committed bytes).

Close views promptly (``ChunkStore.close_snapshot_view`` or the context
manager): every open view defers cleaning store-wide.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro import obs
from repro.chunkstore.cache import ValidatedChunkCache
from repro.chunkstore.descriptor import (
    ChunkDescriptor,
    ChunkStatus,
    decode_descriptor_vector,
)
from repro.chunkstore.ids import ChunkId, data_id
from repro.chunkstore.log import LogCodec, VersionKind
from repro.chunkstore.partition import PartitionState
from repro.crypto.registry import make_cipher, make_hash
from repro.errors import (
    ChunkNotAllocatedError,
    ChunkStoreError,
    TamperDetectedError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chunkstore.store import ChunkStore


class SnapshotView:
    """Immutable validated read path over one partition's committed state.

    Construct via :meth:`ChunkStore.open_snapshot_view` (which freezes the
    partition's leader payload under the store lock and registers the
    cleaner pin); never directly.

    Thread-safe: many reader threads may share one view.  A private mutex
    guards the descriptor mini-cache; payloads go through an internally
    locked :class:`ValidatedChunkCache` of the view's own.
    """

    def __init__(
        self,
        store: "ChunkStore",
        pid: int,
        frozen_state: PartitionState,
        codec: LogCodec,
        cache_bytes: int,
    ) -> None:
        self._store = store
        self.pid = pid
        self._state = frozen_state
        self._codec = codec
        self._untrusted = store.platform.untrusted
        self._fanout = store.config.fanout
        self._min_location = store.config.superblock_size
        #: validated map descriptors resolved so far (grows monotonically;
        #: bounded by the partition's map size).  Seeded at freeze time
        #: with the store's cached descriptors: dirty entries are the only
        #: record of post-checkpoint commits (the persistent map is stale
        #: until the next checkpoint), and they shadow the frozen root
        #: exactly as they shadow the persistent map in the locked path.
        self._descriptors: Dict[ChunkId, ChunkDescriptor] = dict(
            store.cache.partition_entries(pid)
        )
        self._desc_mutex = threading.Lock()
        #: private payload cache — NOT the store's shared one, which
        #: tracks the latest committed bytes rather than this snapshot
        self._payloads = ValidatedChunkCache(cache_bytes)
        self.closed = False
        self.reads = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._store.close_snapshot_view(self)

    def close(self) -> None:
        self._store.close_snapshot_view(self)

    def _require_open(self) -> None:
        if self.closed:
            raise ChunkStoreError(f"snapshot view of partition {self.pid} is closed")

    # -- reads ---------------------------------------------------------------

    def read_chunk(self, rank: int) -> bytes:
        """Validated read of data chunk ``rank`` as of the snapshot."""
        self._require_open()
        cid = data_id(self.pid, rank)
        cached = self._payloads.get(cid)
        if cached is not None:
            self.reads += 1
            return cached
        with obs.time_block("chunkstore.snapshot_read"):
            descriptor = self._get_descriptor(cid)
            if descriptor.status != ChunkStatus.WRITTEN:
                if self._state.is_committed_written(rank):
                    raise TamperDetectedError(
                        f"chunk {cid} should be written but its snapshot "
                        f"descriptor says {descriptor.status.name}"
                    )
                raise ChunkNotAllocatedError(
                    f"chunk {cid} was not written as of this snapshot"
                )
            body = self._read_validated(cid, descriptor)
        self._payloads.put(cid, body)
        self.reads += 1
        return body

    def read_chunks(self, ranks: Sequence[int]) -> Dict[int, bytes]:
        """Batched :meth:`read_chunk` (one result per distinct rank)."""
        return {rank: self.read_chunk(rank) for rank in ranks}

    def chunk_exists(self, rank: int) -> bool:
        self._require_open()
        return self._state.is_committed_written(rank)

    def chunk_count(self) -> int:
        self._require_open()
        payload = self._state.payload
        return payload.next_rank - len(payload.free_ranks)

    # -- map walk ------------------------------------------------------------

    def _get_descriptor(self, cid: ChunkId) -> ChunkDescriptor:
        with self._desc_mutex:
            known = self._descriptors.get(cid)
        if known is not None:
            return known
        payload = self._state.payload
        height = payload.tree_height
        if cid.height > height or height == 0:
            return ChunkDescriptor()
        if cid.height == height:
            return payload.root if cid.rank == 0 else ChunkDescriptor()
        # ascend to the first known ancestor, then descend validating
        chain: List[ChunkId] = []
        node = cid.parent(self._fanout)
        descriptor: Optional[ChunkDescriptor] = None
        while True:
            with self._desc_mutex:
                known = self._descriptors.get(node)
            if known is not None:
                descriptor = known
                break
            if node.height == height:
                descriptor = (
                    payload.root if node.rank == 0 else ChunkDescriptor()
                )
                break
            chain.append(node)
            node = node.parent(self._fanout)
        for next_id in list(reversed(chain)) + [cid]:
            if not descriptor.is_written():
                return ChunkDescriptor()
            body = self._read_validated(node, descriptor)
            vector = decode_descriptor_vector(body)
            if len(vector) != self._fanout:
                raise TamperDetectedError(
                    f"map chunk {node} has {len(vector)} slots, "
                    f"expected {self._fanout}"
                )
            with self._desc_mutex:
                for slot, child in enumerate(vector):
                    self._descriptors[node.child(self._fanout, slot)] = child
            node, descriptor = next_id, vector[next_id.rank % self._fanout]
        return descriptor

    # -- validated extent read ----------------------------------------------

    def _read_validated(
        self, cid: ChunkId, descriptor: ChunkDescriptor
    ) -> bytes:
        location, length = descriptor.location, descriptor.length
        if (
            length < self._codec.header_cipher_size
            or location < self._min_location
            or location + length > self._untrusted.size
        ):
            raise TamperDetectedError(
                f"chunk {cid}: snapshot descriptor extent [{location}, "
                f"{location + length}) is implausible"
            )
        raw = memoryview(self._untrusted.read(location, length))
        header = self._codec.parse_header(raw[: self._codec.header_cipher_size])
        if (
            self._codec.header_cipher_size + header.body_cipher_size
            != len(raw)
        ):
            raise TamperDetectedError(
                f"chunk {cid}: header declares an implausible body size "
                f"{header.body_cipher_size}"
            )
        if header.kind != VersionKind.NAMED:
            raise TamperDetectedError(f"chunk {cid}: version kind mismatch")
        if (header.height, header.rank) != (cid.height, cid.rank):
            raise TamperDetectedError(
                f"chunk {cid}: stored position {header.height}.{header.rank} "
                f"does not match"
            )
        body, computed = self._codec.validate_named(
            header,
            raw[self._codec.header_cipher_size :],
            self._state.cipher,
            self._state.hash,
        )
        if computed != descriptor.body_hash:
            raise TamperDetectedError(f"chunk {cid}: hash mismatch")
        return body

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "pid": self.pid,
            "reads": self.reads,
            "closed": self.closed,
            "descriptors_cached": len(self._descriptors),
            "payload_cache": self._payloads.stats(),
        }


def build_snapshot_view(store: "ChunkStore", pid: int) -> SnapshotView:
    """Internal factory (caller holds ``store._lock``): freeze the
    partition's committed state and wire up private crypto instances."""
    from repro.chunkstore.ids import SYSTEM_PARTITION

    if pid == SYSTEM_PARTITION:
        raise ChunkStoreError("snapshot views of the system partition are not supported")
    state = store._state(pid)
    frozen_payload = state.payload.copy_for_snapshot()
    frozen = PartitionState.open(pid, frozen_payload)
    system_cipher = make_cipher(store.config.system_cipher, store._system_key)
    system_hash = make_hash(store.config.system_hash)
    codec = LogCodec(system_cipher, system_hash)
    return SnapshotView(
        store, pid, frozen, codec, store.config.payload_cache_bytes
    )
