"""Seeded I/O fault injection for the untrusted store.

Sibling of :class:`~repro.platform.crash.CrashInjector`: where the crash
injector models fail-stop power loss, the fault injector models the
*non-malicious* failures a real untrusted store exhibits — transient read
errors, failed writes, timed-out or truncated round trips to the §10
remote server, and permanently damaged extents ("bad sectors").

All randomness flows from one seeded :class:`random.Random`, so a fault
pattern is reproducible from ``(config, seed)`` alone.  Faults fire
*before* the store mutates any state or tallies any traffic, so a faulted
operation is a clean no-op and retrying it is always sound.

Permanent faults are sticky: the affected extent is remembered in
``bad_extents`` and every later access to overlapping bytes fails with
:class:`~repro.errors.PermanentIOError` even while random injection is
disabled — media damage does not heal when the test harness stops rolling
dice.  Tests can also place damage deterministically via :meth:`mark_bad`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import obs
from repro.errors import (
    PermanentIOError,
    RemoteTimeoutError,
    TransientIOError,
)


@dataclass(frozen=True)
class FaultConfig:
    """Per-operation fault probabilities (each in ``[0, 1]``)."""

    #: probability that a single-extent read fails
    read_error_rate: float = 0.0
    #: probability that a write fails (before mutating the image)
    write_error_rate: float = 0.0
    #: probability that a flush fails (before any record becomes durable)
    flush_error_rate: float = 0.0
    #: fraction of injected read/write faults that are *permanent* —
    #: the extent joins ``bad_extents`` and stays unreadable until repaired
    permanent_fraction: float = 0.0
    #: probability that a remote round trip times out
    timeout_rate: float = 0.0
    #: probability that a batched remote read returns a truncated response
    partial_response_rate: float = 0.0
    #: cap on sticky bad extents (0 disables permanent faults entirely)
    max_bad_extents: int = 4

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "flush_error_rate",
            "permanent_fraction",
            "timeout_rate",
            "partial_response_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_bad_extents < 0:
            raise ValueError("max_bad_extents must be >= 0")


class FaultInjector:
    """Deterministic, seeded source of I/O faults.

    The untrusted store calls the ``on_*`` hooks at the top of each
    operation; a hook either returns (no fault) or raises a subclass of
    :class:`~repro.errors.IOFaultError`.  ``enabled`` gates the random
    draws — ``bad_extents`` placed while enabled (or via :meth:`mark_bad`)
    keep failing regardless, because media damage is durable.
    """

    def __init__(
        self, config: FaultConfig = FaultConfig(), seed: int = 0
    ) -> None:
        self.config = config
        self.seed = seed
        self.rng = random.Random(seed)
        self.enabled = True
        #: sticky damaged regions as (offset, size) tuples
        self.bad_extents: List[Tuple[int, int]] = []
        #: faults raised, keyed by fault kind (for harness reporting)
        self.counts: Dict[str, int] = {}

    # -- damage placement ----------------------------------------------------

    def mark_bad(self, offset: int, size: int) -> None:
        """Deterministically damage ``[offset, offset+size)``."""
        self.bad_extents.append((offset, size))

    def clear_bad(self, offset: int, size: int) -> None:
        """Heal damage overlapping ``[offset, offset+size)`` (a repair
        re-wrote the extent somewhere the damage no longer applies)."""
        self.bad_extents = [
            (o, s)
            for (o, s) in self.bad_extents
            if not self._overlaps(o, s, offset, size)
        ]

    def is_bad(self, offset: int, size: int) -> bool:
        return any(
            self._overlaps(o, s, offset, size) for (o, s) in self.bad_extents
        )

    @staticmethod
    def _overlaps(o1: int, s1: int, o2: int, s2: int) -> bool:
        return o1 < o2 + s2 and o2 < o1 + s1

    # -- hooks called by the stores ------------------------------------------

    def on_read(self, offset: int, size: int) -> None:
        if self.is_bad(offset, size):
            self._raise_permanent("read", offset, size)
        if not self.enabled:
            return
        if self._draw(self.config.read_error_rate):
            if self._draw_permanent():
                self.bad_extents.append((offset, size))
                self._raise_permanent("read", offset, size)
            self._raise_transient("read", offset, size)

    def on_write(self, offset: int, size: int) -> None:
        if self.is_bad(offset, size):
            self._raise_permanent("write", offset, size)
        if not self.enabled:
            return
        if self._draw(self.config.write_error_rate):
            if self._draw_permanent():
                self.bad_extents.append((offset, size))
                self._raise_permanent("write", offset, size)
            self._raise_transient("write", offset, size)

    def on_flush(self) -> None:
        if not self.enabled:
            return
        if self._draw(self.config.flush_error_rate):
            self.counts["flush"] = self.counts.get("flush", 0) + 1
            obs.add("faults.injected")
            raise TransientIOError("injected flush fault")

    def on_round_trip(self, op: str) -> None:
        """Remote-store hook: one chance for the whole round trip to time
        out, drawn once per trip regardless of batch size."""
        if not self.enabled:
            return
        if self._draw(self.config.timeout_rate):
            self.counts["timeout"] = self.counts.get("timeout", 0) + 1
            obs.add("faults.injected")
            raise RemoteTimeoutError(f"injected timeout during remote {op}")

    def on_batch(self, requested: int) -> int:
        """Remote-store hook for batched reads: may truncate the response.

        Returns how many of the ``requested`` extents the "server"
        answered; the client raises
        :class:`~repro.errors.PartialResponseError` if short.
        """
        if not self.enabled or requested <= 1:
            return requested
        if self._draw(self.config.partial_response_rate):
            self.counts["partial"] = self.counts.get("partial", 0) + 1
            obs.add("faults.injected")
            return self.rng.randrange(1, requested)
        return requested

    # ------------------------------------------------------------------------

    def _draw(self, rate: float) -> bool:
        return rate > 0.0 and self.rng.random() < rate

    def _draw_permanent(self) -> bool:
        return (
            len(self.bad_extents) < self.config.max_bad_extents
            and self.config.permanent_fraction > 0.0
            and self.rng.random() < self.config.permanent_fraction
        )

    def _raise_transient(self, op: str, offset: int, size: int) -> None:
        self.counts[f"transient.{op}"] = self.counts.get(f"transient.{op}", 0) + 1
        obs.add("faults.injected")
        raise TransientIOError(
            f"injected transient {op} fault at [{offset}, {offset + size})"
        )

    def _raise_permanent(self, op: str, offset: int, size: int) -> None:
        self.counts[f"permanent.{op}"] = self.counts.get(f"permanent.{op}", 0) + 1
        obs.add("faults.injected")
        obs.emit("permanent_fault", op=op, offset=offset, size=size)
        raise PermanentIOError(
            f"bad extent: {op} at [{offset}, {offset + size})"
        )
