"""Object cache (§3, §7).

"The object store keeps a cache of frequently-used or dirty objects.
Caching data at this level is beneficial because the data is decrypted,
validated, and unpickled."  This cache holds *committed* objects only;
uncommitted (dirty) objects live in their transaction's private buffer
until commit — the no-steal policy (§2.2): modified objects must remain
in memory until their transaction commits.

Thread-safety contract: **internally locked**.  Concurrent server
sessions share one :class:`~repro.objectstore.store.ObjectStore` and hit
this cache from many threads at once; every public method takes a
private mutex so LRU bookkeeping can never be corrupted by interleaved
get/put/evict.  Note the lock protects the *cache structure* only —
coherence (evicting on overwrite, delete, abort, partition drop) remains
the object store's responsibility, exactly as before.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple


class ObjectCache:
    """LRU cache of committed, unpickled objects."""

    def __init__(self, max_entries: int = 4096) -> None:
        self._max = max_entries
        self._mutex = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, ref: Hashable) -> Tuple[bool, Optional[Any]]:
        """Returns ``(present, value)`` — values may legitimately be None."""
        with self._mutex:
            if ref in self._entries:
                self._entries.move_to_end(ref)
                self.hits += 1
                return True, self._entries[ref]
            self.misses += 1
            return False, None

    def put(self, ref: Hashable, value: Any) -> None:
        with self._mutex:
            self._entries[ref] = value
            self._entries.move_to_end(ref)
            while len(self._entries) > self._max:
                self._entries.popitem(last=False)

    def evict(self, ref: Hashable) -> None:
        with self._mutex:
            self._entries.pop(ref, None)

    def evict_partition(self, partition: int) -> None:
        with self._mutex:
            for ref in [r for r in self._entries if r.partition == partition]:
                del self._entries[ref]

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)
