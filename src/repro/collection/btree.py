"""A persistent B-tree whose nodes are objects (§8).

Sorted indexes "are possible because the objects are decrypted" below the
index layer (§1.2, §8): the tree sees plaintext keys, so range queries
work — exactly what a layered-crypto design cannot offer.

Every node is an object in the object store; mutations go through the
enclosing transaction, so tree updates commit atomically with the data
they index, and the chunk store's no-overwrite log gives historical
snapshots structural sharing for free.

Node representation (plain picklable dicts):

* leaf:     ``{"leaf": True,  "keys": [k...], "vals": [[ref...] ...]}``
* interior: ``{"leaf": False, "keys": [k...], "children": [ref...]}``
  with ``len(children) == len(keys) + 1``.

Values are lists of :class:`ObjectRef` (an index key may map to several
objects).  Deletion is *lazy*: nodes may become under-full (even empty);
only an empty root collapses.  This trades worst-case balance on shrink
for a much simpler algorithm — standard practice in embedded stores.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import IndexError_
from repro.objectstore.pickling import ObjectRef
from repro.objectstore.store import Transaction

#: maximum keys per node (2×16; splits at overflow)
ORDER = 32


def _new_leaf() -> dict:
    return {"leaf": True, "keys": [], "vals": []}


def create(tx: Transaction, partition: int) -> ObjectRef:
    """Create an empty tree; returns the root reference."""
    return tx.create(partition, _new_leaf())


def insert(
    tx: Transaction, partition: int, root: ObjectRef, key: Any, ref: ObjectRef
) -> ObjectRef:
    """Insert ``(key, ref)``; returns the (possibly new) root reference."""
    split = _insert(tx, partition, root, key, ref)
    if split is None:
        return root
    sep_key, right_ref = split
    new_root = {
        "leaf": False,
        "keys": [sep_key],
        "children": [root, right_ref],
    }
    return tx.create(partition, new_root)


def _insert(
    tx: Transaction, partition: int, node_ref: ObjectRef, key: Any, ref: ObjectRef
) -> Optional[Tuple[Any, ObjectRef]]:
    node = tx.get(node_ref)
    node = {
        "leaf": node["leaf"],
        "keys": list(node["keys"]),
        **(
            {"vals": [list(v) for v in node["vals"]]}
            if node["leaf"]
            else {"children": list(node["children"])}
        ),
    }
    if node["leaf"]:
        index = bisect.bisect_left(node["keys"], key)
        if index < len(node["keys"]) and node["keys"][index] == key:
            if ref not in node["vals"][index]:
                node["vals"][index].append(ref)
        else:
            node["keys"].insert(index, key)
            node["vals"].insert(index, [ref])
        if len(node["keys"]) <= ORDER:
            tx.update(node_ref, node)
            return None
        return _split_leaf(tx, partition, node_ref, node)
    index = bisect.bisect_right(node["keys"], key)
    split = _insert(tx, partition, node["children"][index], key, ref)
    if split is None:
        return None
    sep_key, right_ref = split
    node["keys"].insert(index, sep_key)
    node["children"].insert(index + 1, right_ref)
    if len(node["keys"]) <= ORDER:
        tx.update(node_ref, node)
        return None
    return _split_interior(tx, partition, node_ref, node)


def _split_leaf(
    tx: Transaction, partition: int, node_ref: ObjectRef, node: dict
) -> Tuple[Any, ObjectRef]:
    mid = len(node["keys"]) // 2
    right = {
        "leaf": True,
        "keys": node["keys"][mid:],
        "vals": node["vals"][mid:],
    }
    left = {
        "leaf": True,
        "keys": node["keys"][:mid],
        "vals": node["vals"][:mid],
    }
    right_ref = tx.create(partition, right)
    tx.update(node_ref, left)
    return right["keys"][0], right_ref


def _split_interior(
    tx: Transaction, partition: int, node_ref: ObjectRef, node: dict
) -> Tuple[Any, ObjectRef]:
    mid = len(node["keys"]) // 2
    sep_key = node["keys"][mid]
    right = {
        "leaf": False,
        "keys": node["keys"][mid + 1 :],
        "children": node["children"][mid + 1 :],
    }
    left = {
        "leaf": False,
        "keys": node["keys"][:mid],
        "children": node["children"][: mid + 1],
    }
    right_ref = tx.create(partition, right)
    tx.update(node_ref, left)
    return sep_key, right_ref


def remove(
    tx: Transaction, partition: int, root: ObjectRef, key: Any, ref: ObjectRef
) -> ObjectRef:
    """Remove ``(key, ref)``; missing entries are an error (index
    corruption would otherwise pass silently)."""
    if not _remove(tx, root, key, ref):
        raise IndexError_(f"index entry ({key!r}, {ref}) not found")
    root_node = tx.get(root)
    # collapse a root that has become a single-child interior node
    while not root_node["leaf"] and len(root_node["keys"]) == 0:
        only_child = root_node["children"][0]
        child_node = tx.get(only_child)
        tx.update(root, dict(child_node))
        tx.delete(only_child)
        root_node = tx.get(root)
    return root


def _remove(tx: Transaction, node_ref: ObjectRef, key: Any, ref: ObjectRef) -> bool:
    node = tx.get(node_ref)
    if node["leaf"]:
        index = bisect.bisect_left(node["keys"], key)
        if index >= len(node["keys"]) or node["keys"][index] != key:
            return False
        vals = list(node["vals"][index])
        if ref not in vals:
            return False
        vals.remove(ref)
        keys = list(node["keys"])
        all_vals = [list(v) for v in node["vals"]]
        if vals:
            all_vals[index] = vals
        else:
            del keys[index]
            del all_vals[index]
        tx.update(node_ref, {"leaf": True, "keys": keys, "vals": all_vals})
        return True
    index = bisect.bisect_right(node["keys"], key)
    # equal keys may straddle the separator; try left child then right
    if _remove(tx, node["children"][index], key, ref):
        return True
    if index > 0 and node["keys"][index - 1] == key:
        return _remove(tx, node["children"][index - 1], key, ref)
    return False


def iterate(
    tx: Transaction,
    root: ObjectRef,
    low: Any = None,
    high: Any = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> Iterator[Tuple[Any, ObjectRef]]:
    """In-order iteration over ``(key, ref)`` pairs within the bounds."""

    def in_range(key: Any) -> bool:
        if low is not None:
            if key < low or (not low_inclusive and key == low):
                return False
        if high is not None:
            if key > high or (not high_inclusive and key == high):
                return False
        return True

    def walk(node_ref: ObjectRef) -> Iterator[Tuple[Any, ObjectRef]]:
        node = tx.get(node_ref)
        if node["leaf"]:
            for key, refs in zip(node["keys"], node["vals"]):
                if in_range(key):
                    for ref in refs:
                        yield key, ref
            return
        keys = node["keys"]
        children = node["children"]
        for index, child in enumerate(children):
            # prune subtrees entirely outside the bounds
            if low is not None and index < len(keys) and keys[index] < low:
                continue
            if high is not None and index > 0 and keys[index - 1] > high:
                break
            yield from walk(child)

    yield from walk(root)


def lookup(tx: Transaction, root: ObjectRef, key: Any) -> List[ObjectRef]:
    """Exact-match lookup."""
    node = tx.get(root)
    while not node["leaf"]:
        index = bisect.bisect_right(node["keys"], key)
        node = tx.get(node["children"][index])
    index = bisect.bisect_left(node["keys"], key)
    if index < len(node["keys"]) and node["keys"][index] == key:
        return list(node["vals"][index])
    # equal keys can also sit in the next leaf when they straddled a split;
    # our insert keeps all refs for one key in a single slot, so no more work
    return []


def destroy(tx: Transaction, root: ObjectRef) -> None:
    """Delete every node of the tree."""
    node = tx.get(root)
    if not node["leaf"]:
        for child in node["children"]:
            destroy(tx, child)
    tx.delete(root)
