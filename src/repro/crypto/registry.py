"""Name → factory registry for ciphers and hash functions.

Partition leaders store the *names* of their cipher and hash function
(§5.2); this registry turns those names back into keyed instances when a
partition is opened.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.crypto import aead
from repro.crypto.cipher import Cipher, NullCipher
from repro.crypto.des import Des, TripleDes
from repro.crypto.hashing import HashFunction, NullHash, Sha1Hash, Sha256Hash
from repro.crypto.modes import CbcCipher, CtrStreamCipher
from repro.crypto.xtea import Xtea

_CIPHERS: Dict[str, Callable[[bytes], Cipher]] = {
    "null": NullCipher,
    "des-cbc": lambda key: CbcCipher(Des(key), "des-cbc"),
    "3des-cbc": lambda key: CbcCipher(TripleDes(key), "3des-cbc"),
    "xtea-cbc": lambda key: CbcCipher(Xtea(key), "xtea-cbc"),
    "ctr-sha256": CtrStreamCipher,
    # AEAD tier: registered unconditionally so names, key sizes, and
    # leader payloads stay stable; the factories raise a typed
    # CryptoUnavailableError when the backend is absent (never a
    # silent downgrade to a non-authenticating suite).
    "aes-256-gcm": aead.make_aes_256_gcm,
    "chacha20-poly1305": aead.make_chacha20_poly1305,
}

#: names whose factory needs the OpenSSL AEAD backend
AEAD_CIPHER_NAMES = ("aes-256-gcm", "chacha20-poly1305")

_HASHES: Dict[str, Callable[[], HashFunction]] = {
    "null": NullHash,
    "sha1": Sha1Hash,
    "sha256": Sha256Hash,
}

CIPHER_NAMES = tuple(sorted(_CIPHERS))
HASH_NAMES = tuple(sorted(_HASHES))

#: expected key sizes per cipher name (for validation and key generation)
KEY_SIZES: Dict[str, int] = {
    "null": 0,
    "des-cbc": 8,
    "3des-cbc": 24,
    "xtea-cbc": 16,
    "ctr-sha256": 16,
    "aes-256-gcm": aead.KEY_SIZE,
    "chacha20-poly1305": aead.KEY_SIZE,
}


def cipher_available(name: str) -> bool:
    """Whether ``make_cipher(name, ...)`` can succeed in this build."""
    if name not in _CIPHERS:
        raise ValueError(f"unknown cipher {name!r}; known: {CIPHER_NAMES}")
    if name in AEAD_CIPHER_NAMES:
        return aead.available()
    return True


def make_cipher(name: str, key: bytes) -> Cipher:
    """Instantiate the cipher registered under ``name`` with ``key``."""
    try:
        factory = _CIPHERS[name]
    except KeyError:
        raise ValueError(f"unknown cipher {name!r}; known: {CIPHER_NAMES}") from None
    return factory(key)


def make_hash(name: str) -> HashFunction:
    """Instantiate the hash function registered under ``name``."""
    try:
        factory = _HASHES[name]
    except KeyError:
        raise ValueError(f"unknown hash {name!r}; known: {HASH_NAMES}") from None
    return factory()
