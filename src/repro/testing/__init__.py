"""Correctness harnesses for the TDB reproduction.

Three layers, all seeded and reproducible:

* :mod:`repro.testing.adversary` — mutation engine enforcing the
  detect-or-correct oracle over every attack class of §2/§4.8;
* :mod:`repro.testing.differential` — model-based differential testing of
  the chunk store against :mod:`repro.testing.model`, with seed replay and
  prefix shrinking;
* :mod:`repro.testing.faultsweep` — seeded transient/permanent I/O fault
  sweep enforcing the succeed-or-typed-error-or-healable-quarantine
  invariant (and its crash-under-faults composition);
* :mod:`repro.testing.sweep` — the shared discover-then-replay loop over
  crash (and tamper) injection points.

Run from the command line via ``python -m repro.testing`` (see
``docs/TESTING.md`` and the ``adversary`` / ``differential`` Makefile
targets).
"""

from repro.testing.adversary import (
    DETECTED,
    FOREIGN_ERROR,
    HARMLESS,
    SILENT_CORRUPTION,
    Adversary,
    Scenario,
    SweepResult,
    TrialReport,
    apply_random_mutation,
    build_scenario,
    scenario_config,
)
from repro.testing.differential import (
    DiffFailure,
    DifferentialRunner,
    Op,
    op_value,
)
from repro.testing.faultsweep import (
    FAILSTOP,
    HEALED,
    OK,
    QUARANTINED,
    TYPED,
    FaultSweep,
    FaultSweepResult,
    FaultTrialReport,
    fault_config,
)
from repro.testing.model import ReferenceModel, diff_states, observe_store
from repro.testing.snapshot import PlatformSnapshot
from repro.testing.sweep import SweepDriver, SweepSite, sample_sites

__all__ = [
    "Adversary",
    "Scenario",
    "SweepResult",
    "TrialReport",
    "apply_random_mutation",
    "build_scenario",
    "scenario_config",
    "HARMLESS",
    "DETECTED",
    "SILENT_CORRUPTION",
    "FOREIGN_ERROR",
    "DifferentialRunner",
    "DiffFailure",
    "Op",
    "op_value",
    "FaultSweep",
    "FaultSweepResult",
    "FaultTrialReport",
    "fault_config",
    "OK",
    "TYPED",
    "HEALED",
    "QUARANTINED",
    "FAILSTOP",
    "ReferenceModel",
    "observe_store",
    "diff_states",
    "PlatformSnapshot",
    "SweepDriver",
    "SweepSite",
    "sample_sites",
]
