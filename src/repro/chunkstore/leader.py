"""Partition leader payloads (§4.3, §5.2).

Every partition has a *leader chunk* holding what is needed to manage its
position map: the descriptor of the root map chunk, the tree height, the
allocation high-water mark, the free list, the partition's cryptographic
parameters (cipher name, hash name, secret key), and the ids of its direct
copies (needed by the cleaner, §5.5).

Leaders of user partitions are stored as data chunks of the *system*
partition, so they are encrypted with the system cipher — which creates
the cipher-link path from the secret store to every partition key.

The *system leader* is the leader of the system partition itself.  It is
written last during a checkpoint and heads the residual log.  Besides the
regular leader fields it carries the segment table (free segments, per-
segment usage and live-byte estimates, tail position) and bookkeeping for
counter-based validation and backup restore chains.

Deviation from the paper, documented: the paper threads the free list
through the descriptors themselves with its head in the leader; we store
the free ranks as an explicit list in the leader payload.  This keeps
recovery's free-list reconstruction trivially deterministic at the cost of
leader size proportional to the free count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.chunkstore.descriptor import ChunkDescriptor
from repro.util.codec import Decoder, Encoder


@dataclass
class SegmentTable:
    """Persistent view of log segmentation (inside the system leader)."""

    #: index of the segment holding the log tail at checkpoint time
    tail_segment: int = 0
    #: segments with no live data, available for the log to claim
    free_segments: List[int] = field(default_factory=list)
    #: bytes appended to each segment (0 for never-used)
    used_bytes: List[int] = field(default_factory=list)
    #: estimated live bytes per segment (cleaning policy input, §4.9.5)
    live_bytes: List[int] = field(default_factory=list)
    #: segment chain from the checkpoint leader's segment to the tail
    residual_segments: List[int] = field(default_factory=list)

    def encode(self, enc: Encoder) -> None:
        enc.uint(self.tail_segment)
        enc.uint(len(self.free_segments))
        for seg in self.free_segments:
            enc.uint(seg)
        enc.uint(len(self.used_bytes))
        for used in self.used_bytes:
            enc.uint(used)
        for live in self.live_bytes:
            enc.uint(live)
        enc.uint(len(self.residual_segments))
        for seg in self.residual_segments:
            enc.uint(seg)

    @classmethod
    def decode(cls, dec: Decoder) -> "SegmentTable":
        tail_segment = dec.uint()
        free_segments = [dec.uint() for _ in range(dec.uint())]
        count = dec.uint()
        used_bytes = [dec.uint() for _ in range(count)]
        live_bytes = [dec.uint() for _ in range(count)]
        residual = [dec.uint() for _ in range(dec.uint())]
        return cls(tail_segment, free_segments, used_bytes, live_bytes, residual)


@dataclass
class SystemExtras:
    """Extra system-leader state beyond the regular leader fields."""

    segments: SegmentTable = field(default_factory=SegmentTable)
    #: counter mode: commit count of the checkpoint's own commit chunk;
    #: recovery expects the first commit chunk in the residual log to
    #: carry exactly this count (defeats deletion right after checkpoint)
    checkpoint_count: int = 0
    #: backup restore chains: source partition -> last restored snapshot id
    restore_history: Dict[int, int] = field(default_factory=dict)
    #: backup bases: source partition -> snapshot id of the latest backup
    backup_bases: Dict[int, int] = field(default_factory=dict)

    def encode(self, enc: Encoder) -> None:
        self.segments.encode(enc)
        enc.uint(self.checkpoint_count)
        enc.uint(len(self.restore_history))
        for pid, snap in sorted(self.restore_history.items()):
            enc.uint(pid)
            enc.uint(snap)
        enc.uint(len(self.backup_bases))
        for pid, snap in sorted(self.backup_bases.items()):
            enc.uint(pid)
            enc.uint(snap)

    @classmethod
    def decode(cls, dec: Decoder) -> "SystemExtras":
        segments = SegmentTable.decode(dec)
        checkpoint_count = dec.uint()
        restore_history = {}
        for _ in range(dec.uint()):
            pid = dec.uint()
            restore_history[pid] = dec.uint()
        backup_bases = {}
        for _ in range(dec.uint()):
            pid = dec.uint()
            backup_bases[pid] = dec.uint()
        return cls(segments, checkpoint_count, restore_history, backup_bases)


@dataclass
class LeaderPayload:
    """Decoded contents of a partition leader chunk."""

    cipher_name: str = "null"
    hash_name: str = "null"
    key: bytes = b""
    #: optional well-known name (e.g. the backup registry); stored in the
    #: leader so lookup survives crashes without extra metadata plumbing
    name: str = ""
    #: height of the position map tree (0 = no chunks ever written)
    tree_height: int = 0
    #: descriptor of the root map chunk (meaningful when tree_height > 0)
    root: ChunkDescriptor = field(default_factory=ChunkDescriptor)
    #: allocation high-water mark for *committed* data ranks
    next_rank: int = 0
    #: deallocated (or never-committed) data ranks available for reuse
    free_ranks: Set[int] = field(default_factory=set)
    #: partition ids of direct copies (§5.5)
    copies: List[int] = field(default_factory=list)
    #: the partition this one was copied from, if any
    copy_of: Optional[int] = None
    #: present only on the system leader
    system: Optional[SystemExtras] = None

    def copy_for_snapshot(self) -> "LeaderPayload":
        """Payload for a copy-on-write partition copy (§5.3).

        The copy shares the root descriptor (and thus all map and data
        chunks) and inherits the cryptographic parameters.  Its own copy
        list starts empty.
        """
        return LeaderPayload(
            cipher_name=self.cipher_name,
            hash_name=self.hash_name,
            key=self.key,
            tree_height=self.tree_height,
            root=self.root.copy(),
            next_rank=self.next_rank,
            free_ranks=set(self.free_ranks),
            copies=[],
            copy_of=None,
            system=None,
        )

    def encode(self) -> bytes:
        enc = Encoder()
        enc.text(self.cipher_name)
        enc.text(self.hash_name)
        enc.bytes(self.key)
        enc.text(self.name)
        enc.uint(self.tree_height)
        self.root.encode(enc)
        enc.uint(self.next_rank)
        enc.uint(len(self.free_ranks))
        for rank in sorted(self.free_ranks):
            enc.uint(rank)
        enc.uint(len(self.copies))
        for pid in self.copies:
            enc.uint(pid)
        enc.opt_uint(self.copy_of)
        if self.system is not None:
            enc.bool(True)
            self.system.encode(enc)
        else:
            enc.bool(False)
        return enc.finish()

    @classmethod
    def decode(cls, data: bytes) -> "LeaderPayload":
        dec = Decoder(data)
        cipher_name = dec.text()
        hash_name = dec.text()
        key = dec.bytes()
        name = dec.text()
        tree_height = dec.uint()
        root = ChunkDescriptor.decode(dec)
        next_rank = dec.uint()
        free_ranks = {dec.uint() for _ in range(dec.uint())}
        copies = [dec.uint() for _ in range(dec.uint())]
        copy_of = dec.opt_uint()
        system = SystemExtras.decode(dec) if dec.bool() else None
        dec.expect_exhausted()
        return cls(
            cipher_name=cipher_name,
            hash_name=hash_name,
            key=key,
            name=name,
            tree_height=tree_height,
            root=root,
            next_rank=next_rank,
            free_ranks=free_ranks,
            copies=copies,
            copy_of=copy_of,
            system=system,
        )
