"""Adversarial parser fuzzing.

Every parser that consumes *untrusted* bytes (log headers, unnamed-chunk
records, leader payloads, backup streams, the superblock, pickles) must
fail with a *typed* error on arbitrary input — never with an unhandled
IndexError/KeyError/MemoryError-style crash, and never by silently
succeeding with dangerous values."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import (
    BackupError,
    BackupIntegrityError,
    ChunkStoreError,
    PicklingError,
    TamperDetectedError,
)

ACCEPTABLE = (
    TamperDetectedError,
    ChunkStoreError,
    BackupError,
    BackupIntegrityError,
    PicklingError,
    ValueError,
    UnicodeDecodeError,
)


class TestLogParsers:
    @given(blob=st.binary(max_size=100))
    @settings(max_examples=100)
    def test_version_header_parse(self, blob):
        from repro.chunkstore.log import LogCodec
        from repro.crypto.hashing import Sha1Hash
        from repro.crypto.modes import CtrStreamCipher

        codec = LogCodec(CtrStreamCipher(b"k" * 16), Sha1Hash())
        try:
            header = codec.parse_header(blob[: codec.header_cipher_size].ljust(
                codec.header_cipher_size, b"\x00"
            ))
            # if it "parses", the kind is at least a valid enum member
            assert header.kind is not None
        except ACCEPTABLE:
            pass

    @given(blob=st.binary(max_size=200))
    @settings(max_examples=100)
    def test_unnamed_records(self, blob):
        from repro.chunkstore.log import (
            CleanerRecord,
            CommitRecord,
            DeallocateRecord,
            NextSegmentRecord,
        )

        for parser in (
            DeallocateRecord.decode,
            CommitRecord.decode,
            NextSegmentRecord.decode,
            CleanerRecord.decode,
        ):
            try:
                parser(blob)
            except ACCEPTABLE:
                pass

    @given(blob=st.binary(max_size=300))
    @settings(max_examples=100)
    def test_leader_payload(self, blob):
        from repro.chunkstore.leader import LeaderPayload

        try:
            LeaderPayload.decode(blob)
        except ACCEPTABLE:
            pass

    @given(blob=st.binary(max_size=200))
    @settings(max_examples=100)
    def test_descriptor_vector(self, blob):
        from repro.chunkstore.descriptor import decode_descriptor_vector

        try:
            decode_descriptor_vector(blob)
        except ACCEPTABLE:
            pass


class TestSuperblockFuzz:
    @given(blob=st.binary(min_size=4, max_size=4096))
    @settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
    def test_superblock_parse(self, blob):
        from repro.chunkstore.store import ChunkStore
        from repro.platform import MemoryUntrustedStore

        store = MemoryUntrustedStore(8192)
        store.tamper_write(0, b"TDB1" + blob[4:])

        class _Probe:
            untrusted = store

        try:
            ChunkStore._read_superblock(_Probe())
        except ACCEPTABLE:
            pass


class TestBackupStreamFuzz:
    @given(blob=st.binary(max_size=400))
    @settings(max_examples=100)
    def test_partition_backup_parse(self, blob):
        from repro.backup.format import read_partition_backup
        from repro.crypto.hashing import Sha1Hash
        from repro.crypto.mac import Mac
        from repro.crypto.modes import CtrStreamCipher
        from repro.crypto.registry import make_cipher, make_hash
        from repro.platform.archival import StreamReader

        reader = StreamReader(blob)
        try:
            read_partition_backup(
                reader,
                CtrStreamCipher(b"s" * 16),
                make_cipher,
                Mac(b"m" * 16, Sha1Hash()),
                make_hash,
            )
        except ACCEPTABLE:
            pass


class TestPickleFuzz:
    @given(blob=st.binary(max_size=300))
    @settings(max_examples=150)
    def test_unpickle_arbitrary_bytes(self, blob):
        from repro.objectstore.pickling import unpickle_value

        try:
            unpickle_value(blob)
        except ACCEPTABLE:
            pass

    @given(blob=st.binary(max_size=100))
    @settings(max_examples=50)
    def test_deep_nesting_bomb_rejected(self, blob):
        """A pickled 'list of list of list ...' bomb must hit the depth
        limit, not exhaust the stack."""
        from repro.objectstore.pickling import unpickle_value
        from repro.util.codec import Encoder

        enc = Encoder()
        for _ in range(500):
            enc.uint(7)  # list tag
            enc.uint(1)  # one element
        enc.uint(0)  # None
        try:
            unpickle_value(enc.finish())
        except ACCEPTABLE:
            pass
