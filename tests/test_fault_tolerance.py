"""Integration tests for transient-fault tolerance: retries absorbing
transient faults, quarantine isolating permanent damage, remote flush
replay, and online scrub-and-repair from backups (the ISSUE's acceptance
demo lives in ``test_quarantine_then_scrub_repair_from_backup``)."""

import pytest

from repro.backup.store import BackupStore
from repro.chunkstore import ChunkStore, ops
from repro.chunkstore.ids import data_id
from repro.errors import (
    QuarantineError,
    RemoteTimeoutError,
    TamperDetectedError,
)
from repro.extensions.remote import RemoteUntrustedStore
from repro.platform import FakeClock, FaultConfig, FaultInjector
from repro.testing.faultsweep import fault_config

from tests.conftest import make_config, make_platform


def _faulted_store(config=None, seed=0, **store_overrides):
    faults = FaultInjector(config or FaultConfig(), seed=seed)
    faults.enabled = False  # enable per-test once the store is provisioned
    platform = make_platform(faults=faults, clock=FakeClock())
    store = ChunkStore.format(platform, make_config(**store_overrides))
    return platform, store, faults


def _populate(store, partitions=2, ranks=3):
    pids = []
    for _ in range(partitions):
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="ctr-sha256")])
        for rank in range(ranks):
            store.partitions[pid].allocate_specific(rank)
            store.commit(
                [ops.WriteChunk(pid, rank, f"p{pid}r{rank}:".encode() * 8)]
            )
        pids.append(pid)
    return pids


def _extent(store, pid, rank):
    descriptor = store._get_descriptor(data_id(pid, rank))
    return descriptor.location, descriptor.length


# ---------------------------------------------------------------------------
# retries absorb transient faults
# ---------------------------------------------------------------------------


def test_transient_faults_are_healed_by_retry():
    platform, store, faults = _faulted_store(
        FaultConfig(read_error_rate=0.2, write_error_rate=0.2,
                    flush_error_rate=0.2)
    )
    pids = _populate(store)
    faults.enabled = True
    # a workload big enough that 20% rates certainly inject faults, all of
    # which four retry attempts absorb with overwhelming probability
    for round_trip in range(10):
        for pid in pids:
            for rank in range(3):
                value = f"v{round_trip}p{pid}r{rank}:".encode() * 8
                store.commit([ops.WriteChunk(pid, rank, value)])
                assert store.read_chunk(pid, rank) == value
    faults.enabled = False
    stats = store.stats()
    assert stats["untrusted"]["io_errors"] > 0
    assert stats["untrusted"]["retries"] > 0
    assert stats["untrusted"]["gave_up"] == 0
    assert stats["faults"]["quarantine_active"] == 0


# ---------------------------------------------------------------------------
# quarantine isolates permanent damage (degraded-mode reads)
# ---------------------------------------------------------------------------


def test_quarantine_isolates_damage_to_one_chunk():
    # payload cache off: the test re-reads chunks it already read, and a
    # warm cache would (correctly) never re-hit the dead extent
    platform, store, faults = _faulted_store(payload_cache_bytes=0)
    healthy_pid, hurt_pid = _populate(store)
    before = {
        (pid, rank): store.read_chunk(pid, rank)
        for pid in (healthy_pid, hurt_pid)
        for rank in range(3)
    }
    faults.mark_bad(*_extent(store, hurt_pid, 1))

    with pytest.raises(QuarantineError) as excinfo:
        store.read_chunk(hurt_pid, 1)
    assert excinfo.value.cause == "io"
    # the quarantine short-circuits instead of re-hitting the dead extent
    with pytest.raises(QuarantineError):
        store.read_chunk(hurt_pid, 1)
    assert store.quarantined_chunks() == {f"{hurt_pid}:0.1": "io"}

    # unrelated chunks — same and other partitions — stay readable, and
    # commits to healthy chunks still succeed
    for (pid, rank), value in before.items():
        if (pid, rank) == (hurt_pid, 1):
            continue
        assert store.read_chunk(pid, rank) == value
    store.commit([ops.WriteChunk(healthy_pid, 0, b"still-alive " * 8)])
    assert store.read_chunk(healthy_pid, 0) == b"still-alive " * 8
    assert store.stats()["faults"]["quarantined"] == 1


def test_exhausted_retries_quarantine_instead_of_poisoning():
    platform, store, faults = _faulted_store(
        FaultConfig(read_error_rate=1.0)  # every read fails, transiently
    )
    (pid, _) = _populate(store)
    faults.enabled = True
    with pytest.raises(QuarantineError):
        store.read_chunk(pid, 0)
    faults.enabled = False
    stats = store.stats()
    assert stats["untrusted"]["gave_up"] >= 1
    # the device healed: scrub gives the quarantined extent fresh retries
    report = store.scrub(raise_on_first=False)
    assert report["unrepaired"] == []
    assert store.read_chunk(pid, 0) == b"p1r0:" * 8
    assert store.quarantined_chunks() == {}


# ---------------------------------------------------------------------------
# remote store: failed flush leaves the write queue replayable (satellite)
# ---------------------------------------------------------------------------


def test_remote_flush_fault_leaves_queue_replayable():
    faults = FaultInjector(FaultConfig(timeout_rate=1.0), seed=0)
    faults.enabled = False
    from repro.platform import MemoryUntrustedStore

    remote = RemoteUntrustedStore(MemoryUntrustedStore(8192, None, faults))
    remote.write(100, b"alpha")
    remote.write(500, b"beta")
    assert [offset for offset, _ in remote.pending_writes()] == [100, 500]

    faults.enabled = True
    with pytest.raises(RemoteTimeoutError):
        remote.flush()
    # regression: the queue must survive the failed round trip intact
    assert remote.pending_writes() == [(100, b"alpha"), (500, b"beta")]

    faults.enabled = False
    remote.flush()  # replay succeeds
    assert remote.pending_writes() == []
    assert remote.read(100, 5) == b"alpha"
    assert remote.read(500, 4) == b"beta"


def test_remote_partial_response_fails_whole_batch():
    from repro.errors import PartialResponseError
    from repro.platform import MemoryUntrustedStore

    faults = FaultInjector(FaultConfig(partial_response_rate=1.0), seed=2)
    remote = RemoteUntrustedStore(MemoryUntrustedStore(8192, None, faults))
    faults.enabled = False
    remote.write(0, b"aa")
    remote.write(10, b"bb")
    remote.flush()
    faults.enabled = True
    with pytest.raises(PartialResponseError):
        remote.read_many([(0, 2), (10, 2)])
    faults.enabled = False
    assert remote.read_many([(0, 2), (10, 2)]) == [b"aa", b"bb"]


# ---------------------------------------------------------------------------
# scrub reporting and repair (satellite: raise_on_first=False coverage)
# ---------------------------------------------------------------------------


def test_scrub_reports_damage_across_partitions():
    platform, store, faults = _faulted_store()
    pid_a, pid_b = _populate(store)
    store.checkpoint()
    # partition A: tampered bytes; partition B: a dead extent
    loc_a, len_a = _extent(store, pid_a, 0)
    body = platform.untrusted.tamper_read(loc_a, len_a)
    platform.untrusted.tamper_write(loc_a, bytes(b ^ 0xFF for b in body))
    faults.mark_bad(*_extent(store, pid_b, 2))

    with pytest.raises(TamperDetectedError):
        store.scrub()  # raise_on_first=True still fails fast

    report = store.scrub(raise_on_first=False)
    assert f"{pid_a}:0.0" in report["corrupt"]
    assert f"{pid_b}:0.2" in report["unreadable"]
    # no repair source: both stay unrepaired and quarantined for later
    assert set(report["unrepaired"]) == {f"{pid_a}:0.0", f"{pid_b}:0.2"}
    assert report["repaired"] == []
    assert store.quarantined_chunks() == {
        f"{pid_a}:0.0": "tamper",
        f"{pid_b}:0.2": "io",
    }
    # healthy chunks kept validating
    assert report["chunks_validated"] > 0


def test_quarantine_then_scrub_repair_from_backup():
    """The ISSUE's acceptance demo: back up, damage extents, watch reads
    quarantine, scrub-and-repair from the backup, then read everything
    back byte-identical."""
    platform, store, faults = _faulted_store(payload_cache_bytes=0)
    pids = _populate(store, partitions=3)
    expected = {
        (pid, rank): store.read_chunk(pid, rank)
        for pid in pids
        for rank in range(3)
    }
    backup = BackupStore(store)
    info = backup.create_backup(pids, "nightly", incremental=False)
    # retire the consistent-snapshot partitions: they share the soon-to-be
    # damaged versions copy-on-write, and this demo repairs sources only
    store.commit(
        [ops.DeallocatePartition(s) for s in info.snapshot_pids.values()]
    )
    store.checkpoint()

    # media damage on two partitions' extents
    faults.mark_bad(*_extent(store, pids[0], 1))
    faults.mark_bad(*_extent(store, pids[2], 0))
    with pytest.raises(QuarantineError):
        store.read_chunk(pids[0], 1)
    with pytest.raises(QuarantineError):
        store.read_chunk(pids[2], 0)

    report = store.scrub(
        raise_on_first=False,
        repair_source=backup.repair_source(["nightly"]),
    )
    assert set(report["repaired"]) == {
        f"{pids[0]}:0.1",
        f"{pids[2]}:0.0",
    }
    assert report["unrepaired"] == []
    assert store.quarantined_chunks() == {}
    # every chunk — repaired and untouched alike — reads byte-identical
    for (pid, rank), value in expected.items():
        assert store.read_chunk(pid, rank) == value
    # and the repairs are durable across a crash + reopen
    platform.reboot()
    store = ChunkStore.open(platform)
    for (pid, rank), value in expected.items():
        assert store.read_chunk(pid, rank) == value


def test_scrub_refuses_stale_backup_bytes():
    platform, store, faults = _faulted_store()
    (pid, _) = _populate(store)
    backup = BackupStore(store)
    backup.create_backup([pid], "old", incremental=False)
    # the chunk moves on after the backup...
    store.commit([ops.WriteChunk(pid, 0, b"newer-truth " * 8)])
    store.checkpoint()
    # ...then its current version dies
    faults.mark_bad(*_extent(store, pid, 0))
    report = store.scrub(
        raise_on_first=False, repair_source=backup.repair_source(["old"])
    )
    # the stale candidate hashes differently from the committed descriptor:
    # refused, never silently rolled back
    assert f"{pid}:0.0" in report["unrepaired"]
    assert report["repaired"] == []
    with pytest.raises(QuarantineError):
        store.read_chunk(pid, 0)


def test_sweep_cell_configs_cover_every_point():
    for point in ("read", "write", "flush", "mixed", "remote"):
        config = fault_config(point, 0.05)
        assert isinstance(config, FaultConfig)
    with pytest.raises(ValueError):
        fault_config("nonsense", 0.05)
