"""Observability smoke check: ``python -m repro.obs.smoke``.

Runs a short traced workload against a scratch in-memory store —
commits, uncached reads, a checkpoint, a crash-reopen (recovery replay),
and an object-store transaction — then asserts the shape of what the
``repro.obs`` layer recorded:

* the read and commit latency histograms are populated and their
  percentiles are monotone (p50 ≤ p95 ≤ p99 ≤ max);
* tracing captured spans, including at least one *nested* span
  (``map_walk`` inside ``read_chunks``/``commit``);
* the event log holds the expected rare-transition kinds
  (``recovery_replay``, ``cache_invalidation``).

``make obs-smoke`` (and the CI workflow) run :func:`main`, which exits
non-zero on any violation.  :func:`run_workload` alone is reused by
``tools/inspect.py --metrics``/``--trace`` to give a fresh CLI process
something to display.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro import obs
from repro.chunkstore import ChunkStore, StoreConfig, ops
from repro.objectstore.store import ObjectStore
from repro.platform.trusted_platform import TrustedPlatform

#: small enough for sub-second runtime, large enough for real percentiles
CHUNKS = 12
CHUNK_SIZE = 1024


def _config() -> StoreConfig:
    return StoreConfig(
        segment_size=64 * 1024,
        system_cipher="ctr-sha256",
        system_hash="sha1",
        validation_mode="counter",
        delta_ut=5,
        payload_cache_bytes=0,  # uncached reads feed the read histogram
    )


def run_workload() -> None:
    """Exercise every obs surface: spans, histograms, and events."""
    obs.reset()
    obs.enable_tracing()

    platform = TrustedPlatform.create_in_memory(untrusted_size=4 * 1024 * 1024)
    store = ChunkStore.format(platform, _config())
    pid = store.allocate_partition()
    store.commit(
        [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
    )
    payload = bytes(i & 0xFF for i in range(CHUNK_SIZE))
    for rank in range(CHUNKS):
        store.partitions[pid].allocate_specific(rank)
        store.commit([ops.WriteChunk(pid, rank, payload)])
    for rank in range(CHUNKS):  # cache-miss reads: the read histogram
        store.read_chunk(pid, rank)
    store.read_chunks(pid, list(range(CHUNKS)))  # batched walk span
    store.checkpoint()
    # leave a residual log so the reopen replays it (recovery events)
    store.commit([ops.WriteChunk(pid, 0, payload)])
    store.close(checkpoint=False)
    store = ChunkStore.open(platform, _config())

    # one object-store transaction: tx_commit histogram + lock stats
    objects = ObjectStore(store)
    opid = objects.create_partition()
    with objects.transaction() as tx:
        tx.create(opid, {"smoke": list(range(8))})
    store.close()


def _check_histogram(name: str, failures: list) -> None:
    hist = obs.metrics.histogram_for(name)
    snap = hist.snapshot() if hist is not None else None
    if not snap or snap["count"] == 0:
        failures.append(f"histogram {name!r} is empty")
        return
    p50, p95, p99 = snap["p50_s"], snap["p95_s"], snap["p99_s"]
    if not (0 < p50 <= p95 <= p99 <= max(snap["max_s"], p99)):
        failures.append(
            f"histogram {name!r} percentiles not monotone: "
            f"p50={p50} p95={p95} p99={p99}"
        )


def main() -> int:
    run_workload()
    failures: list = []

    for name in ("chunkstore.read", "chunkstore.commit",
                 "chunkstore.recovery", "objectstore.tx_commit"):
        _check_histogram(name, failures)

    records = obs.trace.records()
    if not records:
        failures.append("tracing enabled but no spans recorded")
    elif not any(r.depth > 0 for r in records):
        failures.append("no nested span recorded (expected map_walk "
                        "inside commit/read_chunks)")

    counts: Dict[str, int] = obs.events.counts()
    for kind in ("recovery_replay", "cache_invalidation"):
        if not counts.get(kind):
            failures.append(f"expected event kind {kind!r} missing")

    if obs.metrics.counter_value("chunkstore.log.versions_built") <= 0:
        failures.append("counter 'chunkstore.log.versions_built' never moved")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    snap = obs.metrics.snapshot()
    print(
        f"obs smoke OK: {len(snap['histograms'])} histograms, "
        f"{len(snap['counters'])} counters, "
        f"{sum(counts.values())} events, {len(records)} spans"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
