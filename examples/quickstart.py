#!/usr/bin/env python
"""Quickstart: a trusted key-value-ish database in a few lines.

Walks the full stack top-down: provision a (simulated) trusted platform,
format a chunk store, put an object store with transactions on top, and
show that data survives crashes and that tampering is detected.

Run:  python examples/quickstart.py
"""

from repro import (
    ChunkStore,
    ObjectStore,
    StoreConfig,
    TamperDetectedError,
    TrustedPlatform,
)


def main() -> None:
    # 1. The trusted platform: a secret store (16 bytes only trusted code
    #    can read), a tamper-resistant counter, and a big untrusted store
    #    that *anyone* — including the attacker below — can read and write.
    platform = TrustedPlatform.create_in_memory(untrusted_size=8 * 1024 * 1024)

    # 2. Format a chunk store and layer the object store on top.
    chunks = ChunkStore.format(
        platform,
        StoreConfig(system_cipher="3des-cbc", system_hash="sha1", delta_ut=5),
    )
    objects = ObjectStore(chunks)
    pid = objects.create_partition(cipher_name="des-cbc", hash_name="sha1")

    # 3. Transactions: everything inside commits atomically or not at all.
    #    (Claim the conventional root at rank 0 *first* — created objects
    #    take the lowest free ranks.)
    with objects.transaction() as tx:
        root = tx.create_at(objects.root_ref(pid), {})
        alice = tx.create(pid, {"name": "alice", "balance": 100})
        bob = tx.create(pid, {"name": "bob", "balance": 0})
        tx.update(root, {"alice": alice, "bob": bob})
    print("created:", objects.read_committed(alice))

    # 4. Transfer money atomically.
    with objects.transaction() as tx:
        a = tx.get_for_update(alice)
        b = tx.get_for_update(bob)
        tx.update(alice, dict(a, balance=a["balance"] - 30))
        tx.update(bob, dict(b, balance=b["balance"] + 30))
    print("after transfer:", objects.read_committed(alice), objects.read_committed(bob))

    # 5. Crash and recover: commit durability survives power failures.
    chunks.close(checkpoint=False)
    platform.reboot()  # drops anything not flushed
    chunks = ChunkStore.open(platform)  # roll-forward recovery + validation
    objects = ObjectStore(chunks)
    print("after crash+recovery:", objects.read_committed(alice))
    assert objects.read_committed(alice)["balance"] == 70

    # 6. The attacker owns the untrusted store.  Secrecy: the data is not
    #    visible in the raw image.  Tamper detection: any modification is
    #    caught when trusted code reads it back.
    image = platform.untrusted.tamper_image()
    assert b"alice" not in image, "plaintext must never reach untrusted storage"
    print("secrecy: OK ('alice' does not appear in the raw device image)")

    # flip one bit somewhere in the middle of the device
    offset = len(image) // 3
    platform.untrusted.tamper_write(offset, bytes([image[offset] ^ 0x01]))
    chunks.cache.clear()
    objects.cache.clear()
    try:
        for ref in (alice, bob):
            objects.read_committed(ref)
        print("(the flipped bit hit an obsolete byte — also fine)")
    except TamperDetectedError as exc:
        print(f"tamper detection: OK ({exc})")


if __name__ == "__main__":
    main()
