"""Structured event log for rare-but-critical transitions.

Counters answer *how many*; spans answer *how long*; this module answers
*what happened* — the low-frequency, high-signal transitions a sweep or
an operator cares about: a chunk entering quarantine, a repair landing,
a deadlock being broken, recovery replaying the residual log, a payload
cache being invalidated wholesale.

Events are plain records in a bounded ring (old events fall off the
back), so emitting is always cheap and the log can stay on in
production.  Harnesses use it as an *assertion surface*: capture
``mark()`` before a phase, then check ``since(mark)`` for the kinds that
must (or must not) have fired, instead of re-deriving store state.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

#: default ring capacity — deep fault sweeps emit thousands of events;
#: the tail is what diagnosis needs
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class Event:
    """One structured event: a kind plus free-form fields."""

    seq: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(f"{k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"#{self.seq} {self.kind}" + (f" {extras}" if extras else "")


class EventLog:
    """Bounded, thread-safe ring of :class:`Event` records.

    ``seq`` is monotonically increasing for the life of the log, so a
    caller can remember ``mark()`` and later ask ``since(mark)`` even if
    intervening events have been evicted from the ring (evicted events
    are simply absent; the counts survive in :attr:`counts`).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        #: total emissions per kind for the life of the log (not bounded
        #: by the ring)
        self.counts: Dict[str, int] = {}

    def emit(self, kind: str, **fields: Any) -> Event:
        with self._lock:
            self._seq += 1
            event = Event(seq=self._seq, kind=kind, fields=fields)
            self._ring.append(event)
            self.counts[kind] = self.counts.get(kind, 0) + 1
        return event

    def mark(self) -> int:
        """The current sequence number; pass to :meth:`since` later."""
        with self._lock:
            return self._seq

    def events(self) -> List[Event]:
        with self._lock:
            return list(self._ring)

    def since(self, mark: int) -> List[Event]:
        with self._lock:
            return [e for e in self._ring if e.seq > mark]

    def find(self, kind: str, since: int = 0) -> List[Event]:
        with self._lock:
            return [e for e in self._ring if e.kind == kind and e.seq > since]

    def count(self, kind: str) -> int:
        with self._lock:
            return self.counts.get(kind, 0)

    def clear(self) -> None:
        """Drop all events and counts (sequence numbers keep rising)."""
        with self._lock:
            self._ring.clear()
            self.counts.clear()


# -- module-level singleton ---------------------------------------------------

_log = EventLog()
_suspended = False


def get_log() -> EventLog:
    return _log


def emit(kind: str, **fields: Any) -> Optional[Event]:
    """Emit to the global log; no-op (returns ``None``) while suspended."""
    if _suspended:
        return None
    return _log.emit(kind, **fields)


def suspended() -> bool:
    """True while :func:`repro.obs.suspend` has emission disabled."""
    return _suspended


def mark() -> int:
    return _log.mark()


def events() -> List[Event]:
    return _log.events()


def since(mark_: int) -> List[Event]:
    return _log.since(mark_)


def find(kind: str, since_: int = 0) -> List[Event]:
    return _log.find(kind, since_)


def count(kind: str) -> int:
    return _log.count(kind)


def counts() -> Dict[str, int]:
    with _log._lock:
        return dict(_log.counts)


def reset() -> None:
    _log.clear()
