"""Bundle of all platform pieces a TDB instance runs on."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.platform.archival import ArchivalStore, MemoryArchivalStore
from repro.platform.clock import Clock, SystemClock
from repro.platform.crash import CrashInjector
from repro.platform.faults import FaultInjector
from repro.platform.secret_store import SecretStore
from repro.platform.tamper_resistant import (
    TamperResistantCounter,
    TamperResistantStore,
)
from repro.platform.untrusted import MemoryUntrustedStore, UntrustedStore


@dataclass
class TrustedPlatform:
    """Everything §2.1 requires, wired together.

    Both tamper-resistant variants are provisioned; the chunk store uses
    whichever its validation mode needs (the hash store for direct hash
    validation, the counter for counter-based validation).
    """

    secret_store: SecretStore
    tamper_resistant: TamperResistantStore
    counter: TamperResistantCounter
    untrusted: UntrustedStore
    archival: ArchivalStore
    injector: CrashInjector
    #: I/O fault source shared with ``untrusted`` (None = perfect device)
    faults: Optional[FaultInjector] = None
    #: time source for retry backoff and lock timeouts
    clock: Clock = field(default_factory=SystemClock)

    def __post_init__(self) -> None:
        # Keep one fault source: whichever of the platform field or the
        # untrusted store's own injector is set wins (platform preferred).
        if self.faults is not None:
            self.untrusted.faults = self.faults
        elif self.untrusted.faults is not None:
            self.faults = self.untrusted.faults

    @classmethod
    def create_in_memory(
        cls,
        untrusted_size: int = 16 * 1024 * 1024,
        secret: Optional[bytes] = None,
        injector: Optional[CrashInjector] = None,
        faults: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
    ) -> "TrustedPlatform":
        """Provision a fresh in-memory platform (the common test fixture)."""
        injector = injector or CrashInjector()
        return cls(
            secret_store=SecretStore(secret or os.urandom(SecretStore.SIZE)),
            tamper_resistant=TamperResistantStore(),
            counter=TamperResistantCounter(),
            untrusted=MemoryUntrustedStore(untrusted_size, injector, faults),
            archival=MemoryArchivalStore(),
            injector=injector,
            faults=faults,
            clock=clock or SystemClock(),
        )

    def reboot(self) -> None:
        """Simulate a power failure: volatile state of the stores is lost.

        The untrusted store reverts un-flushed writes; the secret and
        tamper-resistant stores are persistent and survive unchanged.
        """
        self.untrusted.simulate_crash()
