"""Segment management (§4.9.4, §4.9.5).

The untrusted store is divided into fixed-size segments.  The log is a
sequence of potentially non-adjacent segments chained by next-segment
chunks.  This module tracks, per segment:

* ``used_bytes`` — how far the log wrote into the segment (the extent the
  cleaner and recovery may read sequentially);
* ``live_bytes`` — an *estimate* of current (non-obsolete) data, driving
  the cleaner's segment selection.  The estimate ignores sharing between
  partition copies (a version superseded in P may still be current in a
  copy of P), which can only make a segment look *emptier* than it is;
  the cleaner re-checks currency per version, so this costs efficiency,
  never correctness.

Layout: segment ``i`` occupies bytes
``[superblock_size + i·segment_size, superblock_size + (i+1)·segment_size)``
of the untrusted store.

Deviation from the paper, documented: each checkpoint starts a fresh
segment, so the residual log always begins at a segment boundary.  The
paper instead records an arbitrary leader location; starting a segment
costs a little space per checkpoint and simplifies the residual-chain
bookkeeping.
"""

from __future__ import annotations

from typing import List

from repro.chunkstore.leader import SegmentTable
from repro.errors import StorageFullError


class SegmentManager:
    """Allocation, tail tracking, and utilization accounting for segments."""

    def __init__(
        self, superblock_size: int, segment_size: int, store_size: int
    ) -> None:
        self.superblock_size = superblock_size
        self.segment_size = segment_size
        self.segment_count = (store_size - superblock_size) // segment_size
        if self.segment_count < 2:
            raise ValueError(
                "untrusted store too small: need at least 2 segments"
            )
        self.used_bytes: List[int] = [0] * self.segment_count
        self.live_bytes: List[int] = [0] * self.segment_count
        self.free_segments: List[int] = list(range(self.segment_count - 1, -1, -1))
        self.tail_segment: int = 0
        self.tail_offset: int = 0
        self.residual_segments: List[int] = []

    # -- geometry ------------------------------------------------------------

    def segment_start(self, segment: int) -> int:
        return self.superblock_size + segment * self.segment_size

    def segment_of(self, location: int) -> int:
        return (location - self.superblock_size) // self.segment_size

    @property
    def tail_location(self) -> int:
        return self.segment_start(self.tail_segment) + self.tail_offset

    def remaining_in_tail(self) -> int:
        return self.segment_size - self.tail_offset

    # -- allocation ----------------------------------------------------------

    def claim_free_segment(self) -> int:
        """Take a free segment for the log chain."""
        if not self.free_segments:
            raise StorageFullError(
                "no free segments; the log is full (clean or grow the store)"
            )
        segment = self.free_segments.pop()
        self.used_bytes[segment] = 0
        self.live_bytes[segment] = 0
        return segment

    def free_segment_count(self) -> int:
        return len(self.free_segments)

    def jump_to(self, segment: int) -> None:
        """Move the tail to the start of ``segment`` (already claimed)."""
        self.tail_segment = segment
        self.tail_offset = 0
        self.residual_segments.append(segment)

    def begin_residual(self, segment: int) -> None:
        """A checkpoint starts: the residual log restarts at ``segment``."""
        self.residual_segments = [segment]
        self.tail_segment = segment
        self.tail_offset = 0

    def advance(self, nbytes: int) -> None:
        self.tail_offset += nbytes
        if self.tail_offset > self.segment_size:
            raise AssertionError("log tail overran its segment")
        self.used_bytes[self.tail_segment] = max(
            self.used_bytes[self.tail_segment], self.tail_offset
        )

    def release_segment(self, segment: int) -> None:
        """Mark a cleaned segment free (volatile until next checkpoint)."""
        if segment in self.residual_segments:
            raise AssertionError("must not release a residual-log segment")
        self.used_bytes[segment] = 0
        self.live_bytes[segment] = 0
        self.free_segments.append(segment)

    # -- utilization ---------------------------------------------------------

    def add_live(self, location: int, nbytes: int) -> None:
        self.live_bytes[self.segment_of(location)] += nbytes

    def sub_live(self, location: int, nbytes: int) -> None:
        segment = self.segment_of(location)
        self.live_bytes[segment] = max(0, self.live_bytes[segment] - nbytes)

    def cleanable_segments(self) -> List[int]:
        """Checkpointed-log segments, emptiest first (§4.9.5)."""
        residual = set(self.residual_segments)
        free = set(self.free_segments)
        candidates = [
            seg
            for seg in range(self.segment_count)
            if seg not in residual and seg not in free and self.used_bytes[seg] > 0
        ]
        candidates.sort(key=lambda seg: self.live_bytes[seg])
        return candidates

    def stored_bytes(self) -> int:
        """Total bytes the log currently occupies (for §9.3/§9.5.2)."""
        return sum(self.used_bytes)

    def live_total(self) -> int:
        return sum(self.live_bytes)

    # -- persistence ---------------------------------------------------------

    def to_table(self) -> SegmentTable:
        return SegmentTable(
            tail_segment=self.tail_segment,
            free_segments=list(self.free_segments),
            used_bytes=list(self.used_bytes),
            live_bytes=list(self.live_bytes),
            residual_segments=list(self.residual_segments),
        )

    def load_table(self, table: SegmentTable) -> None:
        if len(table.used_bytes) != self.segment_count:
            raise ValueError(
                "segment table size mismatch: store geometry changed?"
            )
        self.tail_segment = table.tail_segment
        self.free_segments = list(table.free_segments)
        self.used_bytes = list(table.used_bytes)
        self.live_bytes = list(table.live_bytes)
        self.residual_segments = list(table.residual_segments)
        self.tail_offset = table.used_bytes[table.tail_segment]
