"""Descriptor cache (§4.5, §4.6).

The chunk map keeps a cache of descriptors indexed by chunk id.  The cache
serves two distinct roles:

* *performance* — the bottom-up read path stops at the first cached
  descriptor, so a warm cache avoids re-validating the whole path from the
  leader (the data a cached descriptor came from was already decrypted and
  validated);
* *correctness* — commits update descriptors **only** in the cache, marking
  them dirty and pinned (§4.6).  The persistent map chunks become stale
  until the next checkpoint; the bottom-up search order guarantees the
  stale persistent descriptor is never consulted while a dirty one shadows
  it.  Dirty descriptors are therefore never evicted.

A per-partition index (`ChunkId` sets keyed by partition id) makes
``drop_partition`` proportional to that partition's entries rather than a
scan of the whole cache — partition deallocation used to be O(cache size)
even for empty partitions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.chunkstore.descriptor import ChunkDescriptor
from repro.chunkstore.ids import ChunkId


class DescriptorCache:
    """LRU cache of chunk descriptors with dirty pinning.

    Thread-safety contract: **externally serialized**.  Every access runs
    under ``ChunkStore._lock`` — the cache participates in commit and
    checkpoint transitions (dirty pinning) that must be atomic with map
    updates, so an internal mutex would add overhead without removing the
    need for the store-level lock.  Do not touch it from code that does
    not hold the store lock.
    """

    def __init__(self, max_clean: int = 4096) -> None:
        self._max_clean = max_clean
        self._clean: "OrderedDict[ChunkId, ChunkDescriptor]" = OrderedDict()
        self._dirty: Dict[ChunkId, ChunkDescriptor] = {}
        # every cached chunk id (clean or dirty), grouped by partition,
        # so drop_partition never scans unrelated entries
        self._by_partition: Dict[int, Set[ChunkId]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- partition index -----------------------------------------------------

    def _index_add(self, chunk_id: ChunkId) -> None:
        self._by_partition.setdefault(chunk_id.partition, set()).add(chunk_id)

    def _index_discard(self, chunk_id: ChunkId) -> None:
        if chunk_id in self._clean or chunk_id in self._dirty:
            return  # still cached in the other role
        ids = self._by_partition.get(chunk_id.partition)
        if ids is not None:
            ids.discard(chunk_id)
            if not ids:
                del self._by_partition[chunk_id.partition]

    # -- lookups and inserts -------------------------------------------------

    def get(self, chunk_id: ChunkId) -> Optional[ChunkDescriptor]:
        if chunk_id in self._dirty:
            self.hits += 1
            return self._dirty[chunk_id]
        descriptor = self._clean.get(chunk_id)
        if descriptor is not None:
            self._clean.move_to_end(chunk_id)
            self.hits += 1
            return descriptor
        self.misses += 1
        return None

    def put_clean(self, chunk_id: ChunkId, descriptor: ChunkDescriptor) -> None:
        """Insert a descriptor read (and validated) from a map chunk."""
        if chunk_id in self._dirty:
            return  # a dirty descriptor shadows any persistent state
        self._clean[chunk_id] = descriptor
        self._index_add(chunk_id)
        while len(self._clean) > self._max_clean:
            evicted, _ = self._clean.popitem(last=False)
            self.evictions += 1
            self._index_discard(evicted)

    def put_dirty(self, chunk_id: ChunkId, descriptor: ChunkDescriptor) -> None:
        """Record a committed update; pinned until the next checkpoint."""
        self._clean.pop(chunk_id, None)
        self._dirty[chunk_id] = descriptor
        self._index_add(chunk_id)

    def drop(self, chunk_id: ChunkId) -> None:
        self._clean.pop(chunk_id, None)
        self._dirty.pop(chunk_id, None)
        self._index_discard(chunk_id)

    def drop_partition(self, partition: int) -> None:
        """Forget everything about a deallocated partition."""
        for cid in self._by_partition.pop(partition, ()):
            self._clean.pop(cid, None)
            self._dirty.pop(cid, None)

    def partition_entries(self, partition: int) -> Dict[ChunkId, ChunkDescriptor]:
        """Point-in-time copy of every cached descriptor of ``partition``
        (dirty entries shadow clean ones).  Snapshot views seed their
        private walk cache with this: dirty descriptors are the *only*
        record of post-checkpoint commits, since the persistent map is
        stale until the next checkpoint.  Caller holds the store lock."""
        out: Dict[ChunkId, ChunkDescriptor] = {}
        for cid in self._by_partition.get(partition, ()):
            descriptor = self._dirty.get(cid)
            if descriptor is None:
                descriptor = self._clean.get(cid)
            if descriptor is not None:
                out[cid] = descriptor
        return out

    # -- dirty management ----------------------------------------------------

    def dirty_count(self) -> int:
        return len(self._dirty)

    def dirty_items(self) -> Iterator[Tuple[ChunkId, ChunkDescriptor]]:
        return iter(list(self._dirty.items()))

    def clean_all_dirty(self) -> None:
        """After a checkpoint persists the map, dirty entries become clean."""
        for chunk_id, descriptor in self._dirty.items():
            self._clean[chunk_id] = descriptor
        self._dirty.clear()
        while len(self._clean) > self._max_clean:
            evicted, _ = self._clean.popitem(last=False)
            self.evictions += 1
            self._index_discard(evicted)

    def clear(self) -> None:
        self._clean.clear()
        self._dirty.clear()
        self._by_partition.clear()

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "clean_entries": len(self._clean),
            "dirty_entries": len(self._dirty),
            "partitions_indexed": len(self._by_partition),
        }


class ValidatedChunkCache:
    """Byte-bounded LRU of decrypted, hash-verified data-chunk payloads.

    Sits beside the :class:`DescriptorCache` in the read path: a hit skips
    the device round trip, the cipher, *and* the hasher.  Correctness rests
    on a strict population rule — entries are inserted **only** after a
    successful validated read (never write-through), so a cached payload is
    always bytes the hash-link path has already vouched for.

    Coherence is the store's responsibility: every event that can change or
    invalidate a chunk's committed bytes (write, deallocate, abort
    eviction, partition drop/reset, quarantine, repair, crash recovery)
    must call :meth:`invalidate` / :meth:`drop_partition` / :meth:`clear`.

    Thread-safety contract: **internally locked**.  Snapshot views read
    through this cache without holding ``ChunkStore._lock``, so unlike
    :class:`DescriptorCache` every public method takes a private mutex —
    concurrent get/put/invalidate cannot corrupt the LRU order, the
    per-partition index, or the byte accounting.
    """

    def __init__(self, max_bytes: int = 0) -> None:
        self.max_bytes = max_bytes
        self._mutex = threading.Lock()
        self._entries: "OrderedDict[ChunkId, bytes]" = OrderedDict()
        self._by_partition: Dict[int, Set[ChunkId]] = {}
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: hits that were satisfied by a prefetched entry's first use
        self.prefetch_hits = 0
        self._prefetched: Set[ChunkId] = set()

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def get(self, chunk_id: ChunkId) -> Optional[bytes]:
        with self._mutex:
            payload = self._entries.get(chunk_id)
            if payload is None:
                if self.enabled:
                    self.misses += 1
                return None
            self._entries.move_to_end(chunk_id)
            self.hits += 1
            if chunk_id in self._prefetched:
                self._prefetched.discard(chunk_id)
                self.prefetch_hits += 1
            return payload

    def contains(self, chunk_id: ChunkId) -> bool:
        """Membership probe that perturbs neither counters nor recency."""
        with self._mutex:
            return chunk_id in self._entries

    def put(
        self, chunk_id: ChunkId, payload: bytes, prefetched: bool = False
    ) -> None:
        if not self.enabled or len(payload) > self.max_bytes:
            return
        with self._mutex:
            old = self._entries.pop(chunk_id, None)
            if old is not None:
                self.current_bytes -= len(old)
            self._entries[chunk_id] = payload
            self.current_bytes += len(payload)
            if prefetched:
                self._prefetched.add(chunk_id)
            else:
                self._prefetched.discard(chunk_id)
            self._by_partition.setdefault(chunk_id.partition, set()).add(
                chunk_id
            )
            while self.current_bytes > self.max_bytes:
                evicted, blob = self._entries.popitem(last=False)
                self.current_bytes -= len(blob)
                self.evictions += 1
                self._forget(evicted)

    def invalidate(self, chunk_id: ChunkId) -> None:
        with self._mutex:
            payload = self._entries.pop(chunk_id, None)
            if payload is None:
                return
            self.current_bytes -= len(payload)
            self.invalidations += 1
            self._forget(chunk_id)

    def drop_partition(self, partition: int) -> None:
        with self._mutex:
            for cid in self._by_partition.pop(partition, ()):
                payload = self._entries.pop(cid, None)
                if payload is not None:
                    self.current_bytes -= len(payload)
                    self.invalidations += 1
                self._prefetched.discard(cid)

    def clear(self) -> None:
        with self._mutex:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._by_partition.clear()
            self._prefetched.clear()
            self.current_bytes = 0

    def _forget(self, chunk_id: ChunkId) -> None:
        # caller holds self._mutex
        self._prefetched.discard(chunk_id)
        ids = self._by_partition.get(chunk_id.partition)
        if ids is not None:
            ids.discard(chunk_id)
            if not ids:
                del self._by_partition[chunk_id.partition]

    def stats(self) -> Dict[str, int]:
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "prefetch_hits": self.prefetch_hits,
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
            }
