"""Chunk descriptors — the slots of the chunk map (§4.3).

A descriptor records everything needed to *locate* and *validate* the
current version of a chunk:

* status (unallocated / free / written — "unwritten" exists only in
  volatile memory: allocation is not persistent until the chunk is
  committed, §4.4);
* if written: the byte offset of the current version in the untrusted
  store and the total stored length of that version;
* if written: the expected hash of the chunk (computed over the plaintext
  header and body, so the hash binds the chunk's identity and size, not
  just its contents).

The arrows of Figure 3 are exactly these descriptors: embedding the hash
next to the location is what merges the Merkle tree into the location map.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.util.codec import Decoder, Encoder


class ChunkStatus(IntEnum):
    """Persistent chunk states (volatile UNWRITTEN is not encoded)."""

    UNALLOCATED = 0
    FREE = 1  # deallocated, rank available for reuse
    WRITTEN = 2


@dataclass
class ChunkDescriptor:
    """One slot of a map chunk (or a leader's root slot)."""

    status: ChunkStatus = ChunkStatus.UNALLOCATED
    location: int = 0
    length: int = 0
    body_hash: bytes = b""

    def is_written(self) -> bool:
        return self.status == ChunkStatus.WRITTEN

    def copy(self) -> "ChunkDescriptor":
        return ChunkDescriptor(self.status, self.location, self.length, self.body_hash)

    def same_version(self, other: "ChunkDescriptor") -> bool:
        """True if both descriptors denote the same chunk *content*.

        Used by partition diff (§5.3): hash equality means equal content
        even if the cleaner relocated one of the versions.  For partitions
        with a null hash function there is no content hash, so we fall
        back to comparing locations (a relocation then shows up as a
        difference — a documented over-approximation).
        """
        if self.status != other.status:
            return False
        if not self.is_written():
            return True
        if self.body_hash or other.body_hash:
            return self.body_hash == other.body_hash and self.length == other.length
        return self.location == other.location and self.length == other.length

    def encode(self, enc: Encoder) -> None:
        enc.uint(int(self.status))
        if self.status == ChunkStatus.WRITTEN:
            enc.uint(self.location)
            enc.uint(self.length)
            enc.bytes(self.body_hash)

    @classmethod
    def decode(cls, dec: Decoder) -> "ChunkDescriptor":
        status = ChunkStatus(dec.uint())
        if status == ChunkStatus.WRITTEN:
            location = dec.uint()
            length = dec.uint()
            body_hash = dec.bytes()
            return cls(status, location, length, body_hash)
        return cls(status)


def encode_descriptor_vector(descriptors) -> bytes:
    """Encode a map chunk body: a fixed-size vector of descriptors."""
    enc = Encoder()
    enc.uint(len(descriptors))
    for descriptor in descriptors:
        descriptor.encode(enc)
    return enc.finish()


def decode_descriptor_vector(data: bytes):
    """Decode a map chunk body."""
    dec = Decoder(data)
    count = dec.uint()
    descriptors = [ChunkDescriptor.decode(dec) for _ in range(count)]
    dec.expect_exhausted()
    return descriptors
