"""Simulated trusted platform (paper §2.1).

The paper requires four pieces of infrastructure:

* a *trusted processing environment* — here, simply the Python process;
  TDB code paths are "trusted", and the test-suite's attacker only touches
  the untrusted store through its explicit ``tamper_*`` API;
* a *secret store* — a few bytes readable only by trusted code
  (:class:`SecretStore`);
* a *tamper-resistant store* — a few writable bytes updated atomically
  (:class:`TamperResistantStore`), or the weaker monotonic
  :class:`TamperResistantCounter`;
* an *untrusted store* holding the database (:class:`MemoryUntrustedStore`,
  :class:`FileUntrustedStore`) and an *archival store* for backups
  (:class:`MemoryArchivalStore`, :class:`FileArchivalStore`).

The untrusted store records I/O statistics (:class:`IOStats`) which a
:class:`DiskModel` converts into modeled latency — the substitution for
the paper's NTFS-on-7200rpm-disk testbed described in DESIGN.md.
Fail-stop crashes are injected through :class:`CrashInjector`.
"""

from repro.platform.archival import (
    ArchivalStore,
    FileArchivalStore,
    MemoryArchivalStore,
)
from repro.platform.clock import Clock, FakeClock, SystemClock
from repro.platform.crash import CrashInjector
from repro.platform.disk_model import DiskModel
from repro.platform.faults import FaultConfig, FaultInjector
from repro.platform.retry import Retrier, RetryPolicy
from repro.platform.secret_store import SecretStore
from repro.platform.tamper_resistant import (
    TamperResistantCounter,
    TamperResistantStore,
)
from repro.platform.trusted_platform import TrustedPlatform
from repro.platform.untrusted import (
    FileUntrustedStore,
    IOStats,
    MemoryUntrustedStore,
    UntrustedStore,
)

__all__ = [
    "ArchivalStore",
    "MemoryArchivalStore",
    "FileArchivalStore",
    "Clock",
    "SystemClock",
    "FakeClock",
    "CrashInjector",
    "DiskModel",
    "FaultConfig",
    "FaultInjector",
    "Retrier",
    "RetryPolicy",
    "SecretStore",
    "TamperResistantStore",
    "TamperResistantCounter",
    "TrustedPlatform",
    "UntrustedStore",
    "MemoryUntrustedStore",
    "FileUntrustedStore",
    "IOStats",
]
