"""Symmetric-key message authentication (the paper's "signature").

Commit chunks and backup signatures are "signed with the secret key; the
signature need not be publicly verifiable, so it may be based on
symmetric-key encryption" (§4.8.2.2, citing MOV96).  We use HMAC, written
out explicitly (RFC 2104) rather than via :mod:`hmac`, keyed with the
secret-store key and parameterised by a hash function.
"""

from __future__ import annotations

from repro.crypto.hashing import HashFunction

_IPAD = 0x36
_OPAD = 0x5C


class Mac:
    """HMAC over a :class:`HashFunction`, keyed at construction."""

    def __init__(self, key: bytes, hash_function: HashFunction) -> None:
        if hash_function.digest_size == 0:
            raise ValueError("MAC requires a real hash function, not null")
        self._hash = hash_function
        block_size = 64  # SHA-1 and SHA-256 both use 64-byte blocks
        if len(key) > block_size:
            key = hash_function.hash(key)
        key = key.ljust(block_size, b"\x00")
        self._inner_key = bytes(b ^ _IPAD for b in key)
        self._outer_key = bytes(b ^ _OPAD for b in key)

    @property
    def tag_size(self) -> int:
        return self._hash.digest_size

    def sign(self, message: bytes) -> bytes:
        """HMAC tag for ``message`` under the construction key."""
        inner = self._hash.new()
        inner.update(self._inner_key)
        inner.update(message)
        outer = self._hash.new()
        outer.update(self._outer_key)
        outer.update(inner.digest())
        return outer.digest()

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time check that ``tag`` signs ``message``."""
        expected = self.sign(message)
        # Constant-time comparison; the simulated attacker is in-process.
        if len(expected) != len(tag):
            return False
        result = 0
        for a, b in zip(expected, tag):
            result |= a ^ b
        return result == 0
