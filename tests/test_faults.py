"""Unit tests for the I/O fault-injection layer: FaultInjector
determinism and stickiness, RetryPolicy/Retrier backoff with an
injectable clock, fault-free stats invariants, and LockManager deadlock
timeouts on a fake clock (no test here sleeps on the wall clock)."""

import random
import time

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.errors import (
    DeadlockError,
    PermanentIOError,
    RemoteTimeoutError,
    TransientIOError,
)
from repro.objectstore.locks import LockManager
from repro.platform import (
    FakeClock,
    FaultConfig,
    FaultInjector,
    MemoryUntrustedStore,
    Retrier,
    RetryPolicy,
    TrustedPlatform,
)

from tests.conftest import make_config, make_platform


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------


def _drive(injector: FaultInjector, steps: int = 400):
    """Run a fixed op schedule, returning the fault pattern observed."""
    pattern = []
    for i in range(steps):
        for hook in ("read", "write", "flush", "trip"):
            try:
                if hook == "read":
                    injector.on_read(i * 64, 64)
                elif hook == "write":
                    injector.on_write(i * 64, 64)
                elif hook == "flush":
                    injector.on_flush()
                else:
                    injector.on_round_trip("read")
            except Exception as exc:
                pattern.append((i, hook, type(exc).__name__))
    return pattern


def test_fault_injector_is_deterministic_per_seed():
    config = FaultConfig(
        read_error_rate=0.05,
        write_error_rate=0.05,
        flush_error_rate=0.05,
        timeout_rate=0.05,
        permanent_fraction=0.3,
    )
    a = _drive(FaultInjector(config, seed=7))
    b = _drive(FaultInjector(config, seed=7))
    c = _drive(FaultInjector(config, seed=8))
    assert a == b
    assert a != c
    assert a, "a 5% rate over 1600 draws must inject something"


def test_marked_bad_extent_is_sticky_until_cleared():
    injector = FaultInjector(FaultConfig(), seed=0)
    injector.enabled = False  # no random draws: only placed damage
    injector.mark_bad(100, 50)
    with pytest.raises(PermanentIOError):
        injector.on_read(120, 10)  # overlap
    with pytest.raises(PermanentIOError):
        injector.on_write(90, 20)  # straddles the start
    injector.on_read(150, 10)  # adjacent, no overlap
    assert injector.counts["permanent.read"] == 1
    injector.clear_bad(100, 50)
    injector.on_read(120, 10)  # healed


def test_permanent_fraction_capped_by_max_bad_extents():
    config = FaultConfig(
        read_error_rate=1.0, permanent_fraction=1.0, max_bad_extents=2
    )
    injector = FaultInjector(config, seed=1)
    for i in range(5):
        with pytest.raises((PermanentIOError, TransientIOError)):
            injector.on_read(i * 1000, 10)
    assert len(injector.bad_extents) == 2  # later faults degrade to transient


def test_batch_truncation_only_for_real_batches():
    config = FaultConfig(partial_response_rate=1.0)
    injector = FaultInjector(config, seed=3)
    assert injector.on_batch(1) == 1  # single extents cannot be truncated
    answered = injector.on_batch(8)
    assert 1 <= answered < 8


def test_timeout_raises_remote_timeout():
    injector = FaultInjector(FaultConfig(timeout_rate=1.0), seed=0)
    with pytest.raises(RemoteTimeoutError):
        injector.on_round_trip("flush")


# ---------------------------------------------------------------------------
# RetryPolicy / Retrier
# ---------------------------------------------------------------------------


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0.0)


def test_retry_delays_grow_and_cap():
    policy = RetryPolicy(
        base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0
    )
    rng = random.Random(0)
    delays = [policy.delay_for(i, rng) for i in range(5)]
    assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]


def test_retrier_retries_transients_then_succeeds_without_sleeping():
    clock = FakeClock()
    stats = MemoryUntrustedStore(1024).stats
    retrier = Retrier(
        RetryPolicy(max_attempts=4, jitter=0.0), clock=clock, stats=stats
    )
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise TransientIOError("flaky")
        return "ok"

    wall = time.monotonic()
    assert retrier.call(flaky) == "ok"
    assert time.monotonic() - wall < 0.5  # backoff on the fake clock only
    assert len(calls) == 3
    assert stats.retries == 2
    assert stats.gave_up == 0
    assert clock.sleeps == [0.005, 0.01]  # exponential schedule, no jitter


def test_retrier_gives_up_after_max_attempts():
    clock = FakeClock()
    stats = MemoryUntrustedStore(1024).stats
    retrier = Retrier(RetryPolicy(max_attempts=3), clock=clock, stats=stats)
    with pytest.raises(TransientIOError):
        retrier.call(lambda: (_ for _ in ()).throw(TransientIOError("x")))
    assert stats.gave_up == 1
    assert stats.retries == 2


def test_retrier_respects_deadline():
    clock = FakeClock()
    retrier = Retrier(
        RetryPolicy(max_attempts=100, base_delay=1.0, max_delay=1.0,
                    deadline=2.5, jitter=0.0),
        clock=clock,
    )
    attempts = []

    def always_fails():
        attempts.append(1)
        raise TransientIOError("down")

    with pytest.raises(TransientIOError):
        retrier.call(always_fails)
    assert len(attempts) == 3  # 0s, 1s, 2s; the next delay breaks 2.5s


def test_permanent_faults_are_not_retried():
    retrier = Retrier(RetryPolicy(), clock=FakeClock())
    attempts = []

    def dead():
        attempts.append(1)
        raise PermanentIOError("bad sector")

    with pytest.raises(PermanentIOError):
        retrier.call(dead)
    assert len(attempts) == 1


# ---------------------------------------------------------------------------
# fault-free runs report all-zero fault counters (satellite property test)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_fault_free_runs_report_zero_fault_counters(seed):
    """Property: with no fault injector, a seeded random workload's stats
    always show io_errors == retries == gave_up == quarantined == 0."""
    rng = random.Random(seed)
    platform = make_platform()
    store = ChunkStore.format(platform, make_config())
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name="ctr-sha256")])
    written = set()
    for step in range(rng.randint(5, 15)):
        roll = rng.random()
        if roll < 0.6 or not written:
            rank = rng.randrange(4)
            state = store.partitions[pid]
            if not (rank in state.pending_ranks
                    or state.is_committed_written(rank)):
                state.allocate_specific(rank)
            store.commit([ops.WriteChunk(pid, rank, rng.randbytes(64))])
            written.add(rank)
        elif roll < 0.8:
            store.read_chunk(pid, rng.choice(sorted(written)))
        else:
            store.checkpoint()
    stats = store.stats()
    assert stats["untrusted"]["io_errors"] == 0
    assert stats["untrusted"]["retries"] == 0
    assert stats["untrusted"]["gave_up"] == 0
    assert stats["faults"]["quarantined"] == 0
    assert stats["faults"]["quarantine_active"] == 0
    assert store.quarantined_chunks() == {}


# ---------------------------------------------------------------------------
# LockManager on an injectable clock (satellite)
# ---------------------------------------------------------------------------


def test_lock_timeout_uses_injected_clock_without_wall_sleep():
    clock = FakeClock()
    locks = LockManager(timeout=2.0, clock=clock)
    locks.acquire_exclusive(1, "obj")
    wall = time.monotonic()
    with pytest.raises(DeadlockError):
        locks.acquire_exclusive(2, "obj")  # 2s timeout on the fake clock
    assert time.monotonic() - wall < 0.5
    assert clock.now() >= 2.0
    assert locks.deadlocks_broken == 1
    # tx 1 still holds the lock; releasing lets a newcomer in instantly
    locks.release_all(1)
    locks.acquire_exclusive(3, "obj")


def test_platform_clock_is_shared_with_object_store_locks():
    from repro.objectstore.store import ObjectStore

    clock = FakeClock()
    platform = TrustedPlatform.create_in_memory(
        untrusted_size=4 * 1024 * 1024, clock=clock
    )
    store = ChunkStore.format(platform, make_config())
    objects = ObjectStore(store)
    assert objects.locks.clock is clock
    assert store.retrier.clock is clock
