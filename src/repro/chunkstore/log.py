"""Log representation: chunk versions and unnamed chunks (§4.9, §5.4).

The log is a sequence of chunk *versions*.  Each version is a fixed-size
encrypted header followed by an encrypted body:

* the header contains the version kind, the chunk id (for named chunks),
  and the plaintext/ciphertext body sizes.  Headers are always encrypted
  with the *system* cipher so that cleaning and recovery can demarcate
  versions without knowing which partition a chunk belongs to (§5.4);
* the body of a named chunk is encrypted with its partition's cipher;
  bodies of unnamed chunks use the system cipher.

Unnamed chunks have no position in the chunk map; they exist solely for
recovery from the residual log and are always obsolete in the checkpointed
log (§4.8.1).  The kinds:

``DEALLOCATE``
    records chunk and partition deallocations so recovery can redo them —
    and so an attacker cannot *un*-deallocate a chunk by suppressing its
    effect (the record is covered by the residual-log hash / commit MAC);
``COMMIT``
    counter-based validation (§4.8.2.2): the signed commit chunk carrying
    the commit count and the hash of the commit set;
``NEXT_SEGMENT``
    ends a segment with the index of the next segment in the (possibly
    non-adjacent) chain (§4.9.4);
``CLEANER``
    names the partitions in which a rewritten version is current, keyed by
    the rewritten version's new location (§5.5).

The expected chunk hash stored in descriptors is computed over
``header_plaintext ‖ body_plaintext``, which binds a chunk's identity and
size — not merely its contents — to the Merkle tree, defeating version-
swapping between positions.

**AEAD one-pass layout.**  When a cipher *authenticates*
(``cipher.authenticates``, the AES-GCM / ChaCha20-Poly1305 tier), the
separate hash pass above is redundant: the codec passes the plaintext
header as *associated data* to the body encryption, so one AEAD pass
already binds content, identity, and size; the value stored in the
descriptor is then the body ciphertext's trailing auth tag instead of
``H_p(header ‖ body)``.  Validation becomes a single ``decrypt`` (which
verifies the tag against key, nonce, ciphertext, and header) plus a
constant-time-irrelevant equality check of the stored tag against the
descriptor — catching replays of *older valid versions* of the same
chunk, because every encryption draws a fresh nonce and therefore a
distinct tag.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Tuple

from repro import obs
from repro.bench.profiler import record_metric
from repro.chunkstore.ids import ChunkId
from repro.crypto.cipher import Cipher
from repro.crypto.hashing import HashFunction
from repro.errors import TamperDetectedError
from repro.util.codec import Decoder, Encoder


class VersionKind(IntEnum):
    """Discriminates the five version layouts in the log (§4.9.1)."""

    NAMED = 1
    DEALLOCATE = 2
    COMMIT = 3
    NEXT_SEGMENT = 4
    CLEANER = 5


#: header plaintext: kind, partition, height, rank, body sizes
_HEADER_STRUCT = struct.Struct(">BIBIII")
HEADER_PLAIN_SIZE = _HEADER_STRUCT.size


@dataclass
class VersionHeader:
    """Decoded fixed-size version header (encrypted with the system
    cipher on the wire)."""

    kind: VersionKind
    partition: int = 0
    height: int = 0
    rank: int = 0
    body_plain_size: int = 0
    body_cipher_size: int = 0

    @property
    def chunk_id(self) -> ChunkId:
        return ChunkId(self.partition, self.height, self.rank)

    def pack(self) -> bytes:
        return _HEADER_STRUCT.pack(
            int(self.kind),
            self.partition,
            self.height,
            self.rank,
            self.body_plain_size,
            self.body_cipher_size,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "VersionHeader":
        try:
            kind, partition, height, rank, plain, cipher = _HEADER_STRUCT.unpack(data)
            return cls(VersionKind(kind), partition, height, rank, plain, cipher)
        except (struct.error, ValueError) as exc:
            raise TamperDetectedError(f"malformed version header: {exc}") from exc


class LogCodec:
    """Builds and parses chunk versions for one store instance.

    Holds the system cipher (headers, unnamed bodies) and offers helpers
    parameterised by partition cipher/hash for named bodies.
    """

    def __init__(self, system_cipher: Cipher, system_hash: HashFunction) -> None:
        self.system_cipher = system_cipher
        self.system_hash = system_hash
        self.header_cipher_size = system_cipher.ciphertext_size(HEADER_PLAIN_SIZE)

    # -- sizes ---------------------------------------------------------------

    def version_size(self, body_plain_size: int, body_cipher: Cipher) -> int:
        return self.header_cipher_size + body_cipher.ciphertext_size(body_plain_size)

    # -- building ------------------------------------------------------------

    def build_named(
        self,
        chunk_id: ChunkId,
        body: bytes,
        body_cipher: Cipher,
        body_hash: HashFunction,
    ) -> Tuple[bytes, bytes]:
        """Encode a named chunk version.

        Returns ``(version_bytes, expected_hash)`` where ``expected_hash``
        is the descriptor hash: H_p(header_plain ‖ body_plain) — or, for
        an authenticating cipher, the body ciphertext's trailing AEAD tag
        (the header rides along as associated data, so identity and size
        are bound in the same pass and the hash pass is skipped).
        """
        header = VersionHeader(
            VersionKind.NAMED,
            chunk_id.partition,
            chunk_id.height,
            chunk_id.rank,
            len(body),
            body_cipher.ciphertext_size(len(body)),
        )
        header_plain = header.pack()
        if body_cipher.authenticates:
            body_ct = body_cipher.encrypt(body, aad=header_plain)
            digest = body_ct[-body_cipher.TAG_SIZE :]
        else:
            body_ct = body_cipher.encrypt(body)
            hasher = body_hash.new()
            hasher.update(header_plain)
            hasher.update(body)
            body_hash.counters.digests += 1
            body_hash.counters.bytes_hashed += len(header_plain) + len(body)
            record_metric("bytes hashed", len(header_plain) + len(body))
            digest = hasher.digest()
        version = self.system_cipher.encrypt(header_plain) + body_ct
        obs.add("chunkstore.log.versions_built")
        obs.add("chunkstore.log.bytes_built", len(version))
        return version, digest

    def build_unnamed(self, kind: VersionKind, body: bytes) -> bytes:
        """Encode an unnamed chunk version (system-encrypted body).  Under
        an authenticating system cipher the header is bound as associated
        data, so e.g. commit records arrive transport-authenticated."""
        header = VersionHeader(
            kind, 0, 0, 0, len(body), self.system_cipher.ciphertext_size(len(body))
        )
        header_plain = header.pack()
        if self.system_cipher.authenticates:
            body_ct = self.system_cipher.encrypt(body, aad=header_plain)
        else:
            body_ct = self.system_cipher.encrypt(body)
        version = self.system_cipher.encrypt(header_plain) + body_ct
        obs.add("chunkstore.log.versions_built")
        obs.add("chunkstore.log.bytes_built", len(version))
        return version

    def descriptor_hash(
        self, header: VersionHeader, body: bytes, body_hash: HashFunction
    ) -> bytes:
        """The expected-hash value stored in descriptors:
        ``H_p(header_plain ‖ body_plain)`` — binding identity and size."""
        hasher = body_hash.new()
        hasher.update(header.pack())
        hasher.update(body)
        body_hash.counters.digests += 1
        body_hash.counters.bytes_hashed += HEADER_PLAIN_SIZE + len(body)
        record_metric("bytes hashed", HEADER_PLAIN_SIZE + len(body))
        return hasher.digest()

    # -- parsing -------------------------------------------------------------

    def parse_header(self, header_ct: bytes) -> VersionHeader:
        """Decrypt and decode a version header; undecryptable or malformed
        bytes raise :class:`TamperDetectedError`."""
        try:
            plain = self.system_cipher.decrypt(header_ct)
        except ValueError as exc:
            raise TamperDetectedError(f"undecryptable version header: {exc}") from exc
        if len(plain) != HEADER_PLAIN_SIZE:
            raise TamperDetectedError("version header has wrong plaintext size")
        obs.add("chunkstore.log.headers_parsed")
        return VersionHeader.unpack(plain)

    def decrypt_body(self, header: VersionHeader, body_ct: bytes, cipher: Cipher) -> bytes:
        """Decrypt a version body and check it against the header's
        declared plaintext size (mismatch ⇒ tampering).  Authenticating
        ciphers additionally verify the header as associated data, so a
        body spliced under a different header fails here.  Accepts any
        bytes-like ``body_ct`` (recovery and batched reads pass
        ``memoryview`` slices of whole-span reads)."""
        try:
            if cipher.authenticates:
                body = cipher.decrypt(body_ct, aad=header.pack())
            else:
                body = cipher.decrypt(body_ct)
        except ValueError as exc:
            raise TamperDetectedError(f"undecryptable chunk body: {exc}") from exc
        if len(body) != header.body_plain_size:
            raise TamperDetectedError(
                f"chunk body size mismatch: header says {header.body_plain_size}, "
                f"got {len(body)}"
            )
        return body

    def validate_named(
        self,
        header: VersionHeader,
        body_ct: bytes,
        cipher: Cipher,
        body_hash: HashFunction,
    ) -> Tuple[bytes, bytes]:
        """Decrypt a named body and produce the descriptor-comparable
        digest in one place: ``(body_plain, digest)``.

        For authenticating ciphers this is the **one-pass** path — the
        AEAD decrypt has already verified content, identity (header as
        AAD), and size, and the digest is simply the stored trailing tag;
        for legacy ciphers it is decrypt + the separate hash pass.  The
        caller compares ``digest`` against the descriptor's recorded
        value either way (that comparison is what defeats replays of
        older valid versions)."""
        body = self.decrypt_body(header, body_ct, cipher)
        if cipher.authenticates:
            digest = bytes(body_ct[-cipher.TAG_SIZE :])
        else:
            digest = self.descriptor_hash(header, body, body_hash)
        return body, digest


# -- unnamed chunk payloads ---------------------------------------------------


@dataclass
class DeallocateRecord:
    """Body of a DEALLOCATE chunk: what this commit deallocated."""

    chunk_ids: List[ChunkId]
    partition_ids: List[int]

    def encode(self) -> bytes:
        enc = Encoder()
        enc.uint(len(self.chunk_ids))
        for cid in self.chunk_ids:
            enc.uint(cid.partition)
            enc.uint(cid.height)
            enc.uint(cid.rank)
        enc.uint(len(self.partition_ids))
        for pid in self.partition_ids:
            enc.uint(pid)
        return enc.finish()

    @classmethod
    def decode(cls, data: bytes) -> "DeallocateRecord":
        dec = Decoder(data)
        chunk_ids = []
        for _ in range(dec.uint()):
            partition = dec.uint()
            height = dec.uint()
            rank = dec.uint()
            chunk_ids.append(ChunkId(partition, height, rank))
        partition_ids = [dec.uint() for _ in range(dec.uint())]
        dec.expect_exhausted()
        return cls(chunk_ids, partition_ids)


@dataclass
class CommitRecord:
    """Body of a COMMIT chunk (counter-based validation, §4.8.2.2)."""

    count: int
    set_hash: bytes
    mac_tag: bytes

    def signed_message(self) -> bytes:
        return Encoder().uint(self.count).bytes(self.set_hash).finish()

    def encode(self) -> bytes:
        enc = Encoder()
        enc.uint(self.count)
        enc.bytes(self.set_hash)
        enc.bytes(self.mac_tag)
        return enc.finish()

    @classmethod
    def decode(cls, data: bytes) -> "CommitRecord":
        dec = Decoder(data)
        count = dec.uint()
        set_hash = dec.bytes()
        mac_tag = dec.bytes()
        dec.expect_exhausted()
        return cls(count, set_hash, mac_tag)


@dataclass
class NextSegmentRecord:
    """Body of a NEXT_SEGMENT chunk: where the log continues (§4.9.4).

    Fixed-width encoding so that the size of a next-segment version is a
    constant — the segment manager reserves exactly that much room at the
    end of every segment.
    """

    next_segment: int

    BODY_SIZE = 4

    def encode(self) -> bytes:
        return struct.pack(">I", self.next_segment)

    @classmethod
    def decode(cls, data: bytes) -> "NextSegmentRecord":
        if len(data) != cls.BODY_SIZE:
            raise TamperDetectedError("malformed next-segment record")
        return cls(struct.unpack(">I", data)[0])


@dataclass
class CleanerRecord:
    """Body of a CLEANER chunk (§5.5).

    A version the cleaner rewrites keeps its original header identity
    (partition, height, rank) but may be current only in *copies* of that
    partition.  The cleaner therefore announces, **before** the rewritten
    versions, the exact set of partitions each one is current in: entry
    *i* describes the *i*-th rewritten version that follows in the same
    commit set.  Recovery consumes the queue in order and installs each
    rewritten version's descriptor into exactly those partitions — never
    into a partition where the version is obsolete.
    """

    #: ordered (height, rank, [pids]) for the rewritten versions that follow
    entries: List[Tuple[int, int, List[int]]]

    def encode(self) -> bytes:
        enc = Encoder()
        enc.uint(len(self.entries))
        for height, rank, pids in self.entries:
            enc.uint(height)
            enc.uint(rank)
            enc.uint(len(pids))
            for pid in pids:
                enc.uint(pid)
        return enc.finish()

    @classmethod
    def decode(cls, data: bytes) -> "CleanerRecord":
        dec = Decoder(data)
        entries: List[Tuple[int, int, List[int]]] = []
        for _ in range(dec.uint()):
            height = dec.uint()
            rank = dec.uint()
            pids = [dec.uint() for _ in range(dec.uint())]
            entries.append((height, rank, pids))
        dec.expect_exhausted()
        return cls(entries)
