"""Log cleaning (§4.9.5, §5.5): reclamation, copy-awareness, laundering
resistance, crash interplay."""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.chunkstore.cleaner import Cleaner
from repro.chunkstore.ids import data_id
from repro.errors import TamperDetectedError
from tests.conftest import make_config, make_platform


def churned_store(segment_size=16 * 1024, size=1024 * 1024, rounds=30, **overrides):
    platform = make_platform(size=size)
    store = ChunkStore.format(
        platform, make_config(segment_size=segment_size, delta_ut=5, **overrides)
    )
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")])
    ranks = [store.allocate_chunk(pid) for _ in range(10)]
    store.commit([ops.WriteChunk(pid, r, bytes(400)) for r in ranks])
    for round_no in range(rounds):
        for rank in ranks:
            store.commit(
                [ops.WriteChunk(pid, rank, bytes([round_no % 251]) * 400)]
            )
    return platform, store, pid, ranks


class TestCleaning:
    def test_cleaning_reclaims_space(self):
        platform, store, pid, ranks = churned_store()
        before = store.stored_bytes()
        cleaned = store.clean(max_segments=100)
        assert cleaned > 0
        assert store.stored_bytes() < before // 2

    def test_data_intact_after_cleaning(self):
        platform, store, pid, ranks = churned_store()
        expected = {r: store.read_chunk(pid, r) for r in ranks}
        store.clean(max_segments=100)
        for rank, value in expected.items():
            assert store.read_chunk(pid, rank) == value

    def test_cleaned_store_recovers(self):
        platform, store, pid, ranks = churned_store()
        expected = {r: store.read_chunk(pid, r) for r in ranks}
        store.clean(max_segments=100)
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for rank, value in expected.items():
            assert reopened.read_chunk(pid, rank) == value

    def test_cleaner_never_cleans_residual_segments(self):
        platform, store, pid, ranks = churned_store()
        store.checkpoint()
        residual = set(store.segman.residual_segments)
        cleaner = Cleaner(store)
        while cleaner.clean_one() is not None:
            pass
        assert residual & set(store.segman.residual_segments) == residual

    def test_cleaner_preserves_snapshot_only_versions(self):
        """A version obsolete in the source but current in a snapshot must
        be preserved by cleaning (§5.5)."""
        platform, store, pid, ranks = churned_store(rounds=5)
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        snap_values = {r: store.read_chunk(snap, r) for r in ranks}
        # churn the source so the snapshot's versions become source-obsolete
        for round_no in range(20):
            for rank in ranks:
                store.commit([ops.WriteChunk(pid, rank, b"new" * 100)])
        store.clean(max_segments=100)
        for rank, value in snap_values.items():
            assert store.read_chunk(snap, rank) == value
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for rank, value in snap_values.items():
            assert reopened.read_chunk(snap, rank) == value

    def test_cleaner_does_not_launder_tampered_chunks(self):
        """The cleaner validates before rewriting (§4.9.5): a tampered
        current version must raise, not get re-hashed into validity."""
        platform, store, pid, ranks = churned_store(rounds=3)
        store.checkpoint()
        descriptor = store._get_descriptor(data_id(pid, ranks[0]))
        offset = descriptor.location + descriptor.length - 2
        byte = platform.untrusted.tamper_read(offset, 1)
        platform.untrusted.tamper_write(offset, bytes([byte[0] ^ 1]))
        store.cache.clear()
        with pytest.raises(TamperDetectedError):
            # clean everything; the segment holding the tampered current
            # version must trip validation
            while store.clean(max_segments=1):
                pass

    def test_cleaning_stats(self):
        platform, store, pid, ranks = churned_store()
        store.checkpoint()
        cleaner = Cleaner(store)
        cleaner.clean_one()
        assert cleaner.cleaned_segments == 1

    def test_utilization_estimates_bounded(self):
        platform, store, pid, ranks = churned_store(rounds=10)
        for segment in range(store.segman.segment_count):
            assert (
                store.segman.live_bytes[segment]
                <= store.segman.used_bytes[segment]
                <= store.config.segment_size
            )

    def test_cleaning_empty_store_is_noop(self, store):
        assert store.clean() == 0


class TestCleanerCrashes:
    def test_crash_during_cleaning_commit(self):
        from repro.errors import CrashError

        platform, store, pid, ranks = churned_store()
        expected = {r: store.read_chunk(pid, r) for r in ranks}
        store.checkpoint()
        platform.injector.arm("commit.before_flush")
        with pytest.raises(CrashError):
            store.clean(max_segments=100)
        platform.injector.disarm()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for rank, value in expected.items():
            assert reopened.read_chunk(pid, rank) == value

    def test_crash_after_cleaning_commit(self):
        from repro.errors import CrashError

        platform, store, pid, ranks = churned_store()
        expected = {r: store.read_chunk(pid, r) for r in ranks}
        store.checkpoint()
        # crash right after a cleaning commit has become durable
        platform.injector.arm("commit.after_flush", countdown=0)
        with pytest.raises(CrashError):
            store.clean(max_segments=100)
        platform.injector.disarm()
        platform.reboot()
        reopened = ChunkStore.open(platform)
        for rank, value in expected.items():
            assert reopened.read_chunk(pid, rank) == value
        # and the store keeps working
        reopened.commit([ops.WriteChunk(pid, ranks[0], b"post-crash")])
        assert reopened.read_chunk(pid, ranks[0]) == b"post-crash"
