"""The bind/release digital-goods benchmark (§9.5.1, Figures 10–12).

The paper's benchmark "models two operations related to vending digital
goods":

* **Bind** — a vendor binds three alternative contracts to a digital good;
* **Release** — a consumer releases the digital good, selecting one of the
  three contracts randomly.

"The benchmark first creates 30 collections for different object types.
Each collection has one to four indexes.  The benchmark loads the cache
before executing an experiment.  The experiment consists of 10
consecutive bind or release operations."  Figure 10 fixes the operation
mix::

              read   update   delete   add   commit
    release    781      181       10     4       20
    bind       722      733       10   220       20

We treat Figure 10 as the *specification* of the workload: each
experiment executes exactly that many database operations, spread evenly
over the 10 bind/release operations (two transactions each — vendor-side
then ledger-side), with the touched objects drawn from the 30-collection
schema by a seeded RNG.  Running the same mix through the TDB adapter and
the XDB adapter is what Figures 11 and 12 measure.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Figure 10 operation mix (totals over an experiment of 10 operations)
FIGURE_10 = {
    "release": {"read": 781, "update": 181, "delete": 10, "add": 4, "commit": 20},
    "bind": {"read": 722, "update": 733, "delete": 10, "add": 220, "commit": 20},
}

#: number of collections (§9.5.1)
COLLECTION_COUNT = 30
#: objects initially loaded per collection
INITIAL_OBJECTS = 40


@dataclass
class IndexSpec:
    """One index of a workload collection (field-extracting key)."""

    name: str
    field: str
    sorted_index: bool


@dataclass
class CollectionSpec:
    """One of the 30 workload collections and its 1–4 indexes."""

    name: str
    indexes: List[IndexSpec]


def make_schema(seed: int = 7) -> List[CollectionSpec]:
    """30 collections with 1–4 indexes each (deterministic)."""
    rng = random.Random(seed)
    base_names = [
        "vendors", "goods", "contracts", "accounts", "licenses",
        "usage_records", "keys", "certificates", "offers", "receipts",
        "devices", "users", "policies", "royalties", "bundles",
        "coupons", "regions", "currencies", "taxes", "disputes",
        "refunds", "trials", "subscriptions", "meters", "quotas",
        "events", "sessions", "tokens", "grants", "audits",
    ]
    schema = []
    for name in base_names[:COLLECTION_COUNT]:
        index_count = rng.randint(1, 4)
        fields = ["ident", "price", "owner", "status"][:index_count]
        indexes = [
            IndexSpec(
                name=f"{name}_by_{field_name}",
                field=field_name,
                # first index unsorted (exact match), later ones sorted
                sorted_index=(position > 0),
            )
            for position, field_name in enumerate(fields)
        ]
        schema.append(CollectionSpec(name, indexes))
    return schema


def make_object(rng: random.Random, collection: str, ident: int) -> Dict[str, Any]:
    """A synthetic digital-goods object (~150–400 bytes pickled)."""
    return {
        "type": collection,
        "ident": ident,
        "price": rng.randint(0, 999),
        "owner": rng.randint(0, 99),
        "status": rng.choice(["active", "pending", "expired"]),
        "uses": 0,
        "payload": bytes(rng.getrandbits(8) for _ in range(rng.randint(80, 300))),
    }


class DBAdapter(ABC):
    """What the workload needs from a database system (TDB or XDB)."""

    def __init__(self) -> None:
        self.op_counts = {"read": 0, "update": 0, "delete": 0, "add": 0, "commit": 0}

    @abstractmethod
    def create_collection(self, spec: CollectionSpec) -> Any: ...

    @abstractmethod
    def begin(self) -> None: ...

    @abstractmethod
    def commit(self) -> None: ...

    @abstractmethod
    def insert(self, coll: Any, obj: Dict[str, Any]) -> Any: ...

    @abstractmethod
    def read(self, coll: Any, handle: Any) -> Dict[str, Any]: ...

    def peek(self, coll: Any, handle: Any) -> Dict[str, Any]:
        """Fetch an object's current value *without* counting a read —
        used by the update path, whose implicit fetch is part of the
        update in Figure 10's accounting (bind has more updates than
        reads, so updates cannot each imply a counted read)."""
        counts = dict(self.op_counts)
        value = self.read(coll, handle)
        self.op_counts.update(counts)
        return value

    @abstractmethod
    def update(self, coll: Any, handle: Any, obj: Dict[str, Any]) -> None: ...

    @abstractmethod
    def delete(self, coll: Any, handle: Any) -> None: ...

    @abstractmethod
    def exact(self, coll: Any, index_name: str, key: Any) -> List[Any]: ...

    def stored_bytes(self) -> int:
        return 0


@dataclass
class _LiveSet:
    """The workload's view of which objects exist."""

    handles: Dict[str, List[Any]] = field(default_factory=dict)
    next_ident: int = 100000

    def pick(self, rng: random.Random, collection: str) -> Any:
        return rng.choice(self.handles[collection])

    def add(self, collection: str, handle: Any) -> None:
        self.handles[collection].append(handle)

    def remove(self, rng: random.Random, collection: str) -> Any:
        handles = self.handles[collection]
        index = rng.randrange(len(handles))
        return handles.pop(index)


class Workload:
    """Builds the schema and runs bind/release experiments on an adapter."""

    def __init__(self, adapter: DBAdapter, seed: int = 7) -> None:
        self.adapter = adapter
        self.schema = make_schema(seed)
        self.rng = random.Random(seed * 31 + 1)
        self.collections: Dict[str, Any] = {}
        self.live = _LiveSet()

    # ------------------------------------------------------------------

    def setup(self) -> None:
        """Create the 30 collections and the initial population."""
        adapter = self.adapter
        adapter.begin()
        for spec in self.schema:
            self.collections[spec.name] = adapter.create_collection(spec)
        adapter.commit()
        for spec in self.schema:
            adapter.begin()
            self.live.handles[spec.name] = []
            for ident in range(INITIAL_OBJECTS):
                obj = make_object(self.rng, spec.name, ident)
                handle = adapter.insert(self.collections[spec.name], obj)
                self.live.add(spec.name, handle)
            adapter.commit()
        # "the benchmark loads the cache before executing an experiment"
        self.warm_cache()
        for key in adapter.op_counts:
            adapter.op_counts[key] = 0

    def warm_cache(self) -> None:
        adapter = self.adapter
        adapter.begin()
        for name, handles in self.live.handles.items():
            for handle in handles:
                adapter.read(self.collections[name], handle)
        adapter.commit()

    # ------------------------------------------------------------------

    def run_experiment(self, kind: str, operations: int = 10) -> Dict[str, int]:
        """Run ``operations`` bind or release operations; returns the
        observed operation counts (compare with Figure 10)."""
        mix = FIGURE_10[kind]
        budgets = {
            op: _spread(total, operations) for op, total in mix.items() if op != "commit"
        }
        commits_per_op = mix["commit"] // operations
        for index in range(operations):
            self._one_operation(
                kind,
                reads=budgets["read"][index],
                updates=budgets["update"][index],
                deletes=budgets["delete"][index],
                adds=budgets["add"][index],
                commits=commits_per_op,
            )
        return dict(self.adapter.op_counts)

    def _one_operation(
        self,
        kind: str,
        reads: int,
        updates: int,
        deletes: int,
        adds: int,
        commits: int,
    ) -> None:
        """One bind or release: the op mix split across ``commits``
        transactions (vendor-side work, then ledger-side work)."""
        adapter = self.adapter
        rng = self.rng
        read_split = _spread(reads, commits)
        update_split = _spread(updates, commits)
        delete_split = _spread(deletes, commits)
        add_split = _spread(adds, commits)
        for phase in range(commits):
            adapter.begin()
            # reads: browse the catalog — exact-match lookups plus direct
            # object reads across the schema
            for _ in range(read_split[phase]):
                spec = rng.choice(self.schema)
                if rng.random() < 0.15:
                    index = spec.indexes[0]
                    hits = adapter.exact(
                        self.collections[spec.name], index.name, rng.randrange(40)
                    )
                    if hits:
                        adapter.read(self.collections[spec.name], hits[0])
                    else:
                        handle = self.live.pick(rng, spec.name)
                        adapter.read(self.collections[spec.name], handle)
                else:
                    handle = self.live.pick(rng, spec.name)
                    adapter.read(self.collections[spec.name], handle)
            # updates: debit accounts, bump use counters, occasionally
            # reprice (which moves the object in its price index)
            for update_index in range(update_split[phase]):
                spec = rng.choice(self.schema)
                handle = self.live.pick(rng, spec.name)
                obj = dict(adapter.peek(self.collections[spec.name], handle))
                obj["uses"] += 1
                if update_index % 8 == 0:
                    obj["price"] = rng.randint(0, 999)
                adapter.update(self.collections[spec.name], handle, obj)
            # deletes: retire an expired license/receipt
            for _ in range(delete_split[phase]):
                spec = rng.choice(self.schema)
                if len(self.live.handles[spec.name]) > 5:
                    handle = self.live.remove(rng, spec.name)
                    adapter.delete(self.collections[spec.name], handle)
            # adds: new contracts (bind) or fresh licenses (release)
            for _ in range(add_split[phase]):
                spec = rng.choice(self.schema)
                self.live.next_ident += 1
                obj = make_object(rng, spec.name, self.live.next_ident)
                handle = adapter.insert(self.collections[spec.name], obj)
                self.live.add(spec.name, handle)
            adapter.commit()


def _spread(total: int, buckets: int) -> List[int]:
    """Distribute ``total`` across ``buckets`` as evenly as possible."""
    base = total // buckets
    remainder = total % buckets
    return [base + (1 if index < remainder else 0) for index in range(buckets)]
