"""Every example must run, end to end, as a subprocess — examples are
documentation, and documentation that doesn't execute rots."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize("example", _EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "BUG" not in result.stdout


def test_examples_exist():
    names = {p.name for p in _EXAMPLES}
    assert {
        "quickstart.py",
        "digital_goods.py",
        "backup_restore.py",
        "tamper_demo.py",
        "trusted_paging.py",
    } <= names
