"""Cross-cutting crypto properties: no plaintext leakage, key
sensitivity, deterministic sizes — for every registered cipher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.registry import (
    CIPHER_NAMES,
    KEY_SIZES,
    cipher_available,
    make_cipher,
)

REAL_CIPHERS = [name for name in CIPHER_NAMES if name != "null"]


def key_for(name, fill=0x5C):
    return bytes([fill]) * KEY_SIZES[name]


@pytest.fixture(autouse=True)
def _skip_unavailable(request):
    # the AEAD tier has no pure-Python fallback: on a build without the
    # backend its factories refuse with a typed error (tested in
    # test_crypto_aead.py), so the property sweep skips those names
    callspec = getattr(request.node, "callspec", None)
    name = callspec.params.get("name") if callspec is not None else None
    if name is not None and not cipher_available(name):
        pytest.skip(f"{name} backend unavailable in this build")


class TestNoLeakage:
    @pytest.mark.parametrize("name", REAL_CIPHERS)
    def test_marker_never_appears_in_ciphertext(self, name):
        cipher = make_cipher(name, key_for(name))
        marker = b"VERY-RECOGNIZABLE-MARKER"
        for pad in (b"", b"x" * 100):
            ciphertext = cipher.encrypt(pad + marker + pad)
            assert marker not in ciphertext

    @pytest.mark.parametrize("name", REAL_CIPHERS)
    def test_all_zero_plaintext_not_zero_ciphertext(self, name):
        cipher = make_cipher(name, key_for(name))
        ciphertext = cipher.encrypt(bytes(256))
        body = ciphertext[8:]  # beyond IV/nonce
        assert body != bytes(len(body))

    @pytest.mark.parametrize("name", REAL_CIPHERS)
    def test_wrong_key_does_not_decrypt(self, name):
        cipher = make_cipher(name, key_for(name, 0x11))
        other = make_cipher(name, key_for(name, 0x22))
        plaintext = b"the plaintext to protect" * 4
        ciphertext = cipher.encrypt(plaintext)
        try:
            assert other.decrypt(ciphertext) != plaintext
        except ValueError:
            pass  # padding failure is an equally good outcome

    @pytest.mark.parametrize("name", REAL_CIPHERS)
    def test_equal_plaintexts_produce_distinct_ciphertexts(self, name):
        """Fresh IV/nonce per message: a traffic observer cannot even
        tell that two chunks hold equal plaintext."""
        cipher = make_cipher(name, key_for(name))
        a = cipher.encrypt(b"same state")
        b = cipher.encrypt(b"same state")
        assert a != b


class TestSizeDeterminism:
    @pytest.mark.parametrize("name", CIPHER_NAMES)
    @given(size=st.integers(0, 1500))
    @settings(max_examples=20, deadline=None)
    def test_ciphertext_size_function_exact(self, name, size):
        cipher = make_cipher(name, key_for(name))
        assert len(cipher.encrypt(b"q" * size)) == cipher.ciphertext_size(size)

    @pytest.mark.parametrize("name", CIPHER_NAMES)
    def test_size_is_monotone(self, name):
        cipher = make_cipher(name, key_for(name))
        sizes = [cipher.ciphertext_size(n) for n in range(0, 64)]
        assert sizes == sorted(sizes)


class TestRoundtripEverywhere:
    @pytest.mark.parametrize("name", CIPHER_NAMES)
    @given(plaintext=st.binary(max_size=600))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip(self, name, plaintext):
        cipher = make_cipher(name, key_for(name))
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext
