"""Whole-platform snapshots for the correctness harness.

The attacker API (:meth:`UntrustedStore.tamper_image` /
:meth:`tamper_replay`) can only save and restore the *untrusted* device —
that is the point: the tamper-resistant state survives a replay, which is
how replays are caught.  The harness, however, needs something stronger: a
way to rewind the *entire world* (untrusted image, tamper-resistant store,
monotonic counter, secret) so that hundreds of seeded mutation trials can
each start from an identical, freshly-provisioned state without paying the
cost of rebuilding the store.

:class:`PlatformSnapshot` is that VM-style snapshot.  It is harness
machinery, not an attacker capability — nothing in ``src/repro`` outside
this package may use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.platform.archival import MemoryArchivalStore
from repro.platform.clock import Clock
from repro.platform.crash import CrashInjector
from repro.platform.faults import FaultInjector
from repro.platform.secret_store import SecretStore
from repro.platform.tamper_resistant import (
    TamperResistantCounter,
    TamperResistantStore,
)
from repro.platform.trusted_platform import TrustedPlatform
from repro.platform.untrusted import MemoryUntrustedStore


@dataclass(frozen=True)
class PlatformSnapshot:
    """Immutable copy of everything a :class:`TrustedPlatform` persists.

    Only durable state is captured: un-flushed writes in the untrusted
    store's undo journal are treated as lost (capture after a flush, or
    accept the crash semantics).
    """

    secret: bytes
    image: bytes
    tr_data: bytes
    counter_value: int

    @classmethod
    def capture(cls, platform: TrustedPlatform) -> "PlatformSnapshot":
        """Snapshot the durable state of ``platform`` (leaves it untouched
        except for rolling back any un-flushed writes in the copy)."""
        return cls(
            secret=platform.secret_store.read(),
            image=platform.untrusted.tamper_image(),
            tr_data=platform.tamper_resistant.read(),
            counter_value=platform.counter.read(),
        )

    def restore(
        self,
        fault_injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
    ) -> TrustedPlatform:
        """Materialise a fresh, independent platform in the captured state.

        The returned platform has its own crash injector (disarmed) and
        empty I/O statistics; mutating it never affects the platform the
        snapshot was captured from, so one snapshot can seed any number of
        adversary trials.  An optional seeded ``fault_injector`` and fake
        ``clock`` let fault-tolerance trials run the same way.
        """
        injector = CrashInjector()
        untrusted = MemoryUntrustedStore(len(self.image), injector, fault_injector)
        untrusted.tamper_replay(self.image)
        tamper_resistant = TamperResistantStore()
        if self.tr_data:
            tamper_resistant.write(self.tr_data)
        tamper_resistant.write_count = 0
        counter = TamperResistantCounter(self.counter_value)
        kwargs = {}
        if clock is not None:
            kwargs["clock"] = clock
        return TrustedPlatform(
            secret_store=SecretStore(self.secret),
            tamper_resistant=tamper_resistant,
            counter=counter,
            untrusted=untrusted,
            archival=MemoryArchivalStore(),
            injector=injector,
            faults=fault_injector,
            **kwargs,
        )
