"""Perf counters: write coalescing, crypto/hash tallies, cache stats.

The interesting acceptance property lives here: a commit of an N-version
transaction must reach the untrusted store as ONE contiguous write per
segment span, not N+1 small writes — asserted via the
:class:`~repro.chunkstore.segments.LogWriteBuffer` counters that
:meth:`ChunkStore.stats` exposes.
"""

import pytest

from repro.chunkstore import ChunkStore, ops
from repro.chunkstore.cache import DescriptorCache
from repro.chunkstore.descriptor import ChunkDescriptor
from repro.chunkstore.ids import ChunkId
from tests.conftest import make_config, make_platform


def fresh_store(**overrides) -> ChunkStore:
    return ChunkStore.format(make_platform(), make_config(**overrides))


def fresh_partition(store, cipher="ctr-sha256"):
    pid = store.allocate_partition()
    store.commit([ops.WritePartition(pid, cipher_name=cipher, hash_name="sha1")])
    return pid


class TestWriteCoalescing:
    def test_commit_is_one_write_per_span(self):
        """An N-chunk commit appends N+1 versions (N named + COMMIT) but
        issues exactly one untrusted.write: the span never leaves the
        segment, so it never splits."""
        store = fresh_store()
        pid = fresh_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(8)]
        logbuf = store.logbuf
        appends0, writes0 = logbuf.appends, logbuf.writes_issued
        store.commit([ops.WriteChunk(pid, r, b"v" * 32) for r in ranks])
        assert logbuf.appends - appends0 == len(ranks) + 1
        assert logbuf.writes_issued - writes0 == 1
        assert logbuf.pending_bytes == 0  # commit leaves nothing buffered

    def test_segment_jump_splits_the_span(self):
        """Crossing into a fresh segment necessarily starts a new span —
        one write per contiguous run, not one write total."""
        store = fresh_store(segment_size=4 * 1024)
        pid = fresh_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(8)]
        logbuf = store.logbuf
        writes0 = logbuf.writes_issued
        # 8 × 1KB bodies overflow a 4KB segment at least once
        store.commit([ops.WriteChunk(pid, r, b"j" * 1024) for r in ranks])
        spans = logbuf.writes_issued - writes0
        assert spans >= 2  # at least one jump happened
        assert spans < len(ranks)  # but still far fewer writes than versions
        assert logbuf.pending_bytes == 0

    def test_image_bytes_identical_to_unbuffered_writes(self):
        """Coalescing must not change a single stored byte: the same
        committed state reads back after a reopen (which replays recovery
        over the raw image)."""
        platform = make_platform()
        store = ChunkStore.format(platform, make_config())
        pid = fresh_partition(store)
        ranks = [store.allocate_chunk(pid) for _ in range(5)]
        store.commit([ops.WriteChunk(pid, r, bytes([r]) * 100) for r in ranks])
        store.checkpoint()
        store.close()
        reopened = ChunkStore.open(platform, make_config())
        for r in ranks:
            assert reopened.read_chunk(pid, r) == bytes([r]) * 100


class TestStoreStats:
    def test_stats_shape_and_growth(self):
        store = fresh_store()
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"x" * 500)])
        store.read_chunk(pid, rank)
        stats = store.stats()
        assert set(stats) == {
            "crypto", "hashing", "cache", "payload_cache", "walk", "log",
            "commits", "untrusted", "faults", "snapshots",
        }
        # system cipher is ctr-sha256 in the test config, and the partition
        # uses it too, so one aggregated entry carries all the bytes
        ctr = stats["crypto"]["ctr-sha256"]
        assert ctr["bytes_encrypted"] > 500
        assert ctr["bytes_decrypted"] > 0
        assert ctr["encrypt_calls"] > 0
        sha1 = stats["hashing"]["sha1"]
        assert sha1["digests"] > 0
        assert sha1["bytes_hashed"] > 500
        log = stats["log"]
        assert log["writes_coalesced"] == log["appends"] - log["writes_issued"]
        assert log["appends"] > log["writes_issued"] > 0
        assert stats["commits"] == 2  # WritePartition + WriteChunk
        io = store.platform.untrusted.stats
        assert stats["untrusted"]["writes"] == io.writes
        assert stats["untrusted"]["flushes"] == io.flushes

    def test_crypto_counters_per_cipher_name(self):
        store = fresh_store()
        pid = fresh_partition(store, cipher="xtea-cbc")
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"y" * 64)])
        crypto = store.stats()["crypto"]
        assert crypto["xtea-cbc"]["bytes_encrypted"] >= 64
        assert "ctr-sha256" in crypto  # the system cipher, counted separately


class TestDescriptorCacheIndex:
    def test_drop_partition_uses_index(self):
        cache = DescriptorCache(max_clean=64)
        for pid in (1, 2):
            for rank in range(5):
                cache.put_clean(ChunkId(pid, 0, rank), ChunkDescriptor())
        cache.put_dirty(ChunkId(1, 1, 0), ChunkDescriptor())
        cache.drop_partition(1)
        assert cache.get(ChunkId(1, 0, 0)) is None
        assert cache.get(ChunkId(1, 1, 0)) is None
        assert cache.get(ChunkId(2, 0, 3)) is not None
        # the dropped partition leaves no empty index bucket behind
        assert 1 not in cache._by_partition
        # dropping an unknown partition is a no-op, not a scan or an error
        cache.drop_partition(999)

    def test_index_tracks_evictions(self):
        cache = DescriptorCache(max_clean=4)
        for rank in range(8):
            cache.put_clean(ChunkId(rank % 3, 0, rank), ChunkDescriptor())
        indexed = set()
        for ids in cache._by_partition.values():
            indexed |= ids
        assert indexed == set(cache._clean) | set(cache._dirty)
        assert len(cache._clean) == 4

    def test_index_survives_dirty_transitions(self):
        cache = DescriptorCache(max_clean=4)
        cid = ChunkId(7, 0, 0)
        cache.put_clean(cid, ChunkDescriptor())
        cache.put_dirty(cid, ChunkDescriptor())  # clean → dirty
        cache.clean_all_dirty()  # dirty → clean
        assert cache.get(cid) is not None
        cache.drop(cid)
        assert 7 not in cache._by_partition

    def test_hit_miss_counters_via_store_stats(self):
        # payload cache off so every read exercises the descriptor cache
        store = fresh_store(payload_cache_bytes=0)
        pid = fresh_partition(store)
        rank = store.allocate_chunk(pid)
        store.commit([ops.WriteChunk(pid, rank, b"z")])
        before = store.stats()["cache"]["hits"]
        for _ in range(3):
            store.read_chunk(pid, rank)
        after = store.stats()["cache"]
        assert after["hits"] >= before + 3
        assert set(after) == {
            "hits", "misses", "evictions", "clean_entries", "dirty_entries",
            "partitions_indexed"
        }

    def test_lru_order_preserved_without_move_to_end(self):
        """put_clean appends new keys at LRU tail by dict insertion order;
        get() refreshes recency.  The old explicit move_to_end after
        insertion was redundant — eviction order must be unchanged."""
        cache = DescriptorCache(max_clean=3)
        a, b, c, d = (ChunkId(0, 0, r) for r in range(4))
        cache.put_clean(a, ChunkDescriptor())
        cache.put_clean(b, ChunkDescriptor())
        cache.put_clean(c, ChunkDescriptor())
        cache.get(a)  # a is now most-recent; b is oldest
        cache.put_clean(d, ChunkDescriptor())  # evicts b
        assert cache.get(b) is None
        assert cache.get(a) is not None
