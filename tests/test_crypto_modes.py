"""CBC mode, PKCS#7 padding, XTEA, and the CTR stream cipher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import NullCipher
from repro.crypto.des import Des
from repro.crypto.modes import (
    CbcCipher,
    CtrStreamCipher,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.registry import (
    CIPHER_NAMES,
    KEY_SIZES,
    cipher_available,
    make_cipher,
)
from repro.crypto.xtea import Xtea


class TestPadding:
    def test_pad_empty(self):
        assert pkcs7_pad(b"", 8) == b"\x08" * 8

    def test_pad_always_adds(self):
        assert pkcs7_pad(b"12345678", 8) == b"12345678" + b"\x08" * 8

    def test_unpad_rejects_bad_length(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"1234567", 8)

    def test_unpad_rejects_zero_byte(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"1234567\x00", 8)

    def test_unpad_rejects_oversize_byte(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"1234567\x09", 8)

    def test_unpad_rejects_inconsistent(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"123456\x01\x02", 8)

    @given(st.binary(max_size=100))
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data, 8), 8) == data


class TestCbc:
    def cipher(self):
        return CbcCipher(Des(b"8bytekey"), "des-cbc")

    @given(st.binary(max_size=300))
    @settings(max_examples=30)
    def test_roundtrip(self, plaintext):
        cipher = self.cipher()
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    @given(st.binary(max_size=200))
    @settings(max_examples=20)
    def test_ciphertext_size_exact(self, plaintext):
        cipher = self.cipher()
        assert len(cipher.encrypt(plaintext)) == cipher.ciphertext_size(
            len(plaintext)
        )

    def test_fresh_iv_randomises(self):
        cipher = self.cipher()
        assert cipher.encrypt(b"same message") != cipher.encrypt(b"same message")

    def test_bit_flip_breaks_decrypt_or_changes_plaintext(self):
        cipher = self.cipher()
        ct = bytearray(cipher.encrypt(b"attack at dawn!!"))
        ct[-1] ^= 1
        try:
            result = cipher.decrypt(bytes(ct))
            assert result != b"attack at dawn!!"
        except ValueError:
            pass  # padding failure is also acceptable

    def test_short_ciphertext_rejected(self):
        with pytest.raises(ValueError):
            self.cipher().decrypt(b"tooshort")

    def test_misaligned_ciphertext_rejected(self):
        with pytest.raises(ValueError):
            self.cipher().decrypt(b"x" * 17)


class TestXtea:
    def test_roundtrip(self):
        cipher = Xtea(bytes(range(16)))
        assert cipher.decrypt_block(cipher.encrypt_block(b"ABCDEFGH")) == b"ABCDEFGH"

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            Xtea(bytes(8))

    def test_reference_vector(self):
        # XTEA reference: key 0..15, plaintext of zeros
        cipher = Xtea(bytes(16))
        ct = cipher.encrypt_block(bytes(8))
        assert cipher.decrypt_block(ct) == bytes(8)
        assert ct != bytes(8)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=8, max_size=8))
    @settings(max_examples=30)
    def test_roundtrip_random(self, key, block):
        cipher = Xtea(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestCtrStream:
    @given(st.binary(max_size=500))
    @settings(max_examples=30)
    def test_roundtrip(self, plaintext):
        cipher = CtrStreamCipher(b"k" * 16)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_size_is_nonce_plus_payload(self):
        cipher = CtrStreamCipher(b"k" * 16)
        assert cipher.ciphertext_size(100) == 108
        assert len(cipher.encrypt(b"x" * 100)) == 108

    def test_nonce_randomises(self):
        cipher = CtrStreamCipher(b"k" * 16)
        assert cipher.encrypt(b"msg") != cipher.encrypt(b"msg")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            CtrStreamCipher(b"")

    def test_short_ciphertext_rejected(self):
        with pytest.raises(ValueError):
            CtrStreamCipher(b"k" * 16).decrypt(b"abc")


class TestNullCipher:
    def test_identity(self):
        cipher = NullCipher()
        assert cipher.encrypt(b"data") == b"data"
        assert cipher.decrypt(b"data") == b"data"
        assert cipher.ciphertext_size(7) == 7


class TestRegistry:
    @pytest.mark.parametrize("name", CIPHER_NAMES)
    def test_every_registered_cipher_roundtrips(self, name):
        if not cipher_available(name):
            pytest.skip(f"{name} backend unavailable in this build")
        key = bytes(range(KEY_SIZES[name])) if KEY_SIZES[name] else b""
        cipher = make_cipher(name, key)
        message = b"The quick brown fox jumps over the lazy dog"
        ct = cipher.encrypt(message)
        assert cipher.decrypt(ct) == message
        assert len(ct) == cipher.ciphertext_size(len(message))

    def test_unknown_cipher(self):
        with pytest.raises(ValueError):
            make_cipher("rot13", b"")
