"""TrustedKV — a five-minute on-ramp to TDB.

Most applications want a dictionary, not a storage architecture.
:class:`TrustedKV` wraps the full stack (collection store → object store
→ chunk store) behind a dict-like API with string keys and arbitrary
picklable values, while keeping every TDB property: secrecy, tamper
detection, replay resistance, crash atomicity, and sorted-key range
scans.

    from repro import TrustedPlatform
    from repro.kv import TrustedKV

    platform = TrustedPlatform.create_in_memory()
    kv = TrustedKV.create(platform)
    kv["user:alice"] = {"balance": 100}
    kv.put_many({"a": 1, "b": 2})          # one atomic commit
    for key, value in kv.range("user:", "user:\\xff"):
        ...
    kv.close()
    kv = TrustedKV.open(platform)          # recovery + validation

Keys index through a sorted functional index, so ``range`` is a real
ordered scan (the capability layered-crypto designs lack, §1.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.chunkstore.config import StoreConfig
from repro.chunkstore.store import ChunkStore
from repro.collection.index import KeyFunctionRegistry
from repro.collection.store import CollectionStore
from repro.errors import ObjectNotFoundError
from repro.objectstore.pickling import PicklerRegistry, DEFAULT_REGISTRY
from repro.objectstore.store import ObjectStore
from repro.platform.trusted_platform import TrustedPlatform

_PARTITION_NAME = "__trusted_kv__"
_COLLECTION = "entries"
_INDEX = "by_key"


def _key_of(entry: Any) -> Any:
    return entry["k"]


class TrustedKV:
    """A trusted, persistent, dict-like store."""

    def __init__(
        self,
        chunks: ChunkStore,
        partition: int,
        registry: PicklerRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.chunks = chunks
        self.objects = ObjectStore(chunks, registry=registry)
        key_functions = KeyFunctionRegistry()
        key_functions.register("kv_key", _key_of)
        self.collections = CollectionStore(self.objects, partition, key_functions)
        self.partition = partition

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(
        cls,
        platform: TrustedPlatform,
        config: Optional[StoreConfig] = None,
        cipher_name: str = "ctr-sha256",
        hash_name: str = "sha256",
        registry: PicklerRegistry = DEFAULT_REGISTRY,
    ) -> "TrustedKV":
        """Format a fresh store on ``platform`` and set up the KV layout."""
        chunks = ChunkStore.format(
            platform, config or StoreConfig(system_cipher="ctr-sha256")
        )
        objects = ObjectStore(chunks, registry=registry)
        partition = objects.create_partition(
            cipher_name=cipher_name, hash_name=hash_name, name=_PARTITION_NAME
        )
        kv = cls(chunks, partition, registry)
        with kv.objects.transaction() as tx:
            coll = kv.collections.create_collection(tx, _COLLECTION)
            kv.collections.add_index(tx, coll, _INDEX, "kv_key", sorted_index=True)
        return kv

    @classmethod
    def open(
        cls,
        platform: TrustedPlatform,
        registry: PicklerRegistry = DEFAULT_REGISTRY,
    ) -> "TrustedKV":
        """Reopen (recovery + validation) an existing TrustedKV store."""
        chunks = ChunkStore.open(platform)
        partition = chunks.find_partition(_PARTITION_NAME)
        if partition is None:
            raise ObjectNotFoundError("no TrustedKV layout in this store")
        return cls(chunks, partition, registry)

    def close(self, checkpoint: bool = True) -> None:
        """Shut the underlying chunk store down cleanly."""
        self.chunks.close(checkpoint=checkpoint)

    # -- dict-like access --------------------------------------------------------

    def _lookup(self, tx, key: str):
        coll = self.collections.open_collection(tx, _COLLECTION)
        refs = self.collections.exact(tx, coll, _INDEX, key)
        return coll, (refs[0] if refs else None)

    def get(self, key: str, default: Any = None) -> Any:
        """Validated read of ``key``; ``default`` if absent."""
        with self.objects.transaction() as tx:
            _coll, ref = self._lookup(tx, key)
            if ref is None:
                return default
            return tx.get(ref)["v"]

    def __getitem__(self, key: str) -> Any:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def put(self, key: str, value: Any) -> None:
        """Insert or overwrite ``key`` (one atomic commit)."""
        with self.objects.transaction() as tx:
            coll, ref = self._lookup(tx, key)
            entry = {"k": key, "v": value}
            if ref is None:
                self.collections.insert(tx, coll, entry)
            else:
                self.collections.update(tx, coll, ref, entry)

    __setitem__ = put

    def put_many(self, items: Dict[str, Any]) -> None:
        """Apply several puts in one atomic commit."""
        with self.objects.transaction() as tx:
            coll = self.collections.open_collection(tx, _COLLECTION)
            for key, value in items.items():
                refs = self.collections.exact(tx, coll, _INDEX, key)
                entry = {"k": key, "v": value}
                if refs:
                    self.collections.update(tx, coll, refs[0], entry)
                else:
                    self.collections.insert(tx, coll, entry)

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns False if it was absent."""
        with self.objects.transaction() as tx:
            coll, ref = self._lookup(tx, key)
            if ref is None:
                return False
            self.collections.remove(tx, coll, ref)
            return True

    def __delitem__(self, key: str) -> None:
        if not self.delete(key):
            raise KeyError(key)

    def __contains__(self, key: str) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        with self.objects.transaction() as tx:
            coll = self.collections.open_collection(tx, _COLLECTION)
            return coll.size(tx)

    def keys(self) -> List[str]:
        """All keys, in sorted order (from the sorted index)."""
        with self.objects.transaction() as tx:
            coll = self.collections.open_collection(tx, _COLLECTION)
            return [key for key, _ref in self.collections.range(tx, coll, _INDEX)]

    def items(self) -> List[Tuple[str, Any]]:
        """All (key, value) pairs in key order."""
        with self.objects.transaction() as tx:
            coll = self.collections.open_collection(tx, _COLLECTION)
            return [
                (key, tx.get(ref)["v"])
                for key, ref in self.collections.range(tx, coll, _INDEX)
            ]

    def range(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> List[Tuple[str, Any]]:
        """Ordered scan over ``low ≤ key ≤ high`` (either bound optional)."""
        with self.objects.transaction() as tx:
            coll = self.collections.open_collection(tx, _COLLECTION)
            return [
                (key, tx.get(ref)["v"])
                for key, ref in self.collections.range(tx, coll, _INDEX, low, high)
            ]

    # -- maintenance -----------------------------------------------------------

    def compact(self) -> int:
        """Checkpoint and clean the log; returns segments reclaimed."""
        self.chunks.checkpoint()
        return self.chunks.clean(max_segments=10_000)
