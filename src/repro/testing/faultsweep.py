"""Seeded fault-tolerance sweep (the robustness counterpart of the
adversary).

Where :mod:`repro.testing.adversary` mutates bytes *maliciously*, this
harness exercises the *non-malicious* failures of §2.1's untrusted store:
transient read/write/flush errors, permanently damaged extents, and
timed-out or truncated remote round trips — injected by the seeded
:class:`~repro.platform.faults.FaultInjector` while a scripted workload
commits, checkpoints, cleans, and crash-recovers.  Every trial enforces
the fault-tolerance invariant:

    every operation either succeeds, fails with a typed TDB error, or
    leaves the damage quarantined-and-reported; after a final
    scrub-and-repair pass, every readable chunk returns acceptable
    committed bytes — never silent corruption, never a foreign
    exception, and never a tamper alarm (nothing was tampered with).

The sweep grid is fault *points* × error *rates*; a trial's cell is
derived from its seed, so ``(mode, seed)`` names the same experiment on
every run.  Time is a :class:`~repro.platform.clock.FakeClock`, so retry
backoff never sleeps on the wall clock and a full sweep runs in seconds.

A second entry point, :meth:`FaultSweep.sweep_crash_sites`, composes the
fault injector with the existing :class:`~repro.testing.sweep.SweepDriver`
discover-then-replay loop: the workload runs under transient faults *and*
a fail-stop crash at every discovered injection site, and recovery must
still land on acceptable bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.chunkstore import ChunkStore, ops
from repro.chunkstore.cleaner import Cleaner
from repro.errors import (
    CrashError,
    IOFaultError,
    QuarantineError,
    TamperDetectedError,
    TDBError,
)
from repro.platform.clock import FakeClock
from repro.platform.faults import FaultConfig, FaultInjector
from repro.testing.adversary import Scenario, build_scenario, scenario_config
from repro.testing.sweep import SweepDriver, SweepSite

# -- outcomes -----------------------------------------------------------------

# passes
OK = "ok"  # no fault bit anything; every op succeeded, reads exact
TYPED = "typed-error"  # faults surfaced as typed TDB errors; state consistent
HEALED = "healed"  # scrub-and-repair restored damaged chunks; reads exact
QUARANTINED = "quarantined"  # unhealable damage, but reported, not hidden
FAILSTOP = "failstop"  # permanent damage defeated recovery; store refused

# violations
SILENT_FAULT_CORRUPTION = "silent-corruption"  # wrong bytes / quiet loss
FOREIGN_FAULT_ERROR = "foreign-error"  # a non-TDB exception escaped

#: where faults are injected — the sweep's first grid axis
POINTS: Tuple[str, ...] = ("read", "write", "flush", "mixed", "remote")

#: per-operation error rates — the second grid axis (§ acceptance: ≤ 10%)
RATES: Tuple[float, ...] = (0.02, 0.05, 0.1)

#: scripted operations per trial
OPS_PER_TRIAL = 10


def fault_config(point: str, rate: float) -> FaultConfig:
    """The :class:`FaultConfig` for one sweep cell."""
    if point == "read":
        return FaultConfig(read_error_rate=rate, permanent_fraction=0.25)
    if point == "write":
        return FaultConfig(write_error_rate=rate, permanent_fraction=0.25)
    if point == "flush":
        return FaultConfig(flush_error_rate=rate)
    if point == "mixed":
        return FaultConfig(
            read_error_rate=rate,
            write_error_rate=rate,
            flush_error_rate=rate,
            permanent_fraction=0.25,
        )
    if point == "remote":
        return FaultConfig(timeout_rate=rate, partial_response_rate=rate)
    raise ValueError(f"unknown fault point {point!r}")


@dataclass(frozen=True)
class FaultTrialReport:
    """Outcome of one seeded fault trial."""

    seed: int
    point: str
    rate: float
    outcome: str
    detail: str

    @property
    def failed(self) -> bool:
        return self.outcome in (SILENT_FAULT_CORRUPTION, FOREIGN_FAULT_ERROR)

    def repro_line(self, mode: str) -> str:
        return f"make fault-sweep MODE={mode} SEED={self.seed}"


@dataclass
class FaultSweepResult:
    """Aggregate of a fault sweep."""

    mode: str
    reports: List[FaultTrialReport] = field(default_factory=list)

    @property
    def failures(self) -> List[FaultTrialReport]:
        return [r for r in self.reports if r.failed]

    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for report in self.reports:
            counts[report.outcome] = counts.get(report.outcome, 0) + 1
        return counts

    def by_point(self) -> Dict[str, Dict[str, int]]:
        table: Dict[str, Dict[str, int]] = {}
        for report in self.reports:
            row = table.setdefault(report.point, {})
            row[report.outcome] = row.get(report.outcome, 0) + 1
        return table


class FaultSweep:
    """Runs seeded fault-injection trials against a frozen scenario and
    enforces the fault-tolerance invariant on every outcome."""

    def __init__(
        self,
        mode: str = "counter",
        scenario: Optional[Scenario] = None,
        payload_cache: bool = True,
    ) -> None:
        self.mode = mode
        self.payload_cache = payload_cache
        self.scenario = scenario or build_scenario(mode)

    def _open_config(self):
        return scenario_config(self.mode, payload_cache=self.payload_cache)

    # -- public API ------------------------------------------------------------

    def run(self, trials: int, base_seed: int = 0) -> FaultSweepResult:
        """Run ``trials`` seeded fault trials across the point × rate grid."""
        result = FaultSweepResult(mode=self.mode)
        for i in range(trials):
            result.reports.append(self.run_trial(base_seed + i))
        return result

    def run_trial(
        self,
        seed: int,
        point: Optional[str] = None,
        rate: Optional[float] = None,
    ) -> FaultTrialReport:
        """One reproducible trial; the grid cell is derived from the seed
        unless pinned explicitly."""
        if point is None:
            point = POINTS[seed % len(POINTS)]
        if rate is None:
            rate = RATES[(seed // len(POINTS)) % len(RATES)]
        outcome, detail = self._run_cell(seed, point, rate)
        return FaultTrialReport(
            seed=seed, point=point, rate=rate, outcome=outcome, detail=detail
        )

    # -- one trial -------------------------------------------------------------

    def _run_cell(self, seed: int, point: str, rate: float) -> Tuple[str, str]:
        from repro.extensions.remote import RemoteUntrustedStore

        rng = random.Random(seed)
        faults = FaultInjector(fault_config(point, rate), seed=seed)
        faults.enabled = False  # the pristine open must succeed
        platform = self.scenario.final.restore(
            fault_injector=faults, clock=FakeClock()
        )
        if point == "remote":
            # every fault lands on the simulated network instead
            platform.untrusted = RemoteUntrustedStore(platform.untrusted)
        try:
            store: Optional[ChunkStore] = ChunkStore.open(platform, self._open_config())
        except Exception as exc:  # pragma: no cover - scenario must open clean
            return (
                FOREIGN_FAULT_ERROR,
                f"pristine scenario failed to open: {exc}",
            )

        #: oracle: every key maps to the tuple of byte strings a read may
        #: legally return (a torn commit admits both old and new)
        acceptable: Dict[Tuple[int, int], Tuple[bytes, ...]] = {
            key: (value,) for key, value in self.scenario.expected.items()
        }
        #: the last *successfully committed* value per key — the trial's
        #: stand-in for an up-to-date backup during scrub's repair pass
        committed: Dict[Tuple[int, int], bytes] = dict(self.scenario.expected)
        keys = sorted(acceptable)
        typed: List[str] = []

        def reopen() -> Optional[TDBError]:
            """Crash-recover; one clean retry so a transient fault during
            recovery never ends a trial.  Returns the terminal typed error
            if even the clean reopen refused (permanent damage)."""
            nonlocal store
            platform.reboot()
            for clean_pass in (False, True):
                faults.enabled = not clean_pass
                try:
                    store = ChunkStore.open(platform, self._open_config())
                    faults.enabled = True
                    return None
                except TDBError as last:
                    error = last
            faults.enabled = True
            store = None
            return error

        faults.enabled = True
        for step in range(OPS_PER_TRIAL):
            if store is None:
                break
            roll = rng.random()
            try:
                if roll < 0.5:
                    key = keys[rng.randrange(len(keys))]
                    value = f"f{seed}s{step}p{key[0]}r{key[1]}:".encode() * 3
                    try:
                        store.commit(
                            [ops.WriteChunk(key[0], key[1], value)]
                        )
                        acceptable[key] = (value,)
                        committed[key] = value
                    except TDBError as exc:
                        # torn commit: old or new may be durable
                        acceptable[key] = tuple(acceptable[key]) + (value,)
                        typed.append(f"write: {type(exc).__name__}")
                elif roll < 0.65:
                    store.checkpoint()
                elif roll < 0.75:
                    Cleaner(store).clean_one()
                elif roll < 0.85:
                    error = reopen()
                    if error is not None:
                        typed.append(f"recovery: {type(error).__name__}")
                else:
                    key = keys[rng.randrange(len(keys))]
                    got = store.read_chunk(key[0], key[1])
                    if got not in acceptable[key]:
                        return (
                            SILENT_FAULT_CORRUPTION,
                            f"mid-trial read of {key[0]}:{key[1]} returned "
                            f"unacceptable bytes ({got[:32]!r}...)",
                        )
            except TamperDetectedError as exc:
                return (
                    SILENT_FAULT_CORRUPTION,
                    f"tamper alarm with no tampering at step {step}: {exc}",
                )
            except TDBError as exc:
                typed.append(f"step {step}: {type(exc).__name__}")
            except Exception as exc:
                return (
                    FOREIGN_FAULT_ERROR,
                    f"step {step} raised {type(exc).__name__}: {exc}",
                )
            if store is not None and store._failed:
                error = reopen()
                if error is not None:
                    typed.append(f"recovery: {type(error).__name__}")

        return self._judge(platform, store, faults, acceptable, committed, typed)

    # -- the judge -------------------------------------------------------------

    def _judge(
        self,
        platform,
        store: Optional[ChunkStore],
        faults: FaultInjector,
        acceptable: Dict[Tuple[int, int], Tuple[bytes, ...]],
        committed: Dict[Tuple[int, int], bytes],
        typed: List[str],
    ) -> Tuple[str, str]:
        """Disable random faults (sticky media damage persists), crash-
        recover, scrub-and-repair, and read everything back."""
        faults.enabled = False
        fired = sum(faults.counts.values())
        platform.reboot()
        # the judge's reopen starts with an empty in-memory quarantine, so
        # every chunk quarantined by open/scrub/read-back below must have
        # emitted a "quarantine" event after this mark — the obs event log
        # is part of the reporting contract, not just a debugging aid
        event_mark = obs.events.mark()
        try:
            store = ChunkStore.open(platform, self._open_config())
        except TDBError as exc:
            if not faults.bad_extents:
                return (
                    SILENT_FAULT_CORRUPTION,
                    f"store unopenable with no permanent damage: {exc}",
                )
            return (
                FAILSTOP,
                f"{fired} fault(s); permanent damage defeated recovery "
                f"({type(exc).__name__}: {exc})",
            )
        except Exception as exc:
            return FOREIGN_FAULT_ERROR, f"judge open raised {type(exc).__name__}: {exc}"

        repaired: List[str] = []
        unrepaired: List[str] = []
        try:
            result = store.scrub(
                raise_on_first=False,
                repair_source=lambda pid, rank: committed.get((pid, rank)),
            )
            repaired = list(result["repaired"])
            unrepaired = list(result["unrepaired"])
        except TDBError as exc:
            # repair itself hit permanent damage (e.g. a dead superblock
            # extent refuses the checkpoint); recover and judge what's left
            typed.append(f"scrub: {type(exc).__name__}")
            platform.reboot()
            try:
                store = ChunkStore.open(platform, self._open_config())
            except TDBError as exc2:
                if not faults.bad_extents:
                    return (
                        SILENT_FAULT_CORRUPTION,
                        f"store unopenable with no permanent damage: {exc2}",
                    )
                return (
                    FAILSTOP,
                    f"{fired} fault(s); scrub failed and recovery refused "
                    f"({type(exc2).__name__})",
                )
        except Exception as exc:
            return FOREIGN_FAULT_ERROR, f"scrub raised {type(exc).__name__}: {exc}"

        problems: List[str] = []
        #: (data chunk label, reported quarantine id) — the id may name an
        #: ancestor map chunk whose quarantine blocks the whole subtree
        quarantined: List[Tuple[str, str]] = []
        for key in sorted(acceptable):
            pid, rank = key
            try:
                got = store.read_chunk(pid, rank)
            except QuarantineError as exc:
                quarantined.append((f"{pid}:0.{rank}", exc.chunk))
                continue
            except IOFaultError:
                quarantined.append((f"{pid}:0.{rank}", f"{pid}:0.{rank}"))
                continue
            except TamperDetectedError as exc:
                problems.append(
                    f"chunk {pid}:{rank} raised a tamper alarm with no "
                    f"tampering ({exc})"
                )
                continue
            except TDBError as exc:
                problems.append(
                    f"chunk {pid}:{rank} lost without detection "
                    f"({type(exc).__name__}: {exc})"
                )
                continue
            except Exception as exc:
                return (
                    FOREIGN_FAULT_ERROR,
                    f"read {pid}:{rank} raised {type(exc).__name__}: {exc}",
                )
            if got not in acceptable[key]:
                problems.append(
                    f"chunk {pid}:{rank} silently corrupted "
                    f"(got {got[:32]!r}...)"
                )
        if problems:
            return SILENT_FAULT_CORRUPTION, "; ".join(problems)

        if quarantined:
            # unhealable damage is legal only if it is *reported*
            reported = set(store.quarantined_chunks()) | set(unrepaired)
            unreported = [
                label for label, chunk in quarantined if chunk not in reported
            ]
            if unreported:
                return (
                    SILENT_FAULT_CORRUPTION,
                    f"unreadable chunks missing from the quarantine report: "
                    f"{unreported}",
                )
            if not obs.events.suspended():
                evented = {
                    e.fields.get("chunk")
                    for e in obs.events.since(event_mark)
                    if e.kind == "quarantine"
                }
                silent = sorted(
                    chunk
                    for chunk in set(store.quarantined_chunks())
                    if chunk not in evented
                )
                if silent:
                    return (
                        SILENT_FAULT_CORRUPTION,
                        f"quarantined chunks never emitted a 'quarantine' "
                        f"event: {silent}",
                    )
            return (
                QUARANTINED,
                f"{fired} fault(s); {len(quarantined)} chunk(s) remain "
                f"quarantined and reported; all healthy reads exact",
            )
        if repaired:
            return (
                HEALED,
                f"{fired} fault(s); scrub repaired {len(repaired)} chunk(s) "
                f"({len(typed)} typed error(s) en route); all reads exact",
            )
        if typed:
            return (
                TYPED,
                f"{fired} fault(s) surfaced as {len(typed)} typed error(s); "
                f"all reads exact",
            )
        return OK, f"{fired} fault(s) absorbed; every op succeeded, reads exact"

    # -- crash-under-faults composition with the SweepDriver -------------------

    def sweep_crash_sites(
        self,
        samples_per_point: int = 2,
        rate: float = 0.02,
        seed: int = 0,
    ) -> List[SweepSite]:
        """Replay a faulted workload with a fail-stop crash at every
        discovered injection site (the shared :class:`SweepDriver` loop).

        Faults here are transient-only (no sticky media damage), so after
        each crash the clean reopen must succeed and every read must land
        in the acceptable set — crashes composed with transient faults may
        cost retries, never data.  Raises :class:`AssertionError` on any
        violation; returns the sites where a crash actually fired.
        """
        config = FaultConfig(
            read_error_rate=rate,
            write_error_rate=rate,
            flush_error_rate=rate,
            permanent_fraction=0.0,
        )
        scenario = self.scenario

        class _Env:
            pass

        def build() -> _Env:
            env = _Env()
            env.faults = FaultInjector(config, seed=seed)
            env.faults.enabled = False
            env.platform = scenario.final.restore(
                fault_injector=env.faults, clock=FakeClock()
            )
            env.store = ChunkStore.open(env.platform, self._open_config())
            env.acceptable = {
                key: (value,) for key, value in scenario.expected.items()
            }
            env.faults.enabled = True
            return env

        def workload(env: _Env) -> None:
            rng = random.Random(seed)
            keys = sorted(env.acceptable)
            for step in range(4):
                key = keys[rng.randrange(len(keys))]
                value = f"c{seed}s{step}p{key[0]}r{key[1]}:".encode() * 3
                try:
                    env.store.commit(
                        [ops.WriteChunk(key[0], key[1], value)]
                    )
                    env.acceptable[key] = (value,)
                except CrashError:
                    env.acceptable[key] = tuple(env.acceptable[key]) + (value,)
                    raise
                except TDBError:
                    # a transient fault tore this commit; both states legal
                    env.acceptable[key] = tuple(env.acceptable[key]) + (value,)
                    return  # the store needs recovery; end the workload
            env.store.checkpoint()

        def check(env: _Env, site: SweepSite) -> None:
            env.faults.enabled = False
            env.platform.reboot()
            store = ChunkStore.open(env.platform, self._open_config())
            for (pid, rank), values in sorted(env.acceptable.items()):
                got = store.read_chunk(pid, rank)
                assert got in values, (
                    f"crash at {site} + transient faults corrupted "
                    f"{pid}:{rank}: got {got[:32]!r}"
                )

        driver = SweepDriver(build)
        return driver.sweep(
            workload, check, samples_per_point=samples_per_point
        )
