"""XDB: the conventional embedded database baseline (§9.5).

Tables are B-trees keyed by record id; secondary indexes are B-trees
keyed by ``key_bytes ‖ rid`` (so duplicate keys coexist).  A catalog
B-tree maps table/index names to root pages.  Commits go through the
pager's WAL + force protocol.

The API is record-oriented::

    db = XDB.format(store)          # or XDB.open(store)
    tbl = db.create_table("goods")
    rid = db.insert(tbl, b"value")
    db.update(tbl, rid, b"value2")
    db.create_index(tbl, "by_price")
    db.index_put(tbl, "by_price", key_bytes, rid)
    db.commit()

XDB knows nothing about trust: secrecy and tamper detection are layered
on top by :mod:`repro.xdb.cryptolayer` — which is exactly the
architecture §1.2 argues against, and what the Figure 11 comparison
measures.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import XDBError
from repro.platform.untrusted import UntrustedStore
from repro.xdb.btree import BTree
from repro.xdb.pager import Pager


@dataclass
class Table:
    """An open XDB table: its record B-tree, secondary indexes, and the
    next record id."""

    name: str
    tree: BTree
    #: index name -> BTree over (key ‖ rid)
    indexes: Dict[str, BTree]
    next_rid: int


def _rid_key(rid: int) -> bytes:
    return struct.pack(">Q", rid)


def _index_entry(key: bytes, rid: int) -> bytes:
    return struct.pack(">H", len(key)) + key + _rid_key(rid)


class XDB:
    """A small conventional embedded database."""

    def __init__(self, store: UntrustedStore, cache_pages: int = 1024) -> None:
        self.pager = Pager(store, cache_pages=cache_pages)
        self._catalog: Optional[BTree] = None
        self._tables: Dict[str, Table] = {}

    # ------------------------------------------------------------------

    @classmethod
    def format(cls, store: UntrustedStore, cache_pages: int = 1024) -> "XDB":
        db = cls(store, cache_pages)
        db.pager.format()
        db._catalog = BTree.create(db.pager)
        db.pager.catalog_root = db._catalog.root
        db.pager.commit()
        return db

    @classmethod
    def open(cls, store: UntrustedStore, cache_pages: int = 1024) -> "XDB":
        db = cls(store, cache_pages)
        db.pager.open()
        db._catalog = BTree(db.pager, db.pager.catalog_root)
        return db

    def commit(self) -> None:
        """Force the current batch of changes (WAL + in-place writes)."""
        self._save_tables()
        self.pager.commit()

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    def _save_tables(self) -> None:
        for table in self._tables.values():
            meta = struct.pack(">IQ", table.tree.root, table.next_rid)
            for index_name in sorted(table.indexes):
                name_bytes = index_name.encode()
                meta += struct.pack(">H", len(name_bytes)) + name_bytes
                meta += struct.pack(">I", table.indexes[index_name].root)
            self._catalog.put(b"tbl:" + table.name.encode(), meta)

    def _load_table(self, name: str) -> Table:
        meta = self._catalog.get(b"tbl:" + name.encode())
        if meta is None:
            raise XDBError(f"no table named {name!r}")
        root, next_rid = struct.unpack_from(">IQ", meta, 0)
        pos = 12
        indexes: Dict[str, BTree] = {}
        while pos < len(meta):
            (nlen,) = struct.unpack_from(">H", meta, pos)
            pos += 2
            index_name = meta[pos : pos + nlen].decode()
            pos += nlen
            (index_root,) = struct.unpack_from(">I", meta, pos)
            pos += 4
            indexes[index_name] = BTree(self.pager, index_root)
        return Table(name, BTree(self.pager, root), indexes, next_rid)

    def table(self, name: str) -> Table:
        if name not in self._tables:
            self._tables[name] = self._load_table(name)
        return self._tables[name]

    def create_table(self, name: str) -> Table:
        if self._catalog.get(b"tbl:" + name.encode()) is not None:
            raise XDBError(f"table {name!r} already exists")
        table = Table(name, BTree.create(self.pager), {}, 1)
        self._tables[name] = table
        self._save_tables()
        return table

    def create_index(self, table: Table, index_name: str) -> None:
        if index_name in table.indexes:
            raise XDBError(f"index {index_name!r} already exists")
        table.indexes[index_name] = BTree.create(self.pager)
        self._save_tables()

    def create_kv(self, name: str) -> BTree:
        """A raw keyed B-tree (used by the crypto layer's hash tree)."""
        if self._catalog.get(b"kv:" + name.encode()) is not None:
            raise XDBError(f"kv store {name!r} already exists")
        tree = BTree.create(self.pager)
        self._catalog.put(b"kv:" + name.encode(), struct.pack(">I", tree.root))
        return tree

    def kv(self, name: str) -> BTree:
        meta = self._catalog.get(b"kv:" + name.encode())
        if meta is None:
            raise XDBError(f"no kv store named {name!r}")
        return BTree(self.pager, struct.unpack(">I", meta)[0])

    def table_names(self) -> List[str]:
        return [
            key[4:].decode()
            for key, _val in self._catalog.scan(b"tbl:", b"tbl:\xff")
        ]

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def insert(self, table: Table, value: bytes) -> int:
        rid = table.next_rid
        table.next_rid += 1
        table.tree.put(_rid_key(rid), value)
        return rid

    def read(self, table: Table, rid: int) -> bytes:
        value = table.tree.get(_rid_key(rid))
        if value is None:
            raise XDBError(f"no record {rid} in table {table.name!r}")
        return value

    def update(self, table: Table, rid: int, value: bytes) -> None:
        if table.tree.get(_rid_key(rid)) is None:
            raise XDBError(f"no record {rid} in table {table.name!r}")
        table.tree.put(_rid_key(rid), value)

    def delete(self, table: Table, rid: int) -> None:
        if not table.tree.delete(_rid_key(rid)):
            raise XDBError(f"no record {rid} in table {table.name!r}")

    def scan(self, table: Table) -> Iterator[Tuple[int, bytes]]:
        for key, value in table.tree.scan():
            yield struct.unpack(">Q", key)[0], value

    # ------------------------------------------------------------------
    # secondary indexes (entries maintained by the caller / crypto layer)
    # ------------------------------------------------------------------

    def index_put(self, table: Table, index_name: str, key: bytes, rid: int) -> None:
        table.indexes[index_name].put(_index_entry(key, rid), b"")

    def index_delete(self, table: Table, index_name: str, key: bytes, rid: int) -> None:
        table.indexes[index_name].delete(_index_entry(key, rid))

    def index_exact(self, table: Table, index_name: str, key: bytes) -> List[int]:
        prefix = struct.pack(">H", len(key)) + key
        result = []
        for entry, _val in table.indexes[index_name].scan(
            prefix, prefix + b"\xff" * 9
        ):
            if entry[: len(prefix)] != prefix:
                continue
            result.append(struct.unpack(">Q", entry[-8:])[0])
        return result

    def index_range(
        self, table: Table, index_name: str, low: bytes, high: bytes
    ) -> Iterator[Tuple[bytes, int]]:
        low_entry = struct.pack(">H", len(low)) + low
        high_entry = struct.pack(">H", len(high)) + high + b"\xff" * 9
        for entry, _val in table.indexes[index_name].scan(low_entry, high_entry):
            (klen,) = struct.unpack_from(">H", entry, 0)
            yield entry[2 : 2 + klen], struct.unpack(">Q", entry[-8:])[0]
