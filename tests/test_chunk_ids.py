"""Chunk id / position arithmetic (§4.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.chunkstore.ids import (
    LEADER_HEIGHT,
    SYSTEM_PARTITION,
    ChunkId,
    data_id,
    leader_id,
    partition_rank,
    rank_to_partition,
    required_height,
    tree_capacity,
)


class TestChunkId:
    def test_kinds(self):
        assert data_id(1, 0).is_data()
        assert ChunkId(1, 2, 0).is_map()
        assert leader_id(1).is_leader()
        assert not leader_id(1).is_data()

    def test_parent_child_roundtrip(self):
        child = ChunkId(3, 1, 130)
        parent = child.parent(64)
        assert parent == ChunkId(3, 2, 2)
        assert parent.child(64, child.slot(64)) == child

    def test_parent_of_leader_rejected(self):
        with pytest.raises(ValueError):
            leader_id(1).parent(64)

    def test_child_of_data_rejected(self):
        with pytest.raises(ValueError):
            data_id(1, 0).child(64, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ChunkId(-1, 0, 0)

    def test_str(self):
        assert str(ChunkId(2, 1, 5)) == "2:1.5"
        assert str(leader_id(0)) == "0:leader"

    @given(
        st.integers(0, 100),
        st.integers(0, 5),
        st.integers(0, 10**6),
        st.sampled_from([2, 4, 64]),
    )
    def test_parent_slot_invariant(self, partition, height, rank, fanout):
        cid = ChunkId(partition, height, rank)
        parent = cid.parent(fanout)
        assert parent.height == height + 1
        assert parent.child(fanout, cid.slot(fanout)) == cid


class TestHeights:
    def test_required_height_empty(self):
        assert required_height(64, 0) == 0

    def test_required_height_single(self):
        assert required_height(64, 1) == 1

    def test_required_height_boundary(self):
        assert required_height(64, 64) == 1
        assert required_height(64, 65) == 2
        assert required_height(64, 64 * 64) == 2
        assert required_height(64, 64 * 64 + 1) == 3

    def test_tree_capacity(self):
        assert tree_capacity(64, 1) == 64
        assert tree_capacity(64, 3) == 64**3

    @given(st.integers(1, 10**7), st.sampled_from([2, 8, 64]))
    def test_height_covers(self, next_rank, fanout):
        height = required_height(fanout, next_rank)
        assert tree_capacity(fanout, height) >= next_rank
        if height > 1:
            assert tree_capacity(fanout, height - 1) < next_rank


class TestPartitionRanks:
    def test_roundtrip(self):
        for pid in range(1, 50):
            assert rank_to_partition(partition_rank(pid)) == pid

    def test_system_partition_has_no_rank(self):
        with pytest.raises(ValueError):
            partition_rank(SYSTEM_PARTITION)
