"""Workload adapters: the same bind/release mix driven through TDB and
through the crypto-layered XDB baseline (§9.5.2, Figure 11).

Both systems are configured identically per the paper: the same
cryptographic parameters, comparable cache sizes, and the same frequency
of flushing the tamper-resistant store.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bench.workload import CollectionSpec, DBAdapter
from repro.chunkstore.config import StoreConfig
from repro.chunkstore.store import ChunkStore
from repro.collection.index import KeyFunctionRegistry, field_key
from repro.collection.store import CollectionStore
from repro.objectstore.store import ObjectStore
from repro.platform.trusted_platform import TrustedPlatform
from repro.platform.untrusted import MemoryUntrustedStore
from repro.xdb.cryptolayer import SecureXDB


class TdbAdapter(DBAdapter):
    """The workload on TDB: collection store → object store → chunk store."""

    def __init__(
        self,
        platform: Optional[TrustedPlatform] = None,
        cipher_name: str = "ctr-sha256",
        hash_name: str = "sha1",
        config: Optional[StoreConfig] = None,
        cache_size: int = 4096,
    ) -> None:
        super().__init__()
        self.platform = platform or TrustedPlatform.create_in_memory(
            untrusted_size=64 * 1024 * 1024
        )
        self.config = config or StoreConfig(
            system_cipher=cipher_name if cipher_name != "null" else "ctr-sha256",
            system_hash=hash_name,
            delta_ut=5,
        )
        self.chunks = ChunkStore.format(self.platform, self.config)
        self.key_functions = KeyFunctionRegistry()
        self.objects = ObjectStore(self.chunks, cache_size=cache_size)
        self.partition = self.objects.create_partition(
            cipher_name=cipher_name, hash_name=hash_name
        )
        self.collections = CollectionStore(
            self.objects, self.partition, self.key_functions
        )
        self._tx = None

    # -- adapter interface -----------------------------------------------------

    def create_collection(self, spec: CollectionSpec) -> Any:
        for index in spec.indexes:
            self.key_functions.register(index.field, field_key(index.field), replace=True)
        coll = self.collections.create_collection(self._tx, spec.name)
        for index in spec.indexes:
            self.collections.add_index(
                self._tx, coll, index.name, index.field, sorted_index=index.sorted_index
            )
        return coll

    def begin(self) -> None:
        self._tx = self.objects.transaction()

    def commit(self) -> None:
        self._tx.commit()
        self._tx = None
        self.op_counts["commit"] += 1

    def insert(self, coll: Any, obj: Dict[str, Any]) -> Any:
        self.op_counts["add"] += 1
        return self.collections.insert(self._tx, coll, obj)

    def read(self, coll: Any, handle: Any) -> Dict[str, Any]:
        self.op_counts["read"] += 1
        return self._tx.get(handle)

    def update(self, coll: Any, handle: Any, obj: Dict[str, Any]) -> None:
        self.op_counts["update"] += 1
        self.collections.update(self._tx, coll, handle, obj)

    def delete(self, coll: Any, handle: Any) -> None:
        self.op_counts["delete"] += 1
        self.collections.remove(self._tx, coll, handle)

    def exact(self, coll: Any, index_name: str, key: Any) -> List[Any]:
        return self.collections.exact(self._tx, coll, index_name, key)

    def stored_bytes(self) -> int:
        return self.chunks.stored_bytes()

    def close(self) -> None:
        self.chunks.close()


class XdbAdapter(DBAdapter):
    """The workload on the layered-crypto XDB baseline."""

    def __init__(
        self,
        store: Optional[MemoryUntrustedStore] = None,
        cipher_name: str = "ctr-sha256",
        hash_name: str = "sha1",
        cache_pages: int = 2048,
    ) -> None:
        super().__init__()
        from repro.platform.secret_store import SecretStore
        from repro.platform.tamper_resistant import TamperResistantStore

        self.store = store or MemoryUntrustedStore(64 * 1024 * 1024)
        self.secret = SecretStore.generate()
        self.tr = TamperResistantStore()
        self.db = SecureXDB.format(
            self.store,
            self.secret,
            self.tr,
            cipher_name=cipher_name,
            hash_name=hash_name,
            cache_pages=cache_pages,
            tr_period=5,  # match TDB's Δut = 5 (§9.1)
        )
        self._specs: Dict[str, CollectionSpec] = {}

    def create_collection(self, spec: CollectionSpec) -> Any:
        self._specs[spec.name] = spec
        return self.db.create_collection(
            spec.name,
            {index.name: field_key(index.field) for index in spec.indexes},
        )

    def begin(self) -> None:
        pass  # XDB batches until commit

    def commit(self) -> None:
        self.db.commit()
        self.op_counts["commit"] += 1

    def insert(self, coll: Any, obj: Dict[str, Any]) -> Any:
        self.op_counts["add"] += 1
        return self.db.insert(coll, obj)

    def read(self, coll: Any, handle: Any) -> Dict[str, Any]:
        self.op_counts["read"] += 1
        return self.db.read(coll, handle)

    def update(self, coll: Any, handle: Any, obj: Dict[str, Any]) -> None:
        self.op_counts["update"] += 1
        self.db.update(coll, handle, obj)

    def delete(self, coll: Any, handle: Any) -> None:
        self.op_counts["delete"] += 1
        self.db.delete(coll, handle)

    def exact(self, coll: Any, index_name: str, key: Any) -> List[Any]:
        return self.db.exact(coll, index_name, key)

    def stored_bytes(self) -> int:
        return self.db.stored_bytes()

    def close(self) -> None:
        self.db.close()
