"""tdb-inspect: offline inspection of a TDB store.

Two views, mirroring the trust model:

* the **attacker view** (no secret needed): what an untrusted program can
  learn from the raw device — the plaintext superblock, segment geometry,
  and nothing else.  Useful to demonstrate (and regression-test) how
  little the untrusted store leaks;
* the **trusted view** (given the platform): validated store statistics —
  partitions, chunk counts, log utilization, residual-log length.

Usage (library)::

    from repro.tools.inspect import attacker_view, trusted_view
    print(render(attacker_view(untrusted_store)))
    print(render(trusted_view(chunk_store)))

Usage (CLI, file-backed stores)::

    python -m repro.tools.inspect /path/to/store.img
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List

from repro.chunkstore.store import ChunkStore
from repro.errors import ChunkStoreError, TamperDetectedError
from repro.platform.untrusted import UntrustedStore


def attacker_view(untrusted: UntrustedStore) -> Dict[str, Any]:
    """Everything an untrusted program can see (requires no secrets)."""
    result: Dict[str, Any] = {"device_size": untrusted.size}
    head = untrusted.tamper_read(0, 4)
    if head != b"TDB1":
        result["format"] = "not a TDB store (or superblock destroyed)"
        return result
    result["format"] = "TDB v1"

    class _Probe:
        def __init__(self, store):
            self.untrusted = store

    try:
        config = ChunkStore._read_superblock(_Probe(untrusted))
        result["segment_size"] = config.segment_size
        result["fanout"] = config.fanout
        result["validation_mode"] = config.validation_mode
        result["system_cipher"] = config.system_cipher
        result["system_hash"] = config.system_hash
        result["leader_location"] = getattr(config, "stored_leader_location", None)
    except (ChunkStoreError, TamperDetectedError) as exc:
        result["superblock"] = f"unreadable: {exc}"
    # Entropy probe: everything beyond the superblock should look random
    # (ciphertext).  Sample a few regions and count zero bytes.
    samples = []
    for fraction in (0.1, 0.4, 0.7):
        offset = int(untrusted.size * fraction)
        blob = untrusted.tamper_read(offset, 4096)
        nonzero = sum(1 for b in blob if b)
        samples.append(round(nonzero / 4096, 3))
    result["nonzero_density_samples"] = samples
    return result


def _hit_ratio(hits: int, misses: int) -> float:
    total = hits + misses
    return round(hits / total, 3) if total else 0.0


def trusted_view(store: ChunkStore) -> Dict[str, Any]:
    """Validated statistics, as trusted code sees them."""
    segman = store.segman
    partitions: List[Dict[str, Any]] = []
    for pid in store.partition_ids():
        info = store.partition_info(pid)
        state = store._state(pid)
        partitions.append(
            {
                "pid": pid,
                "name": state.payload.name or None,
                "cipher": info["cipher"],
                "hash": info["hash"],
                "chunks": info["chunk_count"],
                "copies": info["copies"],
                "copy_of": info["copy_of"],
            }
        )
    return {
        "validation_mode": store.config.validation_mode,
        "partitions": partitions,
        "stored_bytes": store.stored_bytes(),
        "live_bytes": store.live_bytes(),
        "utilization": round(
            store.live_bytes() / store.stored_bytes(), 3
        )
        if store.stored_bytes()
        else 1.0,
        "segments": {
            "total": segman.segment_count,
            "free": segman.free_segment_count(),
            "residual": len(segman.residual_segments),
        },
        "cache": {
            "dirty_descriptors": store.cache.dirty_count(),
            "hits": store.cache.hits,
            "misses": store.cache.misses,
            "evictions": store.cache.evictions,
            "hit_ratio": _hit_ratio(store.cache.hits, store.cache.misses),
        },
        "payload_cache": {
            **store.payloads.stats(),
            "hit_ratio": _hit_ratio(store.payloads.hits, store.payloads.misses),
        },
        "commits": store.commit_count_stat,
        "io_health": {
            "io_errors": store.platform.untrusted.stats.io_errors,
            "retries": store.platform.untrusted.stats.retries,
            "gave_up": store.platform.untrusted.stats.gave_up,
            "quarantined_total": store.quarantined_total,
            "quarantine": store.quarantined_chunks() or None,
        },
    }


def render(view: Dict[str, Any], indent: int = 0) -> str:
    """Human-readable rendering of a view dict."""
    lines: List[str] = []
    pad = "  " * indent
    for key, value in view.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render(value, indent + 1))
        elif isinstance(value, list) and value and isinstance(value[0], dict):
            lines.append(f"{pad}{key}:")
            for item in value:
                rendered = ", ".join(f"{k}={v}" for k, v in item.items())
                lines.append(f"{pad}  - {rendered}")
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    """CLI entry point: print the attacker view of a store image file."""
    if len(argv) != 2:
        print("usage: python -m repro.tools.inspect <store-image-file>")
        return 2
    import os

    from repro.platform.untrusted import FileUntrustedStore

    path = argv[1]
    store = FileUntrustedStore(path, os.path.getsize(path))
    print(render(attacker_view(store)))
    store.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
