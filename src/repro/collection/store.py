"""The collection store (§8): indexed collections of objects.

A *collection* is a set of objects sharing one or more indexes.  Indexes
can be added and removed dynamically; they are maintained automatically as
objects are inserted, updated, and removed through the collection store.
Collections and indexes are themselves objects — they get trust, crash
atomicity, and caching for free from the layers below, and an attack on
indexing metadata is detected exactly like an attack on data (the
§1.2 argument for the low-level data model).

Layout:

* a *catalog* object (at a partition's conventional root, rank 0) maps
  collection names to collection objects;
* a collection object holds its indexes (name → index object ref) and a
  membership B-tree keyed by ``(partition, rank)`` — giving scans and
  O(log n) membership tests;
* index objects are described in :mod:`repro.collection.index`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from repro.bench.profiler import profiled
from repro.collection import btree
from repro.collection.index import (
    DEFAULT_KEY_FUNCTIONS,
    Index,
    KeyFunctionRegistry,
)
from repro.errors import IndexError_, ObjectNotFoundError
from repro.objectstore.pickling import ObjectRef
from repro.objectstore.store import ObjectStore, Transaction


class Collection:
    """Handle on one collection (state lives in an object)."""

    def __init__(self, ref: ObjectRef, partition: int) -> None:
        self.ref = ref
        self.partition = partition

    def _state(self, tx: Transaction) -> dict:
        return tx.get(self.ref)

    def size(self, tx: Transaction) -> int:
        return self._state(tx)["size"]

    def index_names(self, tx: Transaction) -> List[str]:
        return sorted(self._state(tx)["indexes"])


class CollectionStore:
    """Manages named collections within one partition."""

    def __init__(
        self,
        object_store: ObjectStore,
        partition: int,
        key_functions: KeyFunctionRegistry = DEFAULT_KEY_FUNCTIONS,
    ) -> None:
        self.objects = object_store
        self.partition = partition
        self.key_functions = key_functions

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    def _catalog_ref(self) -> ObjectRef:
        return self.objects.root_ref(self.partition)

    def ensure_catalog(self, tx: Transaction) -> ObjectRef:
        """Create the catalog object at the partition root if missing."""
        ref = self._catalog_ref()
        try:
            tx.get(ref)
        except ObjectNotFoundError:
            tx.create_at(ref, {"collections": {}})
        return ref

    def collection_names(self, tx: Transaction) -> List[str]:
        catalog = tx.get(self.ensure_catalog(tx))
        return sorted(catalog["collections"])

    # ------------------------------------------------------------------
    # collection lifecycle
    # ------------------------------------------------------------------

    def create_collection(self, tx: Transaction, name: str) -> Collection:
        with profiled("collection store"):
            catalog_ref = self.ensure_catalog(tx)
            catalog = dict(tx.get(catalog_ref))
            collections = dict(catalog["collections"])
            if name in collections:
                raise IndexError_(f"collection {name!r} already exists")
            members_root = btree.create(tx, self.partition)
            coll_ref = tx.create(
                self.partition,
                {
                    "name": name,
                    "indexes": {},
                    "members_root": members_root,
                    "size": 0,
                },
            )
            collections[name] = coll_ref
            catalog["collections"] = collections
            tx.update(catalog_ref, catalog)
            return Collection(coll_ref, self.partition)

    def open_collection(self, tx: Transaction, name: str) -> Collection:
        catalog = tx.get(self.ensure_catalog(tx))
        try:
            ref = catalog["collections"][name]
        except KeyError:
            raise IndexError_(f"no collection named {name!r}") from None
        return Collection(ref, self.partition)

    def drop_collection(self, tx: Transaction, name: str) -> None:
        """Remove a collection and its indexes (member objects survive)."""
        with profiled("collection store"):
            coll = self.open_collection(tx, name)
            state = tx.get(coll.ref)
            for index_ref in state["indexes"].values():
                Index(index_ref, self.partition, self.key_functions).destroy(tx)
            btree.destroy(tx, state["members_root"])
            tx.delete(coll.ref)
            catalog_ref = self._catalog_ref()
            catalog = dict(tx.get(catalog_ref))
            collections = dict(catalog["collections"])
            collections.pop(name, None)
            catalog["collections"] = collections
            tx.update(catalog_ref, catalog)

    # ------------------------------------------------------------------
    # index lifecycle (dynamic add/remove, §8)
    # ------------------------------------------------------------------

    def add_index(
        self,
        tx: Transaction,
        coll: Collection,
        index_name: str,
        keyfunc_name: str,
        sorted_index: bool = True,
    ) -> None:
        """Add an index; existing members are indexed immediately."""
        with profiled("collection store"):
            state = dict(tx.get(coll.ref))
            indexes = dict(state["indexes"])
            if index_name in indexes:
                raise IndexError_(f"index {index_name!r} already exists")
            index = Index.create(
                tx,
                self.partition,
                index_name,
                keyfunc_name,
                sorted_index,
                self.key_functions,
            )
            # backfill from current members
            for _key, member in btree.iterate(tx, state["members_root"]):
                obj = tx.get(member)
                index.add(tx, index.key_of(tx, obj), member)
            indexes[index_name] = index.ref
            state["indexes"] = indexes
            tx.update(coll.ref, state)

    def drop_index(self, tx: Transaction, coll: Collection, index_name: str) -> None:
        with profiled("collection store"):
            state = dict(tx.get(coll.ref))
            indexes = dict(state["indexes"])
            try:
                index_ref = indexes.pop(index_name)
            except KeyError:
                raise IndexError_(f"no index named {index_name!r}") from None
            Index(index_ref, self.partition, self.key_functions).destroy(tx)
            state["indexes"] = indexes
            tx.update(coll.ref, state)

    def _indexes(self, tx: Transaction, coll: Collection) -> List[Index]:
        state = tx.get(coll.ref)
        return [
            Index(ref, self.partition, self.key_functions)
            for ref in state["indexes"].values()
        ]

    def _index(self, tx: Transaction, coll: Collection, name: str) -> Index:
        state = tx.get(coll.ref)
        try:
            return Index(state["indexes"][name], self.partition, self.key_functions)
        except KeyError:
            raise IndexError_(f"no index named {name!r}") from None

    # ------------------------------------------------------------------
    # member operations (automatic index maintenance)
    # ------------------------------------------------------------------

    @staticmethod
    def _member_key(ref: ObjectRef) -> Tuple[int, int]:
        return (ref.partition, ref.rank)

    def insert(self, tx: Transaction, coll: Collection, value: Any) -> ObjectRef:
        """Create an object and add it to the collection."""
        ref = tx.create(self.partition, value)
        self.insert_ref(tx, coll, ref, value)
        return ref

    def insert_ref(
        self, tx: Transaction, coll: Collection, ref: ObjectRef, value: Any
    ) -> None:
        """Add an existing object to the collection."""
        with profiled("collection store"):
            state = dict(tx.get(coll.ref))
            state["members_root"] = btree.insert(
                tx, self.partition, state["members_root"], self._member_key(ref), ref
            )
            state["size"] = state["size"] + 1
            tx.update(coll.ref, state)
            for index in self._indexes(tx, coll):
                index.add(tx, index.key_of(tx, value), ref)

    def update(
        self, tx: Transaction, coll: Collection, ref: ObjectRef, value: Any
    ) -> None:
        """Update a member object, keeping every index consistent."""
        with profiled("collection store"):
            old_value = tx.get_for_update(ref)
            for index in self._indexes(tx, coll):
                old_key = index.key_of(tx, old_value)
                new_key = index.key_of(tx, value)
                if old_key != new_key:
                    index.remove(tx, old_key, ref)
                    index.add(tx, new_key, ref)
            tx.update(ref, value)

    def remove(
        self,
        tx: Transaction,
        coll: Collection,
        ref: ObjectRef,
        delete_object: bool = True,
    ) -> None:
        """Remove a member (optionally deleting the object itself)."""
        with profiled("collection store"):
            value = tx.get_for_update(ref)
            for index in self._indexes(tx, coll):
                index.remove(tx, index.key_of(tx, value), ref)
            state = dict(tx.get(coll.ref))
            state["members_root"] = btree.remove(
                tx, self.partition, state["members_root"], self._member_key(ref), ref
            )
            state["size"] = state["size"] - 1
            tx.update(coll.ref, state)
            if delete_object:
                tx.delete(ref)

    def contains(self, tx: Transaction, coll: Collection, ref: ObjectRef) -> bool:
        state = tx.get(coll.ref)
        return bool(btree.lookup(tx, state["members_root"], self._member_key(ref)))

    # ------------------------------------------------------------------
    # iterators (scan / exact-match / range, §2.2)
    # ------------------------------------------------------------------

    def scan(self, tx: Transaction, coll: Collection) -> Iterator[ObjectRef]:
        state = tx.get(coll.ref)
        for _key, ref in btree.iterate(tx, state["members_root"]):
            yield ref

    def scan_values(
        self, tx: Transaction, coll: Collection, batch_size: int = 64
    ) -> Iterator[Tuple[ObjectRef, Any]]:
        """Scan members yielding ``(ref, value)``, loading objects in
        batches of ``batch_size`` so each batch costs one coalesced chunk
        fetch per partition instead of one round trip per member."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        batch: List[ObjectRef] = []
        for ref in self.scan(tx, coll):
            batch.append(ref)
            if len(batch) >= batch_size:
                values = tx.get_many(batch)
                yield from zip(batch, values)
                batch = []
        if batch:
            values = tx.get_many(batch)
            yield from zip(batch, values)

    def exact(
        self, tx: Transaction, coll: Collection, index_name: str, key: Any
    ) -> List[ObjectRef]:
        with profiled("collection store"):
            return self._index(tx, coll, index_name).exact(tx, key)

    def range(
        self,
        tx: Transaction,
        coll: Collection,
        index_name: str,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[Any, ObjectRef]]:
        return self._index(tx, coll, index_name).range(
            tx, low, high, low_inclusive, high_inclusive
        )
