"""Model-based property tests: random operation sequences interleaved
with crashes, recoveries, checkpoints, and cleaning must always agree
with a plain in-memory model of the committed state."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chunkstore import ChunkStore, ops
from repro.errors import (
    ChunkNotAllocatedError,
    ChunkNotWrittenError,
    CrashError,
)
from tests.conftest import make_config, make_platform


def op_strategy():
    return st.lists(
        st.one_of(
            st.tuples(st.just("write"), st.integers(0, 11), st.binary(max_size=400)),
            st.tuples(st.just("dealloc"), st.integers(0, 11), st.just(b"")),
            st.tuples(st.just("checkpoint"), st.just(0), st.just(b"")),
            st.tuples(st.just("clean"), st.just(0), st.just(b"")),
            st.tuples(st.just("crash"), st.just(0), st.just(b"")),
            st.tuples(st.just("reopen"), st.just(0), st.just(b"")),
            st.tuples(st.just("crash_in_commit"), st.integers(0, 11), st.binary(max_size=60)),
        ),
        min_size=1,
        max_size=40,
    )


class TestChunkStoreModel:
    @given(operations=op_strategy(), mode=st.sampled_from(["counter", "direct"]))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_random_histories(self, operations, mode):
        platform = make_platform(size=2 * 1024 * 1024)
        store = ChunkStore.format(
            platform,
            make_config(validation_mode=mode, delta_ut=1, segment_size=8 * 1024),
        )
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        #: the committed state per the model: rank -> bytes
        model = {}

        def reopen():
            nonlocal store
            platform.reboot()
            store = ChunkStore.open(platform)

        for kind, rank, data in operations:
            if kind == "write":
                state = store.partitions[pid]
                if not (
                    rank in state.pending_ranks or state.is_committed_written(rank)
                ):
                    state.allocate_specific(rank)
                store.commit([ops.WriteChunk(pid, rank, data)])
                model[rank] = data
            elif kind == "dealloc":
                if rank in model:
                    store.commit([ops.DeallocateChunk(pid, rank)])
                    del model[rank]
            elif kind == "checkpoint":
                store.checkpoint()
            elif kind == "clean":
                store.clean(max_segments=3)
            elif kind == "crash":
                reopen()
            elif kind == "reopen":
                store.close()
                reopen()
            elif kind == "crash_in_commit":
                state = store.partitions[pid]
                if not (
                    rank in state.pending_ranks or state.is_committed_written(rank)
                ):
                    state.allocate_specific(rank)
                platform.injector.arm("commit.begin")
                with pytest.raises(CrashError):
                    store.commit([ops.WriteChunk(pid, rank, data)])
                platform.injector.disarm()
                reopen()  # the model is unchanged: nothing was committed
            # -- invariant: committed state matches the model exactly ----
            for model_rank, expected in model.items():
                assert store.read_chunk(pid, model_rank) == expected
            for probe in range(12):
                if probe not in model:
                    with pytest.raises(
                        (ChunkNotAllocatedError, ChunkNotWrittenError)
                    ):
                        store.read_chunk(pid, probe)

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 30), st.binary(min_size=1, max_size=200)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_snapshot_isolation_property(self, writes):
        """Whatever happens to the source after a copy, the snapshot's
        contents never change."""
        platform = make_platform(size=4 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config())
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        state = store.partitions[pid]
        baseline = {}
        for rank in range(5):
            state.allocate_specific(rank)
            baseline[rank] = f"base-{rank}".encode()
            store.commit([ops.WriteChunk(pid, rank, baseline[rank])])
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])
        for rank, data in writes:
            st_ = store.partitions[pid]
            if not (rank in st_.pending_ranks or st_.is_committed_written(rank)):
                st_.allocate_specific(rank)
            store.commit([ops.WriteChunk(pid, rank, data)])
        for rank, expected in baseline.items():
            assert store.read_chunk(snap, rank) == expected

    @given(
        changes=st.dictionaries(
            st.integers(0, 25),
            st.one_of(st.just(None), st.binary(min_size=1, max_size=60)),
            max_size=15,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_diff_agrees_with_model(self, changes):
        """diff(snapshot, mutated) reports exactly the model's changes."""
        platform = make_platform(size=4 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config())
        pid = store.allocate_partition()
        store.commit([ops.WritePartition(pid, cipher_name="null", hash_name="sha1")])
        state = store.partitions[pid]
        initial = {}
        for rank in range(0, 26, 2):  # even ranks pre-exist
            state.allocate_specific(rank)
            initial[rank] = bytes([rank]) * 20
            store.commit([ops.WriteChunk(pid, rank, initial[rank])])
        snap = store.allocate_partition()
        store.commit([ops.CopyPartition(snap, pid)])

        expected = {}
        for rank, new_value in changes.items():
            existed = rank in initial
            if new_value is None:
                if existed:
                    store.commit([ops.DeallocateChunk(pid, rank)])
                    expected[rank] = "removed"
            else:
                st_ = store.partitions[pid]
                if not (rank in st_.pending_ranks or st_.is_committed_written(rank)):
                    st_.allocate_specific(rank)
                store.commit([ops.WriteChunk(pid, rank, new_value)])
                if existed and new_value != initial[rank]:
                    expected[rank] = "changed"
                elif not existed:
                    expected[rank] = "added"
        assert store.diff(snap, pid) == expected


class TestBackupRoundtripProperty:
    @given(
        documents=st.dictionaries(
            st.integers(0, 40), st.binary(max_size=150), min_size=1, max_size=25
        ),
        mutations=st.dictionaries(
            st.integers(0, 40),
            st.one_of(st.just(None), st.binary(max_size=150)),
            max_size=12,
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_full_plus_incremental_equals_final_state(self, documents, mutations):
        from repro.backup import BackupStore
        from repro.platform import TrustedPlatform

        platform = make_platform(size=8 * 1024 * 1024)
        store = ChunkStore.format(platform, make_config())
        pid = store.allocate_partition()
        store.commit(
            [ops.WritePartition(pid, cipher_name="ctr-sha256", hash_name="sha1")]
        )
        state = store.partitions[pid]
        model = {}
        for rank, data in documents.items():
            state.allocate_specific(rank)
            store.commit([ops.WriteChunk(pid, rank, data)])
            model[rank] = data
        backup = BackupStore(store)
        backup.create_backup([pid], "full")
        for rank, data in mutations.items():
            st_ = store.partitions[pid]
            if data is None:
                if rank in model:
                    store.commit([ops.DeallocateChunk(pid, rank)])
                    del model[rank]
            else:
                if not (rank in st_.pending_ranks or st_.is_committed_written(rank)):
                    st_.allocate_specific(rank)
                store.commit([ops.WriteChunk(pid, rank, data)])
                model[rank] = data
        backup.create_backup([pid], "incr")

        replacement = TrustedPlatform.create_in_memory(
            untrusted_size=8 * 1024 * 1024, secret=platform.secret_store.read()
        )
        replacement.archival = platform.archival
        restored_store = ChunkStore.format(replacement, make_config())
        BackupStore(restored_store).restore(["full", "incr"])
        for rank in range(41):
            if rank in model:
                assert restored_store.read_chunk(pid, rank) == model[rank]
            else:
                with pytest.raises((ChunkNotAllocatedError, ChunkNotWrittenError)):
                    restored_store.read_chunk(pid, rank)
