"""§9.3 — space overhead.

Paper: chunk descriptor + header + padding ≈ 52 B per chunk (8-byte block
cipher); map overhead small because of fanout 64; cleaning in idle periods
sustains ≈90 % utilization.

Our constants differ (different header layout, nonce sizes, varint
descriptors) but must be the same *kind* of number: a small per-chunk
constant, a map overhead of roughly 1/fanout, and cleaning that pushes
utilization up.
"""

from benchmarks.conftest import PAPER, bench_store, data_partition, report
from repro.chunkstore import ops

_CHUNK = 512
_COUNT = 500


def test_per_chunk_overhead(benchmark):
    platform, store = bench_store(size=128 * 1024 * 1024, segment_size=256 * 1024)
    pid = data_partition(store)
    ranks = [store.allocate_chunk(pid) for _ in range(_COUNT)]
    store.commit([ops.WriteChunk(pid, r, b"\x66" * _CHUNK) for r in ranks])
    store.checkpoint()
    benchmark(lambda: store.stored_bytes())
    logical = _COUNT * _CHUNK
    live = store.live_bytes()
    per_chunk = (live - logical) / _COUNT
    report(
        "§9.3 space overhead",
        [
            ("logical bytes", f"{logical}", "n/a"),
            ("live bytes (incl. map)", f"{live}", "n/a"),
            (
                "overhead per chunk",
                f"{per_chunk:.0f} B",
                f"≈{PAPER['space_overhead_per_chunk']} B (8-byte-block cipher)",
            ),
        ],
    )
    # small constant overhead: tens of bytes, not hundreds
    assert per_chunk < 200


def test_map_overhead_is_small(benchmark):
    """Fanout 64 keeps the chunk map a small fraction of the data (§9.3)."""
    platform, store = bench_store(size=128 * 1024 * 1024, segment_size=256 * 1024)
    pid = data_partition(store)
    ranks = [store.allocate_chunk(pid) for _ in range(_COUNT)]
    store.commit([ops.WriteChunk(pid, r, b"\x66" * _CHUNK) for r in ranks])
    live_before_map = store.live_bytes()
    store.checkpoint()  # writes the map chunks
    map_bytes = store.live_bytes() - live_before_map
    benchmark(lambda: None)
    report(
        "§9.3 map overhead",
        [
            (
                "map bytes / data bytes",
                f"{map_bytes / (_COUNT * _CHUNK):.3f}",
                "small (fanout 64)",
            )
        ],
    )
    assert map_bytes < 0.2 * _COUNT * _CHUNK


def test_cleaning_restores_utilization(benchmark):
    """Churn produces obsolete versions; cleaning reclaims them (the
    paper sustains ~90 % utilization cleaning in idle periods)."""
    platform, store = bench_store(size=64 * 1024 * 1024, segment_size=64 * 1024)
    pid = data_partition(store)
    ranks = [store.allocate_chunk(pid) for _ in range(50)]
    store.commit([ops.WriteChunk(pid, r, b"\x00" * _CHUNK) for r in ranks])
    for round_no in range(20):
        for rank in ranks:
            store.commit([ops.WriteChunk(pid, rank, bytes([round_no]) * _CHUNK)])
    utilization_before = store.live_bytes() / max(1, store.stored_bytes())
    store.clean(max_segments=10_000)
    utilization_after = store.live_bytes() / max(1, store.stored_bytes())
    benchmark(lambda: None)
    report(
        "§9.3 utilization",
        [
            ("before cleaning", f"{utilization_before:.2f}", "degrades with churn"),
            ("after cleaning", f"{utilization_after:.2f}", "≈0.90 sustainable"),
        ],
    )
    assert utilization_after > utilization_before
    assert utilization_after > 0.5
