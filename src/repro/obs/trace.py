"""Nestable tracing spans with monotonic timings in a bounded ring.

``with span("map_walk", pid=3):`` times its body on the monotonic clock
and records a :class:`SpanRecord` carrying the span's name, duration,
nesting depth, parent, and free-form tags.  Nesting is tracked per
thread, so a ``commit`` span encloses the ``map_walk`` and ``log_write``
spans it causes and a trace view can re-indent them into the call tree.

Tracing is **off by default**.  Disabled, ``span()`` returns one shared
null context manager — two attribute lookups and no allocation, which is
what keeps the instrumentation seam affordable on hot paths.  Enabled,
the cost per span is two ``perf_counter`` calls, one small object, and a
ring append; callers therefore place spans at *operation* granularity
(a commit, a batch walk, a scrub), never per byte or per cache hit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

#: default ring capacity; a bench run emits a few thousand spans
DEFAULT_CAPACITY = 8192


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    seq: int
    name: str
    start: float  # perf_counter timestamp, comparable within a process
    duration: float  # seconds
    depth: int  # 0 = top-level for its thread
    parent: Optional[str]  # enclosing span's name, if any
    thread: int
    tags: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(f"{k}={v!r}" for k, v in sorted(self.tags.items()))
        indent = "  " * self.depth
        return (
            f"{indent}{self.name} {self.duration * 1e3:.3f}ms"
            + (f" {extras}" if extras else "")
        )


class Tracer:
    """Bounded span recorder with per-thread nesting state."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._ring: Deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._local = threading.local()
        self.dropped = 0

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(record)

    def next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0


class _Span:
    """Live span context manager (only built while tracing is enabled)."""

    __slots__ = ("tracer", "name", "tags", "start", "depth", "parent")

    def __init__(self, tracer: Tracer, name: str, tags: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.tags = tags

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack()
        self.depth = len(stack)
        self.parent = stack[-1] if stack else None
        stack.append(self.name)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration = time.perf_counter() - self.start
        stack = self.tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self.tracer.record(
            SpanRecord(
                seq=self.tracer.next_seq(),
                name=self.name,
                start=self.start,
                duration=duration,
                depth=self.depth,
                parent=self.parent,
                thread=threading.get_ident(),
                tags=self.tags,
            )
        )


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()

# -- module-level singleton ---------------------------------------------------

_tracer = Tracer()
_enabled = False


def span(name: str, **tags: Any):
    """A context manager timing its body; shared no-op when disabled."""
    if not _enabled:
        return _NULL_SPAN
    return _Span(_tracer, name, tags)


def enabled() -> bool:
    return _enabled


def enable(capacity: Optional[int] = None) -> None:
    """Turn tracing on (optionally resizing the ring)."""
    global _enabled, _tracer
    if capacity is not None and capacity != _tracer._ring.maxlen:
        _tracer = Tracer(capacity)
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def records() -> List[SpanRecord]:
    return _tracer.records()


def dropped() -> int:
    return _tracer.dropped


def reset() -> None:
    _tracer.clear()
