"""Backup store (§6): full and incremental partition backups."""

from repro.backup.format import (
    BackupDescriptor,
    BackupEntry,
    PartitionBackup,
)
from repro.backup.store import BackupInfo, BackupStore

__all__ = [
    "BackupStore",
    "BackupInfo",
    "BackupDescriptor",
    "BackupEntry",
    "PartitionBackup",
]
