"""Segment manager unit tests (§4.9.4): geometry, allocation,
utilization accounting, persistence."""

import pytest

from repro.chunkstore.segments import SegmentManager
from repro.errors import StorageFullError


def manager(superblock=4096, segment=16 * 1024, total=4096 + 8 * 16 * 1024):
    return SegmentManager(superblock, segment, total)


class TestGeometry:
    def test_segment_count(self):
        m = manager()
        assert m.segment_count == 8

    def test_start_and_of_roundtrip(self):
        m = manager()
        for segment in range(m.segment_count):
            start = m.segment_start(segment)
            assert m.segment_of(start) == segment
            assert m.segment_of(start + m.segment_size - 1) == segment

    def test_too_small_store_rejected(self):
        with pytest.raises(ValueError):
            SegmentManager(4096, 16 * 1024, 4096 + 16 * 1024)


class TestAllocation:
    def test_claim_until_full(self):
        m = manager()
        claimed = [m.claim_free_segment() for _ in range(8)]
        assert sorted(claimed) == list(range(8))
        with pytest.raises(StorageFullError):
            m.claim_free_segment()

    def test_release_returns_to_pool(self):
        m = manager()
        segment = m.claim_free_segment()
        m.jump_to(segment)
        other = m.claim_free_segment()
        m.begin_residual(other)  # move residual off the first segment
        m.release_segment(segment)
        assert segment in m.free_segments

    def test_release_residual_refused(self):
        m = manager()
        segment = m.claim_free_segment()
        m.begin_residual(segment)
        with pytest.raises(AssertionError):
            m.release_segment(segment)


class TestTail:
    def test_advance_tracks_used(self):
        m = manager()
        segment = m.claim_free_segment()
        m.begin_residual(segment)
        m.advance(100)
        m.advance(50)
        assert m.tail_offset == 150
        assert m.used_bytes[segment] == 150
        assert m.tail_location == m.segment_start(segment) + 150

    def test_overrun_asserts(self):
        m = manager()
        segment = m.claim_free_segment()
        m.begin_residual(segment)
        with pytest.raises(AssertionError):
            m.advance(m.segment_size + 1)

    def test_jump_appends_to_residual_chain(self):
        m = manager()
        first = m.claim_free_segment()
        m.begin_residual(first)
        second = m.claim_free_segment()
        m.jump_to(second)
        assert m.residual_segments == [first, second]
        assert m.tail_offset == 0


class TestUtilization:
    def test_live_accounting(self):
        m = manager()
        segment = m.claim_free_segment()
        m.begin_residual(segment)
        location = m.tail_location
        m.add_live(location, 500)
        assert m.live_bytes[segment] == 500
        m.sub_live(location, 200)
        assert m.live_bytes[segment] == 300
        m.sub_live(location, 10_000)  # clamps at zero (estimate semantics)
        assert m.live_bytes[segment] == 0

    def test_cleanable_ordering(self):
        m = manager()
        a = m.claim_free_segment()
        m.begin_residual(a)
        m.advance(100)
        b = m.claim_free_segment()
        m.jump_to(b)
        m.advance(100)
        c = m.claim_free_segment()
        # residual = [a, b]; make a checkpoint at c so a and b become cleanable
        m.begin_residual(c)
        m.live_bytes[a] = 90
        m.live_bytes[b] = 10
        assert m.cleanable_segments() == [b, a]  # emptiest first

    def test_stored_and_live_totals(self):
        m = manager()
        a = m.claim_free_segment()
        m.begin_residual(a)
        m.advance(300)
        m.add_live(m.segment_start(a), 120)
        assert m.stored_bytes() == 300
        assert m.live_total() == 120


class TestPersistence:
    def test_table_roundtrip(self):
        m = manager()
        a = m.claim_free_segment()
        m.begin_residual(a)
        m.advance(123)
        m.add_live(m.segment_start(a), 99)
        table = m.to_table()
        m2 = manager()
        m2.load_table(table)
        assert m2.tail_segment == m.tail_segment
        assert m2.tail_offset == 123
        assert m2.used_bytes == m.used_bytes
        assert m2.live_bytes == m.live_bytes
        assert m2.free_segments == m.free_segments
        assert m2.residual_segments == m.residual_segments

    def test_geometry_mismatch_rejected(self):
        m = manager()
        table = m.to_table()
        other = SegmentManager(4096, 16 * 1024, 4096 + 4 * 16 * 1024)
        with pytest.raises(ValueError):
            other.load_table(table)
