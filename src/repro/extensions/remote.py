"""Untrusted storage on servers (§10).

"TDB may be used to protect a database stored at an untrusted server.
This application of TDB may benefit from additional optimizations for
reducing network round-trips to the untrusted server, such as batching
reads and writes."

:class:`RemoteUntrustedStore` wraps any local
:class:`~repro.platform.untrusted.UntrustedStore` and accounts *round
trips*: each ``read``/``write``/``flush`` costs one, while ``read_many``
ships a batch of extents in a single round trip.  A
:class:`NetworkModel` turns the counts into modeled time, so benchmarks
can quantify the §10 batching optimisation without a real network.

Trust-wise nothing changes: the server is exactly as untrusted as a local
disk, so the same tamper API is exposed (the server operator *is* the
attacker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro import obs
from repro.errors import IOFaultError, PartialResponseError
from repro.platform.untrusted import UntrustedStore


@dataclass
class NetworkModel:
    """Latency model for a remote untrusted store."""

    #: one request/response round trip, seconds (LAN ≈ 0.5 ms, WAN ≈ 50 ms)
    round_trip_latency: float = 0.001
    #: payload bandwidth, bytes/second
    bandwidth: float = 10e6

    def time(self, round_trips: int, payload_bytes: int) -> float:
        return round_trips * self.round_trip_latency + payload_bytes / self.bandwidth


class RemoteUntrustedStore(UntrustedStore):
    """An untrusted store behind a (simulated) network."""

    def __init__(self, backing: UntrustedStore) -> None:
        super().__init__(backing.size, backing.injector, backing.faults)
        self._backing = backing
        self.round_trips = 0
        self.payload_bytes = 0
        #: writes queued on the client, shipped at flush in one round trip;
        #: cleared only once the flush round trip succeeds, so a faulted
        #: flush leaves every queued write replayable
        self._write_queue: List[Tuple[int, bytes]] = []

    # -- raw image ------------------------------------------------------------

    def _image_read(self, offset: int, size: int) -> bytes:
        return self._backing._image_read(offset, size)

    def _image_write(self, offset: int, data: bytes) -> None:
        self._backing._image_write(offset, data)

    # -- fault plumbing --------------------------------------------------------

    def _fault_round_trip(self, op: str) -> None:
        if self.faults is not None:
            try:
                self.faults.on_round_trip(op)
            except IOFaultError:
                # the hook only raises IOFaultError subclasses; anything
                # else is a bug and must propagate *untallied* rather
                # than masquerade as device trouble
                self.stats.io_errors += 1
                obs.add("remote.round_trip_faults")
                raise

    # -- accounted operations ---------------------------------------------------

    def read(self, offset: int, size: int) -> bytes:
        self._fault_round_trip("read")
        self.round_trips += 1
        self.payload_bytes += size
        return super().read(offset, size)

    def read_many(self, extents: List[Tuple[int, int]]) -> List[bytes]:
        """The §10 batching optimisation: one round trip for the batch.

        The round trip may time out, or the server may answer only a
        prefix of the batch (:class:`~repro.errors.PartialResponseError`);
        either way no result is returned and the caller retries the whole
        batch.
        """
        if not extents:
            return []
        self._fault_round_trip("read_many")
        if self.faults is not None:
            answered = self.faults.on_batch(len(extents))
            if answered < len(extents):
                self.stats.io_errors += 1
                raise PartialResponseError(
                    f"remote batch answered {answered}/{len(extents)} extents"
                )
        self.round_trips += 1
        self.payload_bytes += sum(size for _, size in extents)
        return super().read_many(extents)

    def write(self, offset: int, data: bytes) -> None:
        # writes are queued client-side; the flush ships them in one batch
        self.payload_bytes += len(data)
        super().write(offset, data)
        self._write_queue.append((offset, bytes(data)))

    def flush(self) -> None:
        """Ship the queued writes + fsync request in one round trip.

        The queue is cleared only after the round trip and the durable
        flush both succeed; a fault anywhere leaves it intact so the next
        flush re-ships the same writes (nothing is silently dropped).
        """
        self._fault_round_trip("flush")
        self.round_trips += 1  # the batched write + fsync request
        super().flush()
        self._write_queue = []

    def pending_writes(self) -> List[Tuple[int, bytes]]:
        """Writes queued on the client but not yet acknowledged durable."""
        return list(self._write_queue)

    def simulate_crash(self) -> None:
        super().simulate_crash()
        self._write_queue = []

    def reset_accounting(self) -> None:
        self.round_trips = 0
        self.payload_bytes = 0
