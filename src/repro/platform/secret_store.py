"""Secret store: a small amount of read-only persistent secret storage.

On the paper's reference platform this is battery-backed SRAM inside a
secure coprocessor (§2.1): e.g. 16 bytes that only a trusted program can
read.  In this simulation it is an object that only trusted code paths
hold a reference to; the untrusted store's attacker API has no route to it.
"""

from __future__ import annotations

import os


class SecretStore:
    """Holds the platform master secret."""

    SIZE = 16

    def __init__(self, secret: bytes) -> None:
        if len(secret) != self.SIZE:
            raise ValueError(f"secret must be {self.SIZE} bytes, got {len(secret)}")
        self._secret = bytes(secret)

    @classmethod
    def generate(cls) -> "SecretStore":
        """Provision a fresh random secret (the manufacturing step)."""
        return cls(os.urandom(cls.SIZE))

    def read(self) -> bytes:
        """Read the secret.  Only trusted code ever holds this object."""
        return self._secret
