"""Portable object pickling (§2.2, §7).

"TDB pickles objects using application-provided methods so the stored
representation is compact and portable."  This module implements a small,
self-describing binary codec for a useful universe of values:

* Python primitives: ``None``, ``bool``, ``int``, ``float``, ``str``,
  ``bytes``, ``list``, ``tuple``, ``dict``, ``set``;
* :class:`ObjectRef` — typed references between stored objects, which is
  what lets higher layers (collections, indexes) persist graphs;
* application classes registered with :func:`register_class`, which
  supply ``to_state`` / ``from_state`` conversions to and from the
  primitive universe.

Unlike :mod:`pickle`, nothing here executes code on load, the format is
independent of Python's internals, and unknown tags fail loudly — the
properties a *trusted* store needs from its serializer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple, Type

from repro.errors import PicklingError
from repro.util.codec import Decoder, Encoder

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6
_TAG_LIST = 7
_TAG_TUPLE = 8
_TAG_DICT = 9
_TAG_SET = 10
_TAG_REF = 11

_FIRST_CLASS_TAG = 32


@dataclass(frozen=True, order=True)
class ObjectRef:
    """A stable, persistent reference to a stored object.

    One object per chunk (§7), so a reference is exactly a chunk id:
    (partition, rank).
    """

    partition: int
    rank: int

    def __str__(self) -> str:
        return f"obj:{self.partition}.{self.rank}"


class PicklerRegistry:
    """Maps registered application classes to tags and state converters."""

    def __init__(self) -> None:
        self._by_tag: Dict[int, Tuple[Type, Callable, Callable]] = {}
        self._by_class: Dict[Type, int] = {}

    def register(
        self,
        tag: int,
        cls: Type,
        to_state: Callable[[Any], Any],
        from_state: Callable[[Any], Any],
    ) -> None:
        """Register ``cls`` under ``tag`` (≥ 32).

        ``to_state`` must produce a value in the primitive universe;
        ``from_state`` inverts it.  Both must be deterministic — functional
        indexes (§8) extract keys from unpickled objects, and the paper
        requires deterministic extraction.
        """
        if tag < _FIRST_CLASS_TAG:
            raise PicklingError(f"class tags start at {_FIRST_CLASS_TAG}, got {tag}")
        if tag in self._by_tag and self._by_tag[tag][0] is not cls:
            raise PicklingError(f"tag {tag} already registered")
        self._by_tag[tag] = (cls, to_state, from_state)
        self._by_class[cls] = tag

    def tag_for(self, value: Any) -> int:
        tag = self._by_class.get(type(value))
        if tag is None:
            raise PicklingError(
                f"cannot pickle object of unregistered type {type(value).__name__}"
            )
        return tag

    def entry(self, tag: int) -> Tuple[Type, Callable, Callable]:
        try:
            return self._by_tag[tag]
        except KeyError:
            raise PicklingError(f"unknown pickle tag {tag}") from None


#: default shared registry (applications may create private ones)
DEFAULT_REGISTRY = PicklerRegistry()


def register_class(
    tag: int,
    cls: Type,
    to_state: Callable[[Any], Any],
    from_state: Callable[[Any], Any],
    registry: PicklerRegistry = DEFAULT_REGISTRY,
) -> None:
    """Register an application class on the default registry."""
    registry.register(tag, cls, to_state, from_state)


def pickle_value(value: Any, registry: PicklerRegistry = DEFAULT_REGISTRY) -> bytes:
    """Serialize ``value`` to the portable binary format (see module doc)."""
    enc = Encoder()
    _encode(enc, value, registry, depth=0)
    return enc.finish()


def unpickle_value(data: bytes, registry: PicklerRegistry = DEFAULT_REGISTRY) -> Any:
    """Inverse of :func:`pickle_value`; raises :class:`PicklingError` on
    malformed or unknown-tag input (never executes code)."""
    dec = Decoder(data)
    value = _decode(dec, registry, depth=0)
    dec.expect_exhausted()
    return value


_MAX_DEPTH = 64


def _encode(enc: Encoder, value: Any, registry: PicklerRegistry, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise PicklingError("object graph too deep (cycle?)")
    if value is None:
        enc.uint(_TAG_NONE)
    elif value is False:
        enc.uint(_TAG_FALSE)
    elif value is True:
        enc.uint(_TAG_TRUE)
    elif type(value) is int:
        enc.uint(_TAG_INT)
        enc.int(value)
    elif type(value) is float:
        enc.uint(_TAG_FLOAT)
        enc.float(value)
    elif type(value) is str:
        enc.uint(_TAG_STR)
        enc.text(value)
    elif type(value) is bytes:
        enc.uint(_TAG_BYTES)
        enc.bytes(value)
    elif type(value) is list:
        enc.uint(_TAG_LIST)
        enc.uint(len(value))
        for item in value:
            _encode(enc, item, registry, depth + 1)
    elif type(value) is tuple:
        enc.uint(_TAG_TUPLE)
        enc.uint(len(value))
        for item in value:
            _encode(enc, item, registry, depth + 1)
    elif type(value) is dict:
        enc.uint(_TAG_DICT)
        enc.uint(len(value))
        for key, item in value.items():
            _encode(enc, key, registry, depth + 1)
            _encode(enc, item, registry, depth + 1)
    elif type(value) is set:
        enc.uint(_TAG_SET)
        enc.uint(len(value))
        # deterministic encoding for sets of sortable primitives
        try:
            items = sorted(value)
        except TypeError:
            items = list(value)
        for item in items:
            _encode(enc, item, registry, depth + 1)
    elif type(value) is ObjectRef:
        enc.uint(_TAG_REF)
        enc.uint(value.partition)
        enc.uint(value.rank)
    else:
        tag = registry.tag_for(value)
        _cls, to_state, _from_state = registry.entry(tag)
        enc.uint(tag)
        _encode(enc, to_state(value), registry, depth + 1)


def _decode(dec: Decoder, registry: PicklerRegistry, depth: int) -> Any:
    if depth > _MAX_DEPTH:
        raise PicklingError("pickled data too deeply nested")
    try:
        tag = dec.uint()
    except ValueError as exc:
        raise PicklingError(f"truncated pickle: {exc}") from exc
    try:
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_INT:
            return dec.int()
        if tag == _TAG_FLOAT:
            return dec.float()
        if tag == _TAG_STR:
            return dec.text()
        if tag == _TAG_BYTES:
            return dec.bytes()
        if tag == _TAG_LIST:
            return [_decode(dec, registry, depth + 1) for _ in range(dec.uint())]
        if tag == _TAG_TUPLE:
            return tuple(
                _decode(dec, registry, depth + 1) for _ in range(dec.uint())
            )
        if tag == _TAG_DICT:
            result = {}
            for _ in range(dec.uint()):
                key = _decode(dec, registry, depth + 1)
                result[key] = _decode(dec, registry, depth + 1)
            return result
        if tag == _TAG_SET:
            return {_decode(dec, registry, depth + 1) for _ in range(dec.uint())}
        if tag == _TAG_REF:
            return ObjectRef(dec.uint(), dec.uint())
    except ValueError as exc:
        raise PicklingError(f"corrupt pickle: {exc}") from exc
    cls, _to_state, from_state = registry.entry(tag)
    state = _decode(dec, registry, depth + 1)
    value = from_state(state)
    if not isinstance(value, cls):
        raise PicklingError(
            f"from_state for tag {tag} returned {type(value).__name__}, "
            f"expected {cls.__name__}"
        )
    return value
