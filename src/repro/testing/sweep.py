"""Discover-then-replay sweeps over crash and tamper points.

The crash-everywhere argument (§2.2) has two halves: *find* every
instrumentation point a workload passes through, then *replay* the
workload once per (point, occurrence) site with a fail-stop crash injected
there — optionally tampering with the untrusted store while the system is
down — and check an invariant after recovery.  This module is the shared
loop; ``tests/test_crash_sweep.py`` uses it for pure crash atomicity, and
the :class:`~repro.testing.adversary.Adversary` uses the same site
discovery for its crash-raced tampering class, so crash points and tamper
points are enumerated by one harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import CrashError


@dataclass(frozen=True)
class SweepSite:
    """One crash location: the ``occurrence``-th hit of ``point``."""

    point: str
    occurrence: int

    def __str__(self) -> str:
        return f"{self.point}#{self.occurrence}"


def sample_sites(
    points: Dict[str, int], samples_per_point: int = 3
) -> List[SweepSite]:
    """Pick up to ``samples_per_point`` occurrences of every discovered
    point: always the first and last, plus evenly spaced interior ones."""
    sites: List[SweepSite] = []
    for point, occurrences in sorted(points.items()):
        if occurrences <= samples_per_point:
            picks = range(occurrences)
        elif samples_per_point == 1:
            picks = [0]
        else:
            step = (occurrences - 1) / (samples_per_point - 1)
            picks = sorted({round(i * step) for i in range(samples_per_point)})
        for occurrence in picks:
            sites.append(SweepSite(point, occurrence))
    return sites


class SweepDriver:
    """Generic discover-then-replay loop.

    ``build()`` provisions a fresh scenario environment (any object with a
    ``platform`` attribute).  ``workload(env)`` runs the scripted
    operations, recording its progress on ``env``; a :class:`CrashError`
    raised by the armed injector must propagate out of it.
    """

    def __init__(self, build: Callable[[], object]) -> None:
        self.build = build

    def discover(self, workload: Callable[[object], None]) -> Dict[str, int]:
        """Run ``workload`` once, un-crashed, and return every injection
        point it passed through with its occurrence count."""
        env = self.build()
        env.platform.injector.counts.clear()
        workload(env)
        return dict(env.platform.injector.counts)

    def sweep(
        self,
        workload: Callable[[object], None],
        check: Callable[[object, SweepSite], None],
        samples_per_point: int = 3,
        tamper: Optional[Callable[[object, SweepSite], None]] = None,
        sites: Optional[List[SweepSite]] = None,
    ) -> List[SweepSite]:
        """Replay ``workload`` once per site, crashing there.

        After each crash, ``tamper`` (if given) may mutate the downed
        platform's untrusted store, then ``check(env, site)`` verifies the
        recovery invariant — it is responsible for rebooting/reopening.
        Returns the sites where a crash actually fired (arming can land
        past the end of the workload when occurrence sampling overshoots).
        """
        if sites is None:
            sites = sample_sites(self.discover(workload), samples_per_point)
        crashed_sites: List[SweepSite] = []
        for site in sites:
            env = self.build()
            env.platform.injector.arm(site.point, countdown=site.occurrence)
            try:
                workload(env)
                crashed = False
            except CrashError:
                crashed = True
            env.platform.injector.disarm()
            if not crashed:
                continue
            if tamper is not None:
                tamper(env, site)
            check(env, site)
            crashed_sites.append(site)
        return crashed_sites
